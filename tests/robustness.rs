//! Integration: robustness regimes beyond the clean model — population
//! protocols (pairwise interactions), self-stabilization, and the §6
//! weak-connectivity regime — exercised through the public API.

use know_your_audience::algos::gossip::SetGossip;
use know_your_audience::algos::metropolis::FixedWeight;
use know_your_audience::algos::min_base::{DepthCapped, MinBaseBroadcast, ViewState};
use know_your_audience::algos::push_sum::{total_mass, PushSum, PushSumState, SelfHealingPushSum};
use know_your_audience::algos::views::View;
use know_your_audience::graph::{
    generators, DynamicGraph, PairingScheduler, PairwiseMatching, RandomDynamicGraph,
    RoundRobinCover, SparselyConnected, StaticGraph, UniformRandom,
};
use know_your_audience::runtime::churn::{ChurnMasked, ChurnPlan};
use know_your_audience::runtime::faults::{FaultPlan, FaultyExecution, FaultyNetwork, Lossy};
use know_your_audience::runtime::metric::EuclideanMetric;
use know_your_audience::runtime::testing::{check_self_stabilization, SelfStabOutcome};
use know_your_audience::runtime::{Broadcast, Execution, Isotropic, RunConfig};

#[test]
fn gossip_floods_over_pairwise_interactions() {
    // The population-protocol network class (§2 footnote 2): gossip
    // still floods, it just needs more rounds than a connected-per-round
    // adversary.
    let n = 8;
    let values: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
    let net = PairwiseMatching::new(n, n / 2, 99);
    let mut exec = Execution::new(Broadcast(SetGossip), SetGossip::initial(&values));
    exec.drive(&net, RunConfig::rounds(200));
    for out in exec.outputs() {
        assert_eq!(out, vec![0, 1, 2]);
    }
}

#[test]
fn fixed_weight_averages_over_pairwise_interactions() {
    let n = 6;
    let values: Vec<f64> = vec![0.0, 6.0, 12.0, 0.0, 6.0, 12.0];
    let net = PairwiseMatching::new(n, 3, 123);
    let mut exec = Execution::new(Broadcast(FixedWeight::new(n)), values);
    exec.drive(&net, RunConfig::rounds(5000));
    for x in exec.outputs() {
        assert!((x - 6.0).abs() < 1e-7, "{x}");
    }
}

#[test]
fn depth_capped_min_base_recovers_from_corruption_end_to_end() {
    let g = generators::star(5);
    let values = [9u64, 2, 2, 2, 2];
    let cap = 14;
    let net = StaticGraph::new(g.clone());

    // Clean target output.
    let clean = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
    let mut reference = Execution::new(clean, ViewState::initial(&values));
    reference.drive(&net, RunConfig::rounds(30));
    let truth = reference.outputs()[0].clone().expect("stabilized");

    // Adversarial garbage views of a consistent depth.
    let corrupted: Vec<ViewState> = values
        .iter()
        .map(|&v| ViewState {
            value: v,
            view: View::node(1234, vec![(9, View::leaf(777))]),
        })
        .collect();
    let algo = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
    let outcome = check_self_stabilization(algo, &net, corrupted, |_| Some(truth.clone()), 60);
    assert!(
        matches!(outcome, SelfStabOutcome::Stabilized { .. }),
        "depth-capped min base must self-stabilize"
    );
}

#[test]
fn push_sum_is_not_self_stabilizing() {
    // §6: Push-Sum does not tolerate arbitrary initialization — corrupt
    // the mass invariants and the quot-sum limit moves with them.
    let values = [2.0, 4.0, 6.0];
    let truth = 4.0;
    let net = StaticGraph::new(generators::complete(3));
    // Corrupted weights (z != 1) shift the limit away from the average.
    let corrupted = vec![
        PushSumState::new(2.0, 1.0),
        PushSumState::new(4.0, 3.0), // bogus weight
        PushSumState::new(6.0, 1.0),
    ];
    let mut exec = Execution::new(Isotropic(PushSum), corrupted);
    exec.drive(&net, RunConfig::rounds(300));
    let settled = exec.outputs()[0];
    assert!(
        (settled - truth).abs() > 0.5,
        "corruption must be visible: {settled}"
    );
    // It converges — to the corrupted quot-sum, exactly as theory says.
    let corrupted_target = (2.0 + 4.0 + 6.0) / (1.0 + 3.0 + 1.0);
    assert!((settled - corrupted_target).abs() < 1e-9);
    let _ = values;
}

#[test]
fn weak_connectivity_still_converges_for_symmetric_consensus() {
    // Geometric communication gaps: no finite dynamic diameter, yet the
    // doubly-stochastic update keeps contracting (Moreau's regime).
    let n = 6;
    let values: Vec<f64> = vec![3.0, 9.0, 0.0, 6.0, 12.0, 6.0];
    let target = 6.0;
    let inner = RandomDynamicGraph::symmetric(n, 2, 5);
    let net = SparselyConnected::geometric(inner, 1, 4000);
    let mut exec = Execution::new(Broadcast(FixedWeight::new(n)), values);
    let mut errors = Vec::new();
    for _ in 0..11 {
        exec.drive(&net, RunConfig::rounds(364));
        let worst = exec
            .outputs()
            .iter()
            .map(|x| (x - target).abs())
            .fold(0.0f64, f64::max);
        errors.push(worst);
    }
    // Strictly decreasing over communication epochs, and well below the
    // initial spread at the end.
    assert!(
        errors.last().unwrap() < &0.5,
        "final error {:?}",
        errors.last()
    );
    assert!(errors.first().unwrap() > errors.last().unwrap());
}

#[test]
fn gossip_floods_despite_heavy_link_drops() {
    // Set gossip is fault-oblivious by design: it only needs every
    // ordered pair to be connected by a path *eventually*. Under a
    // FaultyNetwork dropping 30% of links per round, each scripted edge
    // still appears infinitely often, so the flood completes — merely
    // later than the fault-free D + 1 bound.
    let n = 8;
    let values: Vec<u64> = (0..n as u64).map(|i| i % 3).collect();
    let plan = FaultPlan::new(1234).drop_links(0.3);
    let net = FaultyNetwork::new(StaticGraph::new(generators::directed_ring(n)), plan);
    let mut exec = Execution::new(Broadcast(SetGossip), SetGossip::initial(&values));
    exec.drive(&net, RunConfig::rounds(120));
    for out in exec.outputs() {
        assert_eq!(out, vec![0, 1, 2]);
    }
}

#[test]
fn self_healing_push_sum_recovers_from_crash_recover() {
    // End-to-end F6 scenario: an agent crashes mid-run and comes back;
    // messages to it bounce and are reabsorbed by their senders. Mass
    // never leaks, and after the crash window the outputs re-enter the
    // eps-ball around the true average — measured by the recovery
    // report.
    let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
    let n = values.len();
    let target = values.iter().sum::<f64>() / n as f64;
    let net = StaticGraph::new(generators::complete(n));
    let plan = FaultPlan::new(6).drop_links(0.3).until(40).crash(2, 10..30);
    let mut exec = FaultyExecution::new(
        Isotropic(SelfHealingPushSum),
        PushSumState::averaging(&values),
        plan,
    );
    let z_deficit = move |states: &[PushSumState]| n as f64 - total_mass(states).1;
    let report = exec.drive(
        &net,
        RunConfig::rounds(200)
            .measure(&EuclideanMetric, &target, 1e-9)
            .invariant(&z_deficit),
    );
    assert!(report.events.dropped > 0 && report.events.bounced_to_crashed > 0);
    assert!(
        report.mass_deficit.unwrap().abs() < 1e-9,
        "self-healing conserves mass: deficit {:?}",
        report.mass_deficit
    );
    let recovered = report.converged_at.expect("re-enters the eps-ball");
    assert!(recovered > report.last_fault_round);
    assert!(report.final_distance < 1e-9);
}

#[test]
fn plain_push_sum_does_not_recover_from_message_loss() {
    // Negative control for the scenario above: identical fault script,
    // but bounced shares are discarded. The weight mass decays during
    // the fault window and the deficit persists forever — the outputs
    // settle on the quot-sum of the *surviving* mass, not the average.
    let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
    let n = values.len();
    let target = values.iter().sum::<f64>() / n as f64;
    let net = StaticGraph::new(generators::complete(n));
    let plan = FaultPlan::new(6).drop_links(0.3).until(40).crash(2, 10..30);
    let mut exec = FaultyExecution::new(
        Lossy(Isotropic(PushSum)),
        PushSumState::averaging(&values),
        plan,
    );
    let z_deficit = move |states: &[PushSumState]| n as f64 - total_mass(states).1;
    let report = exec.drive(
        &net,
        RunConfig::rounds(200)
            .measure(&EuclideanMetric, &target, 1e-9)
            .invariant(&z_deficit),
    );
    assert!(
        report.mass_deficit.unwrap() > 1.0,
        "plain push-sum must leak visibly, deficit {:?}",
        report.mass_deficit
    );
    assert_eq!(
        report.converged_at, None,
        "the lost mass shifts the limit permanently"
    );
}

#[test]
fn self_healing_push_sum_recovers_under_pairing_churn_and_faults() {
    // The F8 combined-adversary scenario: an Angluin-style pairing
    // scheduler (round-robin cover fairness), a churn script parking an
    // agent mid-run (Carry: its mass freezes and returns intact), and
    // message drops until a horizon — all stacked. The churn-aware
    // report counts convergence only strictly after the last fault OR
    // churn transition.
    let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
    let n = values.len();
    let target = values.iter().sum::<f64>() / n as f64;
    let net = PairingScheduler::new(n, RoundRobinCover, 0);
    let membership = ChurnPlan::new(6).leave(2, 10..30).membership(n);
    let stack = ChurnMasked::new(net, membership.clone());
    let plan = FaultPlan::new(6).drop_links(0.3).until(40);
    let fresh = PushSumState::averaging(&values);
    let reinit = |v: usize, _parked: &PushSumState| fresh[v];
    let mut exec = FaultyExecution::new(Isotropic(SelfHealingPushSum), fresh.clone(), plan);
    let z_deficit = move |states: &[PushSumState]| n as f64 - total_mass(states).1;
    let report = exec.drive(
        &stack,
        RunConfig::rounds(400)
            .membership(&membership, &reinit)
            .measure(&EuclideanMetric, &target, 1e-9)
            .invariant(&z_deficit),
    );
    assert!(report.events.dropped > 0, "faults actually fired");
    assert!(
        report.mass_deficit.unwrap().abs() < 1e-9,
        "Carry churn conserves mass: deficit {:?}",
        report.mass_deficit
    );
    // The quiet period starts only after both adversaries go quiescent.
    assert!(report.last_fault_round >= membership.last_transition());
    let recovered = report.converged_at.expect("re-enters the eps-ball");
    assert!(recovered > report.last_fault_round);
    assert!(report.final_distance < 1e-9);
}

#[test]
fn exact_mass_is_conserved_through_the_full_adversary_stack() {
    // Exact-backend oracle over the full composition FaultyNetwork ∘
    // ChurnMasked ∘ PairingScheduler: every masking layer is a per-edge
    // predicate that preserves self-loops, so a parked agent's whole
    // (y, z) recirculates through its self-loop and Σy, Σz over ALL
    // agent slots are conserved as exact rationals — no tolerance.
    use know_your_audience::algos::push_sum::{PushSumExact, PushSumExactState};
    use know_your_audience::arith::BigRational;
    let ints: Vec<i64> = vec![3, 1, 4, 1, 5, 9];
    let n = ints.len();
    let inits = PushSumExactState::averaging(&ints);
    let y0: BigRational = inits.iter().map(|s| &s.y).sum();
    let z0: BigRational = inits.iter().map(|s| &s.z).sum();
    let membership = ChurnPlan::new(1)
        .leave(1, 5..20)
        .depart(4, 25)
        .membership(n);
    let stack = FaultyNetwork::new(
        ChurnMasked::new(
            PairingScheduler::new(n, UniformRandom::new(n / 2), 3),
            membership.clone(),
        ),
        FaultPlan::new(9).drop_links(0.25).until(30),
    );
    let mut exec = Execution::new(Isotropic(PushSumExact), inits);
    // Carry policy: rejoins restore the parked state, reinit never runs.
    let reinit = |_: usize, parked: &PushSumExactState| parked.clone();
    exec.drive(
        &stack,
        RunConfig::rounds(60).membership(&membership, &reinit),
    );
    let y: BigRational = exec.states().iter().map(|s| &s.y).sum();
    let z: BigRational = exec.states().iter().map(|s| &s.z).sum();
    assert_eq!(y, y0, "Σy is exactly conserved");
    assert_eq!(z, z0, "Σz is exactly conserved");
}

#[test]
fn parallel_execution_agrees_with_sequential_for_push_sum() {
    let n = 10;
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let net = RandomDynamicGraph::directed(n, 5, 777);
    let mut seq = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
    let mut par = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
    for _ in 0..30 {
        let g = net.graph(seq.round() + 1);
        seq.step(&g);
        par.step_parallel(&g, 3);
    }
    // Same messages, same per-agent sums, bit-identical trajectories.
    for (a, b) in seq.states().iter().zip(par.states()) {
        assert_eq!(a.y.to_bits(), b.y.to_bits());
        assert_eq!(a.z.to_bits(), b.z.to_bits());
    }
}
