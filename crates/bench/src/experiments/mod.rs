//! The experiment registry: every evaluation binary (`table1`,
//! `table2`, `f1`–`f8`) is a thin shim over [`run_main`], which drives a
//! [`kya_harness::Runner`] sweep from a set of [`ExperimentSpec`]s.
//!
//! Shared flags (every experiment): `--workers N` (parallelism; output
//! is byte-identical for every N), `--ndjson` / `--json` (machine
//! output), plus the harness sweep flags `--sizes`, `--seeds`, `--seed`,
//! `--rounds`, `--eps` where the experiment honours them. Experiments
//! may add extras (e.g. F6's `--drops` / `--crashes`).

pub mod f1;
pub mod f2;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod flat;
pub mod table1;
pub mod table2;

use kya_graph::{
    DynamicGraph, PairingScheduler, RandomDynamicGraph, RoundRobinCover, SparselyConnected,
    UniformRandom,
};
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, Runner, SpecError};
use kya_harness::{TelemetryMode, TopologyCache, SWEEP_FLAGS};
use kya_runtime::adversary::AsyncStarts;
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::telemetry::TraceSink;
use kya_runtime::{Algorithm, Execution, RunConfig};
use std::process::ExitCode;

/// Flags `kya trace` accepts on top of the sweep and experiment flags.
pub const TRACE_FLAGS: &[&str] = &["trace-out", "residuals"];

/// One registered experiment: spec construction, the per-cell function,
/// and the human rendering of a finished sweep.
pub struct Experiment {
    /// Registry name (`kya sweep <name>`, and the binary's identity).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Experiment-specific flags accepted on top of [`SWEEP_FLAGS`].
    pub extra_flags: &'static [&'static str],
    /// Build the specs to sweep (applying flag overrides).
    pub build: fn(&Args) -> Result<Vec<ExperimentSpec>, SpecError>,
    /// Execute one cell.
    pub cell: fn(&CellCtx) -> CellOutcome,
    /// Render one finished spec's sink for humans.
    pub render: fn(&ResultSink) -> String,
}

/// All registered experiments.
pub const EXPERIMENTS: &[&Experiment] = &[
    &table1::EXPERIMENT,
    &table2::EXPERIMENT,
    &f1::EXPERIMENT,
    &f2::EXPERIMENT,
    &f4::EXPERIMENT,
    &f5::EXPERIMENT,
    &f6::EXPERIMENT,
    &f7::EXPERIMENT,
    &f8::EXPERIMENT,
    &flat::EXPERIMENT,
];

/// Look up an experiment by registry name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    EXPERIMENTS.iter().copied().find(|e| e.name == name)
}

/// Run an experiment end to end; returns whether every verdict-bearing
/// cell passed.
///
/// # Errors
///
/// Returns a [`SpecError`] for unknown experiments or malformed flags.
pub fn run(name: &str, argv: &[String]) -> Result<bool, SpecError> {
    let (exp, sinks) = run_collect(name, argv, TelemetryMode::off(), &[])?;
    let args = Args::parse(argv);
    if args.is_set("ndjson") {
        for sink in &sinks {
            print!("{}", sink.to_ndjson());
        }
    } else if args.is_set("json") {
        for sink in &sinks {
            println!("{}", sink.to_json());
        }
    } else {
        for sink in &sinks {
            println!("{}", (exp.render)(sink));
        }
    }
    Ok(sinks.iter().all(ResultSink::all_ok))
}

/// Parse flags, build the specs, and sweep them — the shared engine of
/// `kya sweep` (telemetry off) and `kya trace` (telemetry on). Returns
/// the registry entry and one sink per spec, in spec order, leaving the
/// rendering to the caller.
///
/// # Errors
///
/// Returns a [`SpecError`] for unknown experiments, bare arguments, or
/// flags outside [`SWEEP_FLAGS`] + the experiment's extras +
/// `extra_valid`.
pub fn run_collect(
    name: &str,
    argv: &[String],
    telemetry: TelemetryMode,
    extra_valid: &[&str],
) -> Result<(&'static Experiment, Vec<ResultSink>), SpecError> {
    let exp = find(name).ok_or_else(|| {
        let known: Vec<&str> = EXPERIMENTS.iter().map(|e| e.name).collect();
        SpecError(format!(
            "unknown experiment `{name}` (known: {})",
            known.join(", ")
        ))
    })?;
    let args = Args::parse(argv);
    if !args.bare().is_empty() {
        return Err(SpecError(format!(
            "unexpected arguments {:?} for `{name}`",
            args.bare()
        )));
    }
    let mut valid: Vec<&str> = SWEEP_FLAGS.to_vec();
    valid.extend_from_slice(exp.extra_flags);
    valid.extend_from_slice(extra_valid);
    args.reject_unknown(name, &valid)?;
    let workers = args.usize_flag("workers", 1)?;

    let specs = (exp.build)(&args)?;
    // One cache across the experiment's specs: e.g. F1's ring sweep and
    // F2's ring sweep each share parsed graphs and diameters.
    let cache = TopologyCache::new();
    let sinks: Vec<ResultSink> = specs
        .iter()
        .map(|spec| {
            Runner::new(spec)
                .workers(workers)
                .telemetry(telemetry)
                .run_with_cache(&cache, exp.cell)
        })
        .collect();
    Ok((exp, sinks))
}

/// Run `exec` until its outputs sit in a stable ε-ball around `target`
/// (`run_until_converged` semantics), honouring the context's telemetry
/// mode: with telemetry on, a [`TraceSink`] with a residual column
/// observes every round and its counters/events land in the outcome;
/// with `--residuals`, the report additionally keeps its per-round
/// distance series. Returns the convergence verdict alongside the
/// assembled outcome so callers can attach it (or not) as `ok`.
pub(crate) fn observed_convergence<A>(
    ctx: &CellCtx,
    mut exec: Execution<A>,
    net: &dyn DynamicGraph,
    target: f64,
    eps: f64,
    confirm: u64,
) -> (bool, CellOutcome)
where
    A: Algorithm<Output = f64> + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let mode = ctx.telemetry;
    if !mode.enabled() {
        let report = exec.drive(
            net,
            RunConfig::rounds(ctx.rounds())
                .measure(&EuclideanMetric, &target, eps)
                .confirm(confirm),
        );
        return (
            report.converged(),
            CellOutcome::new().report(report.without_trace()),
        );
    }
    let mut sink = TraceSink::with_residual(EuclideanMetric, target);
    let report = exec.drive(
        net,
        RunConfig::rounds(ctx.rounds())
            .measure(&EuclideanMetric, &target, eps)
            .confirm(confirm)
            .observer(&mut sink),
    );
    let (events, summary) = sink.finish();
    let converged = report.converged();
    let mut outcome = CellOutcome::new().telemetry(summary);
    if mode.trace {
        outcome = outcome.trace(events);
    }
    let report = if mode.residuals {
        report
    } else {
        report.without_trace()
    };
    (converged, outcome.report(report))
}

/// The shared `main` of every experiment binary: parse `std::env` args,
/// run, exit non-zero on errors or failed certifications.
pub fn run_main(name: &str) -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(name, &argv) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("{name}: some cells FAILED — see [XX] lines above");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{name}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Interpret the dynamic-network topology labels the static-graph
/// grammar does not cover:
///
/// - `dyn:directed:N:EXTRA:SEED` / `dyn:symmetric:N:EXTRA:SEED` — a
///   [`RandomDynamicGraph`];
/// - `async:MAXDELAY:SEED:<dyn label>` — asynchronous starts on top of
///   a random dynamic graph;
/// - `sparse:BASEGAP:HORIZON:<dyn label>` — the geometric
///   sparsely-connected schedule (gaps 2, 4, 8, …);
/// - `pair:uniform:N:SEED` / `pair:cover:N:SEED` — an Angluin-style
///   [`PairingScheduler`] over `N` agents (seeded random matchings, or
///   the deterministic round-robin tournament).
pub fn dynamic_net(label: &str) -> Option<Box<dyn DynamicGraph>> {
    fn num<T: std::str::FromStr>(s: &str) -> Option<T> {
        s.parse().ok()
    }
    fn rand_net(parts: &[&str]) -> Option<RandomDynamicGraph> {
        match parts {
            ["dyn", "directed", n, extra, seed] => Some(RandomDynamicGraph::directed(
                num(n)?,
                num(extra)?,
                num(seed)?,
            )),
            ["dyn", "symmetric", n, extra, seed] => Some(RandomDynamicGraph::symmetric(
                num(n)?,
                num(extra)?,
                num(seed)?,
            )),
            _ => None,
        }
    }
    let parts: Vec<&str> = label.split(':').collect();
    match parts.as_slice() {
        ["dyn", ..] => rand_net(&parts).map(|g| Box::new(g) as Box<dyn DynamicGraph>),
        ["async", delay, seed, rest @ ..] => {
            let inner = rand_net(rest)?;
            Some(Box::new(AsyncStarts::random(
                inner,
                num(delay)?,
                num(seed)?,
            )))
        }
        ["sparse", gap, horizon, rest @ ..] => {
            let inner = rand_net(rest)?;
            Some(Box::new(SparselyConnected::geometric(
                inner,
                num(gap)?,
                num(horizon)?,
            )))
        }
        ["pair", "uniform", n, seed] => {
            let n: usize = num(n)?;
            Some(Box::new(PairingScheduler::new(
                n.max(2),
                UniformRandom::new((n / 2).max(1)),
                num(seed)?,
            )))
        }
        ["pair", "cover", n, seed] => Some(Box::new(PairingScheduler::new(
            num::<usize>(n)?.max(2),
            RoundRobinCover,
            num(seed)?,
        ))),
        _ => None,
    }
}

/// Parse a comma-separated `f64` list flag with a default (used by F6's
/// `--drops`).
pub(crate) fn f64_list_flag(
    args: &Args,
    key: &str,
    default: &[f64],
) -> Result<Vec<f64>, SpecError> {
    match args.optional(key) {
        None => Ok(default.to_vec()),
        Some(s) => s
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|item| {
                item.parse().map_err(|_| {
                    SpecError(format!("--{key} entries must be numbers, got `{item}`"))
                })
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_finds_all_experiments() {
        for name in [
            "table1", "table2", "f1", "f2", "f4", "f5", "f6", "f7", "f8", "flat",
        ] {
            assert!(find(name).is_some(), "{name} registered");
        }
        assert!(find("f3").is_none(), "F3 rides inside f2");
        let argv = vec!["--nonsense".to_string()];
        assert!(run("f6", &argv).is_err(), "unknown flag rejected");
        assert!(run("nope", &[]).is_err(), "unknown experiment rejected");
    }

    #[test]
    fn traced_f1_rings_decay_monotonically_and_match_counters() {
        let argv: Vec<String> = ["--sizes", "8", "--seeds", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mode = TelemetryMode {
            trace: true,
            residuals: false,
        };
        let (_, sinks) = run_collect("f1", &argv, mode, TRACE_FLAGS).unwrap();
        assert_eq!(sinks.len(), 3, "f1 sweeps three specs");
        for sink in &sinks {
            for r in sink.records() {
                let t = r.telemetry.as_ref().expect("traced cells carry telemetry");
                assert_eq!(t.rounds as usize, r.trace.len(), "one event per round");
                let msgs: u64 = r.trace.iter().map(|e| e.messages).sum();
                let selfs: u64 = r.trace.iter().map(|e| e.self_messages).sum();
                assert_eq!(msgs, t.messages, "trace totals match the summary");
                assert_eq!(selfs, t.self_messages);
                assert!(r.trace.iter().all(|e| e.residual.is_some()));
            }
        }
        // Push-Sum on a connected directed ring: the worst-case distance
        // to the average never grows, and shrinks strictly until it hits
        // the f64 noise floor (ties only appear at ~1e-13 residuals).
        let rings = sinks[0].records();
        assert!(!rings.is_empty());
        for r in rings {
            let res: Vec<f64> = r.trace.iter().map(|e| e.residual.unwrap()).collect();
            assert!(
                res.windows(2).all(|w| w[1] <= w[0]),
                "residuals not monotone on {}",
                r.topology
            );
            assert!(
                res.windows(2).all(|w| w[1] < w[0] || w[0] < 1e-9),
                "residuals plateau above the noise floor on {}",
                r.topology
            );
            assert!(*res.last().unwrap() < 1e-6, "decayed below eps");
        }
    }

    #[test]
    fn sweeps_without_telemetry_stay_bare() {
        let argv: Vec<String> = ["--sizes", "4", "--seeds", "1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (_, sinks) = run_collect("f1", &argv, TelemetryMode::off(), &[]).unwrap();
        for sink in &sinks {
            for r in sink.records() {
                assert!(r.telemetry.is_none());
                assert!(r.trace.is_empty());
                let rep = r.report.as_ref().expect("f1 cells report");
                assert!(rep.distances.is_empty(), "residual series stripped");
            }
        }
    }

    #[test]
    fn dynamic_labels_parse() {
        assert!(dynamic_net("dyn:directed:12:6:555").is_some());
        assert!(dynamic_net("dyn:symmetric:16:4:2718").is_some());
        assert!(dynamic_net("async:8:4:dyn:symmetric:16:4:9182").is_some());
        assert!(dynamic_net("sparse:2:1023:dyn:directed:10:4:48").is_some());
        assert!(dynamic_net("pair:uniform:12:7").is_some());
        assert!(dynamic_net("pair:cover:9:0").is_some());
        assert!(dynamic_net("ring:6").is_none());
        assert!(dynamic_net("dyn:undirected:4:1:1").is_none());
        assert!(dynamic_net("pair:lottery:4:1").is_none());
    }
}
