//! End-to-end properties of the parallel experiment harness: worker
//! count never changes output bytes, and warm [`TopologyCache`] hits
//! never change results relative to a cold cache.

use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::StaticGraph;
use kya_harness::{CellCtx, CellOutcome, ExperimentSpec, PlanSpec, Runner, TopologyCache};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::{Execution, Isotropic, RunConfig};
use proptest::prelude::*;

/// A representative sweep: three topology families × two sizes × two
/// seeds × a fault-plan axis, with real algorithm work in every cell.
fn demo_spec() -> ExperimentSpec {
    ExperimentSpec::new("harness_demo")
        .topologies(["ring:{n}", "torus:{n}", "random:{n}:4:{seed}"])
        .sizes([6, 9])
        .seeds([1, 2])
        .plans([PlanSpec::quiescent(), PlanSpec::quiescent().drop_links(0.2)])
        .rounds(200)
        .eps(1e-6)
}

/// Push-Sum averaging over the cell's graph; the cell seed perturbs the
/// inputs so identical outputs across runs cannot be a coincidence of
/// constant data.
fn demo_cell(ctx: &CellCtx) -> CellOutcome {
    let g = ctx.graph().expect("static label");
    let n = g.n();
    let values: Vec<f64> = (0..n)
        .map(|i| ((i as u64 * 31 + ctx.cell.cell_seed) % 97) as f64)
        .collect();
    let target = values.iter().sum::<f64>() / n as f64;
    let net = StaticGraph::new((*g).clone());
    let report = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values)).drive(
        &net,
        RunConfig::rounds(ctx.rounds()).measure(&EuclideanMetric, &target, ctx.eps()),
    );
    CellOutcome::new()
        .ok(report.converged())
        .detail(
            "diameter",
            ctx.cache.diameter(&ctx.cell.topology).ok().flatten(),
        )
        .report(report.without_trace())
}

#[test]
fn worker_count_never_changes_output_bytes() {
    let spec = demo_spec();
    let baseline = Runner::new(&spec).workers(1).run(demo_cell).to_ndjson();
    assert!(baseline.lines().count() >= 24, "sweep is non-trivial");
    for workers in [2, 4, 16] {
        let parallel = Runner::new(&spec)
            .workers(workers)
            .run(demo_cell)
            .to_ndjson();
        assert_eq!(baseline, parallel, "{workers} workers diverged from 1");
    }
}

#[test]
fn shared_cache_matches_private_caches() {
    let spec = demo_spec();
    let private = Runner::new(&spec).workers(2).run(demo_cell).to_ndjson();
    // One cache reused across three consecutive runs: later runs hit
    // memoized graphs, diameters, and bases only.
    let shared = TopologyCache::new();
    let mut outputs = Vec::new();
    for _ in 0..3 {
        outputs.push(
            Runner::new(&spec)
                .workers(2)
                .run_with_cache(&shared, demo_cell)
                .to_ndjson(),
        );
    }
    assert!(
        outputs.iter().all(|o| *o == private),
        "warm cache changed results"
    );
    let (hits, misses) = shared.stats();
    assert!(hits > misses, "repeat runs are mostly cache hits");
}

#[test]
fn per_worker_cache_counters_partition_the_totals() {
    let spec = demo_spec();
    let cache = TopologyCache::new();
    let _ = Runner::new(&spec)
        .workers(4)
        .run_with_cache(&cache, demo_cell);
    let per_worker = cache.worker_stats();
    let (hits, misses) = cache.stats();
    let hit_sum: u64 = per_worker.iter().map(|&(_, h, _)| h).sum();
    let miss_sum: u64 = per_worker.iter().map(|&(_, _, m)| m).sum();
    assert_eq!(hit_sum, hits, "worker hit buckets sum to the global total");
    assert_eq!(
        miss_sum, misses,
        "worker miss buckets sum to the global total"
    );
    // The runner's pre-warm pass runs outside any worker scope (the None
    // bucket); the cells themselves run under workers 0..4.
    assert!(
        per_worker
            .iter()
            .all(|&(w, _, _)| w.is_none() || w < Some(4)),
        "unexpected worker bucket: {per_worker:?}"
    );
    let worker_hits: u64 = per_worker
        .iter()
        .filter(|(w, _, _)| w.is_some())
        .map(|&(_, h, _)| h)
        .sum();
    assert!(worker_hits > 0, "cells hit the cache under worker scopes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cache hits are invisible: for any (size, seed, drop rate), a
    /// pre-warmed shared cache and a cold private cache produce the
    /// same bytes at any worker count.
    #[test]
    fn cache_hits_never_change_results(
        n in 3usize..10,
        seed in 0u64..1000,
        drop_ppm in 0u32..500_000,
        workers in 1usize..5,
    ) {
        let spec = ExperimentSpec::new("harness_prop")
            .topologies(["ring:{n}", "random:{n}:3:{seed}"])
            .sizes([n, n + 1])
            .seeds([seed])
            .plans([PlanSpec::quiescent().drop_links(f64::from(drop_ppm) / 1e6)])
            .rounds(120)
            .base_seed(seed);
        let cold = Runner::new(&spec).workers(workers).run(demo_cell).to_ndjson();
        let warm_cache = TopologyCache::new();
        // Warm every label (and its diameter) before the measured run.
        let _ = Runner::new(&spec).workers(1).run_with_cache(&warm_cache, demo_cell);
        let warm = Runner::new(&spec)
            .workers(workers)
            .run_with_cache(&warm_cache, demo_cell)
            .to_ndjson();
        prop_assert_eq!(cold, warm);
    }
}
