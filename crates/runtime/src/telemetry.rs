//! Round-level observers: per-round counters, residual series, and
//! NDJSON traces for any [`Execution`](crate::Execution).
//!
//! The paper's quantitative claims are *rates* — Push-Sum's geometric
//! convergence (Theorem 5.2) and the ergodic-coefficient bounds of
//! §5.2–5.3 speak about per-round residual decay — yet a bare
//! `run_until` only keeps the distance trace. An [`Observer`] hooks into
//! the executor's round structure and sees every round boundary and
//! every delivered message, turning an execution into a measured one:
//!
//! - [`NullObserver`] — the zero-cost default. The plain `step`/`run*`
//!   methods delegate to their `*_observed` twins with a `NullObserver`;
//!   monomorphization erases the empty hooks entirely (a benchmark guard
//!   in `tests/telemetry.rs` pins this).
//! - [`CountingObserver`] — messages delivered (split into self-loop and
//!   real-link traffic), payload bytes, fault-dropped messages, and peak
//!   state size, summarized as a [`CountSummary`].
//! - [`ResidualObserver`] — the per-round worst-case distance of the
//!   outputs from a target under a chosen [`Metric`]: the measured
//!   decay-rate series behind the F1/F4 tables.
//! - [`TraceSink`] — one [`RoundEvent`] per round (counters plus an
//!   optional residual), buffered with a stable serde schema and
//!   rendered as NDJSON.
//!
//! Payload and state sizes use the `Debug` rendering's byte length as a
//! deterministic, dependency-free proxy for serialized size: the repo
//! has no wire format, and `Debug` is the one encoding every `Msg` and
//! `State` already carries. The proxy is documented, stable across runs,
//! and only ever computed by opt-in observers.

use crate::algorithm::Algorithm;
use crate::metric::{max_distance, Metric};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Round-scoped hooks driven by the executors.
///
/// Every hook has an empty default body, so an observer implements only
/// what it measures. Within one round the executor guarantees the call
/// order `on_round_start` → `on_message`/`on_message_dropped` (one call
/// per message, in the deterministic routing order shared by `step` and
/// `step_parallel`) → `on_round_end`; `on_converged` fires at most once
/// per measuring run, after the report is sealed.
pub trait Observer<A: Algorithm> {
    /// A round began: `round` is the 1-based round number about to
    /// execute, `states` the configuration it starts from.
    fn on_round_start(&mut self, round: u64, states: &[A::State]) {
        let _ = (round, states);
    }

    /// A message was delivered from `src` to `dst` (`src == dst` is the
    /// self-loop). A duplicated message fires once per delivered copy.
    fn on_message(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        let _ = (round, src, dst, msg);
    }

    /// A message was lost to fault injection (dropped in flight or
    /// bounced off a crashed recipient) — fired by
    /// [`FaultyExecution`](crate::faults::FaultyExecution) only.
    fn on_message_dropped(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        let _ = (round, src, dst, msg);
    }

    /// A round completed: `states` is the configuration after every
    /// transition; `algo` allows output projection.
    fn on_round_end(&mut self, round: u64, algo: &A, states: &[A::State]) {
        let _ = (round, algo, states);
    }

    /// A measuring run (`run_until*`) determined that the outputs
    /// converged at the end of `round` with final distance
    /// `final_distance`.
    fn on_converged(&mut self, round: u64, final_distance: f64) {
        let _ = (round, final_distance);
    }
}

// Forwarding impl so `&mut dyn Observer<A>` (what a `RunConfig` holds)
// satisfies the `O: Observer<A>` bounds of `step_observed` and friends.
impl<A: Algorithm, O: Observer<A> + ?Sized> Observer<A> for &mut O {
    fn on_round_start(&mut self, round: u64, states: &[A::State]) {
        (**self).on_round_start(round, states);
    }

    fn on_message(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        (**self).on_message(round, src, dst, msg);
    }

    fn on_message_dropped(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        (**self).on_message_dropped(round, src, dst, msg);
    }

    fn on_round_end(&mut self, round: u64, algo: &A, states: &[A::State]) {
        (**self).on_round_end(round, algo, states);
    }

    fn on_converged(&mut self, round: u64, final_distance: f64) {
        (**self).on_converged(round, final_distance);
    }
}

/// The zero-cost default observer: every hook is the empty default.
///
/// `Execution::step` is exactly `step_observed(graph, &mut
/// NullObserver)`; the generic instantiation compiles to the PR-2 loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullObserver;

impl<A: Algorithm> Observer<A> for NullObserver {}

/// Flat counters accumulated by [`CountingObserver`] and [`TraceSink`].
///
/// All sizes are `Debug`-rendering byte lengths (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountSummary {
    /// Rounds observed (`on_round_end` calls).
    pub rounds: u64,
    /// Messages delivered over real links (`src != dst`).
    pub messages: u64,
    /// Messages delivered over self-loops (`src == dst`).
    pub self_messages: u64,
    /// Payload bytes of every delivered message, self-loops included.
    pub payload_bytes: u64,
    /// Messages lost to fault injection (drops and bounces).
    pub dropped: u64,
    /// Largest single-agent state seen at any round end, in bytes.
    pub peak_state_bytes: u64,
}

/// Byte length of a value's `Debug` rendering, reusing `buf`.
fn debug_len(buf: &mut String, value: &impl std::fmt::Debug) -> u64 {
    buf.clear();
    let _ = write!(buf, "{value:?}");
    buf.len() as u64
}

/// Counts traffic and state growth: messages sent/received per round,
/// payload bytes, fault-dropped messages, and the peak state size.
#[derive(Clone, Debug, Default)]
pub struct CountingObserver {
    summary: CountSummary,
    buf: String,
}

impl CountingObserver {
    /// A fresh counter.
    pub fn new() -> CountingObserver {
        CountingObserver::default()
    }

    /// The counters accumulated so far.
    pub fn summary(&self) -> CountSummary {
        self.summary
    }
}

impl<A: Algorithm> Observer<A> for CountingObserver {
    fn on_message(&mut self, _round: u64, src: usize, dst: usize, msg: &A::Msg) {
        if src == dst {
            self.summary.self_messages += 1;
        } else {
            self.summary.messages += 1;
        }
        self.summary.payload_bytes += debug_len(&mut self.buf, msg);
    }

    fn on_message_dropped(&mut self, _round: u64, _src: usize, _dst: usize, _msg: &A::Msg) {
        self.summary.dropped += 1;
    }

    fn on_round_end(&mut self, _round: u64, _algo: &A, states: &[A::State]) {
        self.summary.rounds += 1;
        for s in states {
            let bytes = debug_len(&mut self.buf, s);
            self.summary.peak_state_bytes = self.summary.peak_state_bytes.max(bytes);
        }
    }
}

/// Records the per-round worst-case distance of the outputs from a
/// target — the measured decay-rate series of Theorem 5.2.
#[derive(Clone, Debug)]
pub struct ResidualObserver<M, T> {
    metric: M,
    target: T,
    residuals: Vec<f64>,
}

impl<M, T> ResidualObserver<M, T> {
    /// Measure distances to `target` under `metric`.
    pub fn new(metric: M, target: T) -> ResidualObserver<M, T> {
        ResidualObserver {
            metric,
            target,
            residuals: Vec::new(),
        }
    }

    /// The residual at the end of each observed round, in order.
    pub fn residuals(&self) -> &[f64] {
        &self.residuals
    }

    /// Per-round decay rates `r_{t+1} / r_t` (empty with fewer than two
    /// rounds; a ratio is skipped when its denominator is zero).
    pub fn decay_rates(&self) -> Vec<f64> {
        self.residuals
            .windows(2)
            .filter(|w| w[0] != 0.0)
            .map(|w| w[1] / w[0])
            .collect()
    }
}

impl<A, M> Observer<A> for ResidualObserver<M, A::Output>
where
    A: Algorithm,
    M: Metric<A::Output>,
{
    fn on_round_end(&mut self, _round: u64, algo: &A, states: &[A::State]) {
        let outputs: Vec<A::Output> = states.iter().map(|s| algo.output(s)).collect();
        self.residuals
            .push(max_distance(&self.metric, &outputs, &self.target));
    }
}

/// One row of a trace: the counters of a single round, plus the residual
/// when the sink was built with a metric.
///
/// Serializes with a stable field order (`round`, `messages`,
/// `self_messages`, `payload_bytes`, `dropped`, `residual`) — the schema
/// the CI trace-determinism job diffs byte for byte.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundEvent {
    /// The 1-based round number.
    pub round: u64,
    /// Messages delivered over real links this round.
    pub messages: u64,
    /// Messages delivered over self-loops this round.
    pub self_messages: u64,
    /// Payload bytes delivered this round (self-loops included).
    pub payload_bytes: u64,
    /// Messages lost to fault injection this round.
    pub dropped: u64,
    /// Worst-case distance from the target at the round's end, when a
    /// residual metric was attached.
    pub residual: Option<f64>,
}

impl RoundEvent {
    fn empty(round: u64) -> RoundEvent {
        RoundEvent {
            round,
            messages: 0,
            self_messages: 0,
            payload_bytes: 0,
            dropped: 0,
            residual: None,
        }
    }
}

/// Type of the optional residual computation a [`TraceSink`] carries.
type ResidualFn<A> = Box<dyn FnMut(&A, &[<A as Algorithm>::State]) -> f64>;

/// Buffers one [`RoundEvent`] per round and renders them as NDJSON; also
/// accumulates the same [`CountSummary`] as a [`CountingObserver`], so a
/// traced cell needs a single observer.
pub struct TraceSink<A: Algorithm> {
    events: Vec<RoundEvent>,
    current: Option<RoundEvent>,
    summary: CountSummary,
    buf: String,
    residual: Option<ResidualFn<A>>,
}

impl<A: Algorithm> Default for TraceSink<A> {
    fn default() -> TraceSink<A> {
        TraceSink::new()
    }
}

impl<A: Algorithm> TraceSink<A> {
    /// A sink recording counters only (`residual` stays `null`).
    pub fn new() -> TraceSink<A> {
        TraceSink {
            events: Vec::new(),
            current: None,
            summary: CountSummary::default(),
            buf: String::new(),
            residual: None,
        }
    }

    /// A sink that additionally records the per-round worst-case
    /// distance of the outputs from `target` under `metric`.
    pub fn with_residual<M>(metric: M, target: A::Output) -> TraceSink<A>
    where
        M: Metric<A::Output> + 'static,
        A::Output: 'static,
    {
        let mut sink = TraceSink::new();
        sink.residual = Some(Box::new(move |algo: &A, states: &[A::State]| {
            let outputs: Vec<A::Output> = states.iter().map(|s| algo.output(s)).collect();
            max_distance(&metric, &outputs, &target)
        }));
        sink
    }

    /// The buffered rounds so far (completed rounds only).
    pub fn events(&self) -> &[RoundEvent] {
        &self.events
    }

    /// The counters accumulated so far.
    pub fn summary(&self) -> CountSummary {
        self.summary
    }

    /// Consume the sink: buffered events plus the final counters.
    pub fn finish(self) -> (Vec<RoundEvent>, CountSummary) {
        (self.events, self.summary)
    }

    /// One compact JSON object per round, in round order.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_value().to_json());
            out.push('\n');
        }
        out
    }

    fn current_mut(&mut self, round: u64) -> &mut RoundEvent {
        self.current.get_or_insert_with(|| RoundEvent::empty(round))
    }
}

impl<A: Algorithm> Observer<A> for TraceSink<A> {
    fn on_round_start(&mut self, round: u64, _states: &[A::State]) {
        self.current = Some(RoundEvent::empty(round));
    }

    fn on_message(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        let bytes = debug_len(&mut self.buf, msg);
        let is_self = src == dst;
        let e = self.current_mut(round);
        if is_self {
            e.self_messages += 1;
        } else {
            e.messages += 1;
        }
        e.payload_bytes += bytes;
        if is_self {
            self.summary.self_messages += 1;
        } else {
            self.summary.messages += 1;
        }
        self.summary.payload_bytes += bytes;
    }

    fn on_message_dropped(&mut self, round: u64, _src: usize, _dst: usize, _msg: &A::Msg) {
        self.current_mut(round).dropped += 1;
        self.summary.dropped += 1;
    }

    fn on_round_end(&mut self, round: u64, algo: &A, states: &[A::State]) {
        let mut e = self
            .current
            .take()
            .unwrap_or_else(|| RoundEvent::empty(round));
        if let Some(f) = self.residual.as_mut() {
            e.residual = Some(f(algo, states));
        }
        self.summary.rounds += 1;
        for s in states {
            let bytes = debug_len(&mut self.buf, s);
            self.summary.peak_state_bytes = self.summary.peak_state_bytes.max(bytes);
        }
        self.events.push(e);
    }
}

/// A deterministic fixed-bucket base-2 histogram over f64 magnitudes or
/// integer counts.
///
/// Buckets are binary exponents: a finite non-zero sample `x` lands in
/// bucket `e` iff `2^e <= |x| < 2^(e+1)`, read straight off the IEEE-754
/// exponent bits (subnormals all collapse into the minimum exponent
/// bucket, −1023). Zero and non-finite samples are tallied separately so
/// the histogram never invents a magnitude for them. There is no
/// floating-point arithmetic anywhere in the bucketing, so the histogram
/// is bitwise reproducible across platforms, runs, and thread counts —
/// it may appear in fingerprinted output (DESIGN.md §10).
///
/// The serde schema is stable by construction:
/// `{"zeros": u, "non_finite": u, "buckets": [[exp, count], ...]}` with
/// buckets sorted by ascending exponent and empty buckets omitted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Log2Histogram {
    zeros: u64,
    non_finite: u64,
    buckets: std::collections::BTreeMap<i32, u64>,
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Record one f64 sample by magnitude.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
        } else if x == 0.0 {
            self.zeros += 1;
        } else {
            let exp = ((x.to_bits() >> 52) & 0x7ff) as i32 - 1023;
            *self.buckets.entry(exp).or_insert(0) += 1;
        }
    }

    /// Record one non-negative integer count (`0` lands in `zeros`,
    /// `c > 0` in bucket `floor(log2 c)`).
    pub fn record_count(&mut self, c: u64) {
        if c == 0 {
            self.zeros += 1;
        } else {
            let exp = 63 - c.leading_zeros() as i32;
            *self.buckets.entry(exp).or_insert(0) += 1;
        }
    }

    /// Build a histogram over a slice of f64 samples.
    pub fn from_values(values: &[f64]) -> Log2Histogram {
        let mut h = Log2Histogram::new();
        for &x in values {
            h.record(x);
        }
        h
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.zeros + self.non_finite + self.buckets.values().sum::<u64>()
    }

    /// Samples that were exactly zero.
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Samples that were NaN or infinite.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Occupied `(exponent, count)` buckets in ascending exponent order.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &c)| (e, c))
    }

    /// Count in the bucket of binary exponent `exp` (0 when empty).
    pub fn count(&self, exp: i32) -> u64 {
        self.buckets.get(&exp).copied().unwrap_or(0)
    }

    /// Largest occupied exponent, if any sample had a magnitude.
    pub fn max_exponent(&self) -> Option<i32> {
        self.buckets.keys().next_back().copied()
    }
}

impl Serialize for Log2Histogram {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        let buckets = self
            .buckets
            .iter()
            .map(|(&e, &c)| Value::Seq(vec![Value::Int(e as i64), Value::UInt(c)]))
            .collect();
        Value::Map(vec![
            ("zeros".to_string(), Value::UInt(self.zeros)),
            ("non_finite".to_string(), Value::UInt(self.non_finite)),
            ("buckets".to_string(), Value::Seq(buckets)),
        ])
    }
}

impl Deserialize for Log2Histogram {
    fn from_value(v: &serde::Value) -> Result<Log2Histogram, serde::Error> {
        let zeros = u64::from_value(v.field("zeros")?)?;
        let non_finite = u64::from_value(v.field("non_finite")?)?;
        let pairs: Vec<(i64, u64)> = Vec::from_value(v.field("buckets")?)?;
        let mut buckets = std::collections::BTreeMap::new();
        for (e, c) in pairs {
            let exp = i32::try_from(e).map_err(|_| serde::Error::custom("exponent overflow"))?;
            if buckets.insert(exp, c).is_some() {
                return Err(serde::Error::custom("duplicate histogram bucket"));
            }
        }
        Ok(Log2Histogram {
            zeros,
            non_finite,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Broadcast, BroadcastAlgorithm};
    use crate::metric::{DiscreteMetric, EuclideanMetric};
    use crate::{Execution, RunConfig};
    use kya_graph::{generators, StaticGraph};

    /// Flood the maximum value.
    #[derive(Clone)]
    struct MaxFlood;
    impl BroadcastAlgorithm for MaxFlood {
        type State = u32;
        type Msg = u32;
        type Output = u32;
        fn message(&self, state: &u32) -> u32 {
            *state
        }
        fn transition(&self, state: &u32, inbox: &[u32]) -> u32 {
            inbox.iter().copied().max().unwrap_or(*state).max(*state)
        }
        fn output(&self, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn counting_observer_counts_ring_traffic() {
        // Directed ring with self-loops: n real links + n self-loops per
        // round.
        let g = generators::directed_ring(5).with_self_loops();
        let mut exec = Execution::new(Broadcast(MaxFlood), vec![1, 2, 3, 4, 9]);
        let mut obs = CountingObserver::new();
        for _ in 0..4 {
            exec.step_observed(&g, &mut obs);
        }
        let s = obs.summary();
        assert_eq!(s.rounds, 4);
        assert_eq!(s.messages, 4 * 5);
        assert_eq!(s.self_messages, 4 * 5);
        assert_eq!(s.dropped, 0);
        // Every u32 here renders as one digit: 2 × 5 msgs × 1 byte/round.
        assert_eq!(s.payload_bytes, 4 * 10);
        assert_eq!(s.peak_state_bytes, 1);
    }

    #[test]
    fn residual_observer_tracks_flood_distance() {
        let net = StaticGraph::new(generators::directed_ring(4));
        let mut exec = Execution::new(Broadcast(MaxFlood), vec![9, 0, 0, 0]);
        let mut obs = ResidualObserver::new(DiscreteMetric, 9u32);
        let report = exec.drive(
            &net,
            RunConfig::rounds(6)
                .measure(&DiscreteMetric, &9, 0.0)
                .observer(&mut obs),
        );
        assert_eq!(obs.residuals().len(), 6);
        // The flood covers the ring in diameter = 3 rounds.
        assert_eq!(obs.residuals()[..4], [1.0, 1.0, 0.0, 0.0]);
        assert_eq!(report.converged_at, Some(3));
        // Residuals are exactly the report's distance trace.
        assert_eq!(obs.residuals(), report.distances.as_slice());
    }

    #[test]
    fn decay_rates_skip_zero_denominators() {
        let mut obs: ResidualObserver<EuclideanMetric, f64> =
            ResidualObserver::new(EuclideanMetric, 0.0);
        obs.residuals = vec![4.0, 2.0, 0.0, 0.0];
        assert_eq!(obs.decay_rates(), vec![0.5, 0.0]);
    }

    #[test]
    fn trace_sink_buffers_rounds_with_residuals() {
        let net = StaticGraph::new(generators::directed_ring(4));
        let mut exec = Execution::new(Broadcast(MaxFlood), vec![9, 0, 0, 0]);
        let mut sink = TraceSink::with_residual(DiscreteMetric, 9u32);
        let report = exec.drive(
            &net,
            RunConfig::rounds(5)
                .measure(&DiscreteMetric, &9, 0.0)
                .observer(&mut sink),
        );
        assert_eq!(sink.events().len(), 5);
        for (i, e) in sink.events().iter().enumerate() {
            assert_eq!(e.round, i as u64 + 1);
            assert_eq!(e.messages, 4);
            assert_eq!(e.self_messages, 4);
            assert_eq!(e.residual, Some(report.distances[i]));
        }
        let nd = sink.to_ndjson();
        assert_eq!(nd.lines().count(), 5);
        assert!(
            nd.lines().next().unwrap().starts_with("{\"round\":1,"),
            "{nd}"
        );
        let (events, summary) = sink.finish();
        assert_eq!(summary.rounds, 5);
        assert_eq!(summary.messages, 5 * 4);
        assert_eq!(events.len(), 5);
    }

    #[test]
    fn round_event_roundtrips_through_json() {
        let e = RoundEvent {
            round: 7,
            messages: 12,
            self_messages: 6,
            payload_bytes: 99,
            dropped: 2,
            residual: Some(0.125),
        };
        let json = serde::to_json_string(&e);
        let back: RoundEvent = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, e);
        let none = RoundEvent::empty(1);
        let json = serde::to_json_string(&none);
        assert!(json.contains("\"residual\":null"), "{json}");
        let back: RoundEvent = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, none);
    }

    #[test]
    fn count_summary_roundtrips_through_json() {
        let s = CountSummary {
            rounds: 3,
            messages: 10,
            self_messages: 5,
            payload_bytes: 42,
            dropped: 1,
            peak_state_bytes: 8,
        };
        let json = serde::to_json_string(&s);
        let back: CountSummary = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn log2_histogram_buckets_by_binary_exponent() {
        let mut h = Log2Histogram::new();
        for &x in &[1.0, 1.5, 1.999, 2.0, 3.0, 0.5, -4.0, 0.0, f64::NAN] {
            h.record(x);
        }
        assert_eq!(h.count(0), 3, "[1, 2) bucket");
        assert_eq!(h.count(1), 2, "[2, 4) bucket");
        assert_eq!(h.count(-1), 1, "[0.5, 1) bucket");
        assert_eq!(h.count(2), 1, "magnitude bucketing ignores sign");
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.non_finite(), 1);
        assert_eq!(h.total(), 9);
        assert_eq!(h.max_exponent(), Some(2));
        // Subnormals collapse into the minimum exponent bucket.
        h.record(f64::MIN_POSITIVE / 4.0);
        assert_eq!(h.count(-1023), 1);
    }

    #[test]
    fn log2_histogram_counts_and_schema_are_stable() {
        let mut h = Log2Histogram::new();
        for c in [0u64, 1, 2, 3, 4, 1024] {
            h.record_count(c);
        }
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.count(0), 1, "count 1");
        assert_eq!(h.count(1), 2, "counts 2 and 3");
        assert_eq!(h.count(2), 1, "count 4");
        assert_eq!(h.count(10), 1, "count 1024");
        let json = serde::to_json_string(&h);
        assert_eq!(
            json,
            r#"{"zeros":1,"non_finite":0,"buckets":[[0,1],[1,2],[2,1],[10,1]]}"#,
        );
        let back: Log2Histogram = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, h);
    }
}
