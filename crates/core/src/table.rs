//! The computability tables (Tables 1 and 2 of the paper) as an oracle.
//!
//! Every cell records the exact class of computable functions for a
//! (network kind, communication model, centralized help) triple, with the
//! paper's citation. Two dynamic cells are open questions in the paper
//! and are reported as such (`class: None`).

use crate::functions::FunctionClass;
use kya_runtime::CommunicationModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The "centralized help" rows of the tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CentralizedHelp {
    /// No global information at all.
    None,
    /// An upper bound `N >= n` on the network size is known to all.
    BoundKnown,
    /// The exact network size `n` is known to all.
    SizeKnown,
    /// One agent (or a known number `ℓ` of agents) is distinguished as a
    /// leader.
    Leader,
}

impl CentralizedHelp {
    /// All rows, in the order of the paper's tables.
    pub const ALL: [CentralizedHelp; 4] = [
        CentralizedHelp::None,
        CentralizedHelp::BoundKnown,
        CentralizedHelp::SizeKnown,
        CentralizedHelp::Leader,
    ];
}

impl fmt::Display for CentralizedHelp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CentralizedHelp::None => "no centralized help",
            CentralizedHelp::BoundKnown => "a bound over n is known",
            CentralizedHelp::SizeKnown => "n is known",
            CentralizedHelp::Leader => "one leader",
        };
        f.write_str(s)
    }
}

/// Static vs dynamic networks (Table 1 vs Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkKind {
    /// Static, strongly connected networks (Table 1).
    Static,
    /// Dynamic networks with finite dynamic diameter (Table 2).
    Dynamic,
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetworkKind::Static => "static",
            NetworkKind::Dynamic => "dynamic",
        })
    }
}

/// One cell of a computability table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellVerdict {
    /// The exact class of computable functions, or `None` for the
    /// paper's open cells ("?").
    pub class: Option<FunctionClass>,
    /// The paper's citation / qualifier for this cell.
    pub note: &'static str,
}

impl fmt::Display for CellVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            Some(c) => write!(f, "{c} ({})", self.note),
            None => write!(f, "? ({})", self.note),
        }
    }
}

/// The oracle: the exact class of `δ`-computable functions for the given
/// network kind, communication model, and centralized help — the contents
/// of Tables 1 and 2.
///
/// Output port awareness is only meaningful for static networks (§2.2);
/// querying it for dynamic networks returns the symmetric-column verdict
/// shape of the paper's discussion — specifically, it is reported as an
/// open/meaningless cell.
pub fn computable_class(
    kind: NetworkKind,
    model: CommunicationModel,
    help: CentralizedHelp,
) -> CellVerdict {
    use CentralizedHelp as H;
    use CommunicationModel as M;
    use FunctionClass::*;
    use NetworkKind as K;

    match (kind, model, help) {
        // ----- Table 1: static, strongly connected -----
        (K::Static, M::SimpleBroadcast, H::None) => CellVerdict {
            class: Some(SetBased),
            note: "Hendrickx et al. [20]",
        },
        (K::Static, M::SimpleBroadcast, H::BoundKnown) => CellVerdict {
            class: Some(SetBased),
            note: "Boldi & Vigna [6]",
        },
        (K::Static, M::SimpleBroadcast, H::SizeKnown) => CellVerdict {
            class: Some(SetBased),
            note: "Boldi & Vigna [6], n >= 4 (Chalopin)",
        },
        (K::Static, M::SimpleBroadcast, H::Leader) => CellVerdict {
            class: Some(SetBased),
            note: "Boldi & Vigna [6], impossibility adapted",
        },
        (K::Static, _, H::None) => CellVerdict {
            class: Some(FrequencyBased),
            note: "Theorem 4.1",
        },
        (K::Static, _, H::BoundKnown) => CellVerdict {
            class: Some(FrequencyBased),
            note: "Corollary 4.2",
        },
        (K::Static, _, H::SizeKnown) => CellVerdict {
            class: Some(MultisetBased),
            note: "Corollary 4.3",
        },
        (K::Static, _, H::Leader) => CellVerdict {
            class: Some(MultisetBased),
            note: "Corollary 4.4",
        },

        // ----- Table 2: dynamic, finite dynamic diameter -----
        (K::Dynamic, M::SimpleBroadcast, _) => CellVerdict {
            class: Some(SetBased),
            note: "Hendrickx et al. [20]",
        },
        (K::Dynamic, M::OutdegreeAware, H::None) => CellVerdict {
            class: None,
            note: "open; continuous-in-frequency computable, Corollary 5.5",
        },
        (K::Dynamic, M::OutdegreeAware, H::BoundKnown) => CellVerdict {
            class: Some(FrequencyBased),
            note: "Corollary 5.3",
        },
        (K::Dynamic, M::OutdegreeAware, H::SizeKnown) => CellVerdict {
            class: Some(MultisetBased),
            note: "Corollary 5.4",
        },
        (K::Dynamic, M::OutdegreeAware, H::Leader) => CellVerdict {
            class: None,
            note: "open; multiset asymptotically via §5.5 leader Push-Sum",
        },
        (K::Dynamic, M::Symmetric, H::None) => CellVerdict {
            class: Some(FrequencyBased),
            note: "Di Luna & Viglietta [26]",
        },
        (K::Dynamic, M::Symmetric, H::BoundKnown) => CellVerdict {
            class: Some(FrequencyBased),
            note: "Charron-Bost & Lambein-Monette [11]",
        },
        (K::Dynamic, M::Symmetric, H::SizeKnown) => CellVerdict {
            class: Some(MultisetBased),
            note: "Charron-Bost & Lambein-Monette [11]",
        },
        (K::Dynamic, M::Symmetric, H::Leader) => CellVerdict {
            class: Some(MultisetBased),
            note: "Di Luna & Viglietta [25]",
        },
        (K::Dynamic, M::OutputPortAware, _) => CellVerdict {
            class: None,
            note: "output ports are only meaningful in static networks (§2.2)",
        },
    }
}

/// The models forming the columns of a table.
pub fn columns(kind: NetworkKind) -> &'static [CommunicationModel] {
    match kind {
        NetworkKind::Static => &[
            CommunicationModel::SimpleBroadcast,
            CommunicationModel::OutdegreeAware,
            CommunicationModel::Symmetric,
            CommunicationModel::OutputPortAware,
        ],
        NetworkKind::Dynamic => &[
            CommunicationModel::SimpleBroadcast,
            CommunicationModel::OutdegreeAware,
            CommunicationModel::Symmetric,
        ],
    }
}

/// Render a whole table as aligned text (used by the `table1`/`table2`
/// harness binaries; also handy in docs and tests).
pub fn render_table(kind: NetworkKind) -> String {
    let cols = columns(kind);
    let mut out = String::new();
    let title = match kind {
        NetworkKind::Static => "Table 1: static, strongly connected networks",
        NetworkKind::Dynamic => "Table 2: dynamic networks, finite dynamic diameter",
    };
    out.push_str(title);
    out.push('\n');
    let width = 28;
    out.push_str(&format!("{:width$}", ""));
    for m in cols {
        out.push_str(&format!("| {:width$}", m.to_string()));
    }
    out.push('\n');
    for help in CentralizedHelp::ALL {
        out.push_str(&format!("{:width$}", help.to_string()));
        for &m in cols {
            let cell = computable_class(kind, m, help);
            let text = match cell.class {
                Some(c) => c.to_string(),
                None => "?".to_string(),
            };
            out.push_str(&format!("| {text:width$}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_table_matches_paper() {
        use CentralizedHelp as H;
        use CommunicationModel as M;
        use FunctionClass::*;
        // Column 1: set-based everywhere.
        for h in H::ALL {
            assert_eq!(
                computable_class(NetworkKind::Static, M::SimpleBroadcast, h).class,
                Some(SetBased)
            );
        }
        // Other columns: frequency / frequency / multiset / multiset.
        for m in [M::OutdegreeAware, M::Symmetric, M::OutputPortAware] {
            assert_eq!(
                computable_class(NetworkKind::Static, m, H::None).class,
                Some(FrequencyBased)
            );
            assert_eq!(
                computable_class(NetworkKind::Static, m, H::BoundKnown).class,
                Some(FrequencyBased)
            );
            assert_eq!(
                computable_class(NetworkKind::Static, m, H::SizeKnown).class,
                Some(MultisetBased)
            );
            assert_eq!(
                computable_class(NetworkKind::Static, m, H::Leader).class,
                Some(MultisetBased)
            );
        }
    }

    #[test]
    fn dynamic_table_matches_paper() {
        use CentralizedHelp as H;
        use CommunicationModel as M;
        use FunctionClass::*;
        let k = NetworkKind::Dynamic;
        for h in H::ALL {
            assert_eq!(
                computable_class(k, M::SimpleBroadcast, h).class,
                Some(SetBased)
            );
        }
        assert_eq!(computable_class(k, M::OutdegreeAware, H::None).class, None);
        assert_eq!(
            computable_class(k, M::OutdegreeAware, H::BoundKnown).class,
            Some(FrequencyBased)
        );
        assert_eq!(
            computable_class(k, M::OutdegreeAware, H::SizeKnown).class,
            Some(MultisetBased)
        );
        assert_eq!(
            computable_class(k, M::OutdegreeAware, H::Leader).class,
            None
        );
        assert_eq!(
            computable_class(k, M::Symmetric, H::None).class,
            Some(FrequencyBased)
        );
        assert_eq!(
            computable_class(k, M::Symmetric, H::Leader).class,
            Some(MultisetBased)
        );
    }

    #[test]
    fn monotonicity_in_help() {
        // More help never shrinks the class (where both cells are known).
        for kind in [NetworkKind::Static, NetworkKind::Dynamic] {
            for &m in columns(kind) {
                let mut last: Option<FunctionClass> = None;
                for h in CentralizedHelp::ALL {
                    // Leader and SizeKnown are incomparable forms of help
                    // in general, but in these tables the column verdicts
                    // are monotone in the row order.
                    if let Some(c) = computable_class(kind, m, h).class {
                        if let Some(prev) = last {
                            assert!(prev.is_subclass_of(c), "{kind} {m} {h}: {prev} !<= {c}");
                        }
                        last = Some(c);
                    }
                }
            }
        }
    }

    #[test]
    fn rendered_tables_contain_all_rows() {
        let t1 = render_table(NetworkKind::Static);
        assert!(t1.contains("Table 1"));
        assert!(t1.contains("no centralized help"));
        assert!(t1.contains("one leader"));
        assert_eq!(t1.lines().count(), 6);
        let t2 = render_table(NetworkKind::Dynamic);
        assert!(t2.contains("?"));
        assert_eq!(t2.lines().count(), 6);
    }

    #[test]
    fn columns_shapes() {
        assert_eq!(columns(NetworkKind::Static).len(), 4);
        assert_eq!(columns(NetworkKind::Dynamic).len(), 3);
    }
}
