//! Offline mini-serde.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a self-contained serialization layer under the `serde` name:
//!
//! - [`Value`] — a JSON-shaped data model with a writer ([`Value::to_json`])
//!   and parser ([`Value::from_json`]);
//! - [`Serialize`] / [`Deserialize`] — traits mapping types to and from
//!   [`Value`], implemented for the std types the workspace uses;
//! - `#[derive(Serialize, Deserialize)]` — re-exported from the
//!   companion `serde_derive` proc-macro crate (feature `derive`),
//!   supporting named-field structs and unit enums.
//!
//! This is intentionally *not* upstream serde's zero-copy visitor
//! architecture: round-tripping simulation artifacts (fault plans,
//! reports, graphs) through JSON is the only requirement here, and a
//! concrete value tree keeps the whole layer small and auditable.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A required object field, as an error otherwise.
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(x) => {
                if x.is_finite() {
                    // Shortest round-trip formatting; force a decimal
                    // point so the value re-parses as a float.
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; encode as null like serde_json.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(s, out),
            Value::Seq(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Map(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] describing the first syntax problem.
    pub fn from_json(text: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{lit}` at byte {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Value::Seq(items)),
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => return Ok(Value::Map(entries)),
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(Error::custom("truncated \\u escape"));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        self.pos += 4;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => {
                        return Err(Error::custom(format!("bad escape {:?}", other)));
                    }
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

// ---------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Serialize any value to compact JSON text.
pub fn to_json_string<T: Serialize + ?Sized>(value: &T) -> String {
    value.to_value().to_json()
}

/// Deserialize a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on syntax or shape mismatches.
pub fn from_json_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&Value::from_json(text)?)
}

// ---------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: u64 = match *v {
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::UInt(u) => u,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(Error::custom("expected float")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::UInt(u64::MAX),
            Value::Float(1.5),
            Value::Str("hi \"there\"\n".into()),
        ] {
            let json = v.to_json();
            assert_eq!(Value::from_json(&json).unwrap(), v, "{json}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Map(vec![
            ("xs".into(), Value::Seq(vec![Value::Int(1), Value::Int(2)])),
            (
                "inner".into(),
                Value::Map(vec![("f".into(), Value::Float(0.25))]),
            ),
        ]);
        let json = v.to_json();
        assert_eq!(json, r#"{"xs":[1,2],"inner":{"f":0.25}}"#);
        assert_eq!(Value::from_json(&json).unwrap(), v);
    }

    #[test]
    fn typed_roundtrips() {
        let xs = vec![3u64, 1, 4];
        let json = to_json_string(&xs);
        assert_eq!(from_json_str::<Vec<u64>>(&json).unwrap(), xs);

        let opt: Option<i64> = None;
        assert_eq!(to_json_string(&opt), "null");
        assert_eq!(from_json_str::<Option<i64>>("null").unwrap(), None);
        assert_eq!(from_json_str::<Option<i64>>("-7").unwrap(), Some(-7));

        let pair = (2usize, -3i64);
        assert_eq!(
            from_json_str::<(usize, i64)>(&to_json_string(&pair)).unwrap(),
            pair
        );
    }

    #[test]
    fn floats_reparse_as_floats() {
        let json = to_json_string(&2.0f64);
        assert_eq!(json, "2.0");
        assert_eq!(from_json_str::<f64>(&json).unwrap(), 2.0);
    }

    #[test]
    fn shape_errors_are_reported() {
        assert!(from_json_str::<u32>("\"nope\"").is_err());
        assert!(from_json_str::<u8>("300").is_err());
        assert!(Value::from_json("{\"a\":}").is_err());
        assert!(Value::from_json("[1, 2").is_err());
        assert!(Value::from_json("12 34").is_err());
    }
}
