//! The round-by-round executor.

use crate::algorithm::Algorithm;
use crate::churn::{Membership, ReinjectPolicy};
use crate::config::RunConfig;
use crate::faults::FaultEvents;
use crate::metric::Metric;
use crate::report::CellReport;
use crate::telemetry::{NullObserver, Observer};
use kya_graph::{Digraph, DynamicGraph};
use std::ops::Range;

/// Split `0..n` into at most `threads` contiguous, gap-free ranges of
/// near-equal length — the sharding layout every parallel phase uses.
/// Shards concatenate back in range order, so no post-sort is needed.
pub(crate) fn shard_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let shards = threads.min(n).max(1);
    (0..shards)
        .map(|t| (t * n / shards)..((t + 1) * n / shards))
        .collect()
}

/// Run `f` over each range on its own crossbeam worker and concatenate
/// the per-range outputs in range order. With a single range, runs on
/// the calling thread — same values either way, since every shard's
/// output depends only on its own range.
pub(crate) fn run_sharded<T, F>(ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Range<usize>) -> Vec<T> + Sync,
{
    if ranges.len() == 1 {
        return f(&ranges[0]);
    }
    let mut out = Vec::new();
    crossbeam::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ranges.iter().map(|r| scope.spawn(move |_| f(r))).collect();
        for h in handles {
            out.extend(h.join().expect("shard worker panicked"));
        }
    })
    .expect("crossbeam scope");
    out
}

/// An execution of an [`Algorithm`] on a network: the sequence of global
/// states `C^0, C^1, ...` of §2.2, advanced one communication-closed round
/// at a time.
///
/// The executor is model-agnostic: the communication-model discipline is
/// in the algorithm's type (see [`crate::Broadcast`] /
/// [`crate::Isotropic`]). Port assignment within a round uses the graph's
/// port labels when present (sorted by label) and edge insertion order
/// otherwise, so port-aware algorithms require port-colored static
/// graphs to be meaningful — exactly the paper's proviso (§2.2).
#[derive(Clone, Debug)]
pub struct Execution<A: Algorithm> {
    algo: A,
    states: Vec<A::State>,
    round: u64,
}

impl<A: Algorithm> Execution<A> {
    /// Start an execution from the given initial states (one per agent).
    pub fn new(algo: A, initial_states: Vec<A::State>) -> Execution<A> {
        Execution {
            algo,
            states: initial_states,
            round: 0,
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current states, indexed by agent.
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// Current outputs, indexed by agent.
    pub fn outputs(&self) -> Vec<A::Output> {
        self.states.iter().map(|s| self.algo.output(s)).collect()
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Execute one round on the given communication graph.
    ///
    /// The graph must have `n()` vertices and a self-loop at every vertex
    /// (§2.1); [`Digraph::with_self_loops`] provides the closure.
    ///
    /// **Delivery order contract:** every inbox is delivered in ascending
    /// `(source id, port rank)` order, where the port rank of an edge is
    /// its index in the source's `(port label, edge id)`-sorted out-edge
    /// list. Algorithms must treat the inbox as a multiset, but f64
    /// summation is order-sensitive, so all execution paths — `step`,
    /// [`Execution::step_parallel`], and `FaultyExecution` — pin this
    /// one order to keep float runs bit-identical across paths
    /// (conformance check `paths`, `kya check`).
    ///
    /// # Panics
    ///
    /// Panics if the vertex count mismatches, a self-loop is missing, or
    /// the algorithm returns the wrong number of port messages.
    pub fn step(&mut self, graph: &Digraph) {
        self.step_observed(graph, &mut NullObserver);
    }

    /// Like [`Execution::step`], with an [`Observer`] seeing the round
    /// boundaries and every delivered message (in the deterministic
    /// routing order).
    ///
    /// # Panics
    ///
    /// Same contract as [`Execution::step`].
    pub fn step_observed<O: Observer<A>>(&mut self, graph: &Digraph, obs: &mut O) {
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        obs.on_round_start(self.round, &self.states);
        let n = graph.n();
        let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
            .map(|v| Vec::with_capacity(graph.indegree(v)))
            .collect();
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {}: vertex {v} lacks a self-loop",
                self.round
            );
            let outdeg = graph.outdegree(v);
            let msgs = self.algo.send(&self.states[v], outdeg);
            assert_eq!(
                msgs.len(),
                outdeg,
                "algorithm produced {} messages for outdegree {outdeg}",
                msgs.len()
            );
            // Port discipline: out-edges in (port, edge id) order, from
            // the graph's cached canonical port order.
            for (msg, &e) in msgs.into_iter().zip(graph.port_ranks().out_edges_ranked(v)) {
                let dst = graph.edges()[e].dst;
                obs.on_message(self.round, v, dst, &msg);
                inboxes[dst].push(msg);
            }
        }
        for (v, inbox) in inboxes.into_iter().enumerate() {
            self.states[v] =
                self.algo
                    .transition_with_outdegree(&self.states[v], graph.outdegree(v), &inbox);
        }
        obs.on_round_end(self.round, &self.algo, &self.states);
    }

    /// Execute one configured run: the single entry point behind every
    /// legacy `run*` method (see [`RunConfig`] for the knobs).
    ///
    /// Per round: apply the membership's rejoin policy (if churned),
    /// fetch the round's graph, step — sequentially or sharded over
    /// `cfg.threads` contiguous agent ranges, observed or not — and,
    /// if measuring, record the round's distance. Convergence at
    /// tolerance ε is judged post hoc over the whole trace (§2.3): the
    /// full budget is executed unless a [`RunConfig::confirm`] window
    /// closes early or an output goes non-finite (no later round can
    /// converge, so the run ends at once with
    /// [`CellReport::diverged_at`] set).
    ///
    /// Non-consuming: the execution can be driven again afterwards; a
    /// second call measures from the current round. For unmeasured
    /// configs the report carries only `rounds_run`.
    ///
    /// # Panics
    ///
    /// Same per-round contract as [`Execution::step`]; additionally
    /// panics if `cfg.threads == 0`.
    pub fn drive(&mut self, net: &dyn DynamicGraph, cfg: RunConfig<'_, A>) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        assert!(cfg.threads > 0, "at least one worker thread");
        let RunConfig {
            rounds,
            threads,
            mut observer,
            membership,
            dist,
            eps,
            confirm,
            invariant,
            bandwidth,
        } = cfg;
        let start = self.round;
        let mut distances = Vec::new();
        let mut entered: Option<u64> = None;
        let mut executed: u64 = 0;
        while executed < rounds {
            if let Some((membership, reinit)) = membership {
                self.apply_rejoins(membership, reinit);
            }
            let g = net.graph_ref(self.round + 1);
            if let Some((cap, ledger)) = bandwidth {
                ledger.charge_round(g.edge_count() as u64, cap.bits_per_edge());
            }
            match (&mut observer, threads) {
                (None, 1) => self.step(&g),
                (None, t) => self.step_parallel(&g, t),
                (Some(o), 1) => self.step_observed(&g, o),
                (Some(o), t) => self.step_parallel_observed(&g, t, o),
            }
            executed += 1;
            if let Some(dist) = &dist {
                let d = dist(&self.outputs());
                distances.push(d);
                if !d.is_finite() {
                    break;
                }
                if let Some(confirm) = confirm {
                    if d <= eps {
                        let at = *entered.get_or_insert(self.round);
                        if self.round - at >= confirm {
                            break;
                        }
                    } else {
                        entered = None;
                    }
                }
            }
        }
        let measured = dist.is_some();
        let mass = invariant.map(|f| f(&self.states));
        let mut report =
            CellReport::from_trace(start, distances, eps, 0, FaultEvents::default(), mass);
        if !measured {
            report.rounds_run = executed;
        }
        if let Some(obs) = observer.as_mut() {
            if let Some(round) = report.converged_at {
                obs.on_converged(round, report.final_distance);
            }
        }
        report
    }

    /// Execute `rounds` rounds on a dynamic graph, starting from the round
    /// after the current one.
    #[deprecated(note = "use `drive(net, RunConfig::rounds(rounds))`")]
    pub fn run(&mut self, net: &dyn DynamicGraph, rounds: u64)
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        let _ = self.drive(net, RunConfig::rounds(rounds));
    }

    /// Like [`Execution::run`], driving an [`Observer`] each round.
    #[deprecated(note = "use `drive(net, RunConfig::rounds(rounds).observer(obs))`")]
    pub fn run_observed<O: Observer<A>>(&mut self, net: &dyn DynamicGraph, rounds: u64, obs: &mut O)
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        let _ = self.drive(net, RunConfig::rounds(rounds).observer(obs));
    }

    /// Apply the membership's rejoin transitions for the **upcoming**
    /// round (`round() + 1`): under [`ReinjectPolicy::Reset`], every
    /// agent rejoining at that round has its parked state replaced by
    /// `reinit(agent, &parked)`; under [`ReinjectPolicy::Carry`] states
    /// are untouched. Returns the rejoining agents either way.
    ///
    /// `reinit` receives the parked state so callers can account the
    /// mass delta `fresh − parked` explicitly (the F8 ledger) — e.g. by
    /// accumulating into a `std::cell::Cell` captured by the closure.
    ///
    /// Call this immediately before stepping on the round's graph;
    /// [`Execution::run_churned`] does so for every round it runs.
    pub fn apply_rejoins(
        &mut self,
        membership: &Membership,
        reinit: &dyn Fn(usize, &A::State) -> A::State,
    ) -> Vec<usize> {
        let rejoining = membership.rejoining_at(self.round + 1);
        if membership.policy() == ReinjectPolicy::Reset {
            for &v in &rejoining {
                self.states[v] = reinit(v, &self.states[v]);
            }
        }
        rejoining
    }

    /// Execute `rounds` rounds under churn: each round, first apply the
    /// membership's rejoin policy ([`Execution::apply_rejoins`]), then
    /// step on the network's graph. The network is expected to mask
    /// absent agents (wrap it in [`crate::churn::ChurnMasked`]) — this
    /// method only owns the *state* side of churn, the re-injection.
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(rounds).membership(membership, reinit))`"
    )]
    pub fn run_churned(
        &mut self,
        net: &dyn DynamicGraph,
        membership: &Membership,
        reinit: &dyn Fn(usize, &A::State) -> A::State,
        rounds: u64,
    ) where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        let _ = self.drive(
            net,
            RunConfig::rounds(rounds).membership(membership, reinit),
        );
    }

    /// Like [`Execution::step`], but computes sends, routing, and
    /// transitions in parallel across agents (`threads` crossbeam
    /// workers).
    ///
    /// Bit-identical to `step` — the round is communication closed, so
    /// per-agent work is embarrassingly parallel, and routing is sharded
    /// by *destination*: each worker assembles its agents' inboxes from
    /// the in-edge lists and then restores the canonical ascending
    /// `(source id, port rank)` delivery order (see
    /// [`Execution::step_observed`]). In-edge lists are in insertion
    /// order, not source order, so the sort is load-bearing: without it
    /// f64 runs diverge bitwise from the sequential path
    /// (`tests/conformance.rs` pins this). Useful for large-`n`
    /// simulations; for small networks the sequential `step` is faster.
    ///
    /// # Panics
    ///
    /// Same contract as [`Execution::step`]; additionally panics if
    /// `threads == 0`.
    pub fn step_parallel(&mut self, graph: &Digraph, threads: usize)
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        assert!(threads > 0, "at least one worker thread");
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        let n = graph.n();
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {}: vertex {v} lacks a self-loop",
                self.round
            );
        }
        let algo = &self.algo;
        let states = &self.states;
        let round = self.round;
        let ranges = shard_ranges(n, threads);
        let order = graph.port_ranks();

        // Phase 1: sends, sharded over contiguous agent ranges; shards
        // concatenate in range order, so no re-sort is needed.
        let sends: Vec<Vec<A::Msg>> = run_sharded(&ranges, |r| {
            r.clone()
                .map(|v| {
                    let outdeg = graph.outdegree(v);
                    let msgs = algo.send(&states[v], outdeg);
                    assert_eq!(
                        msgs.len(),
                        outdeg,
                        "round {round}: wrong message count from agent {v}"
                    );
                    msgs
                })
                .collect()
        });

        // Phase 2: routing, sharded by contiguous destination ranges.
        // Workers read in-edges (insertion order) and sort each inbox
        // back into the canonical ascending (src, port rank) delivery
        // order; sends[v][r] is the message the algorithm addressed to
        // port rank r of agent v.
        let sends_ref = &sends;
        let inboxes: Vec<Vec<A::Msg>> = run_sharded(&ranges, |r| {
            r.clone()
                .map(|dst| {
                    let mut keyed: Vec<(u64, A::Msg)> = graph
                        .in_edges(dst)
                        .map(|e| {
                            let src = graph.edges()[e].src;
                            let rank = order.rank(e);
                            let key = ((src as u64) << 32) | rank as u64;
                            (key, sends_ref[src][rank as usize].clone())
                        })
                        .collect();
                    keyed.sort_unstable_by_key(|&(k, _)| k);
                    keyed.into_iter().map(|(_, m)| m).collect::<Vec<_>>()
                })
                .collect()
        });

        // Phase 3: transitions, sharded over contiguous agent ranges.
        let inboxes_ref = &inboxes;
        let next: Vec<A::State> = run_sharded(&ranges, |r| {
            r.clone()
                .map(|v| {
                    algo.transition_with_outdegree(&states[v], graph.outdegree(v), &inboxes_ref[v])
                })
                .collect()
        });
        self.states = next;
    }

    /// Like [`Execution::step_parallel`], with an [`Observer`].
    ///
    /// The observer runs on the calling thread and sees the **same event
    /// stream** as [`Execution::step_observed`]: `on_message` fires in
    /// the sequential routing phase, which iterates agents and ports in
    /// the sequential executor's order. `tests/parallel_equivalence.rs`
    /// pins this for every algorithm in `kya_algos`.
    ///
    /// # Panics
    ///
    /// Same contract as [`Execution::step_parallel`].
    pub fn step_parallel_observed<O: Observer<A>>(
        &mut self,
        graph: &Digraph,
        threads: usize,
        obs: &mut O,
    ) where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        assert!(threads > 0, "at least one worker thread");
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        obs.on_round_start(self.round, &self.states);
        let n = graph.n();
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {}: vertex {v} lacks a self-loop",
                self.round
            );
        }
        let algo = &self.algo;
        let states = &self.states;
        let round = self.round;
        let ranges = shard_ranges(n, threads);

        // Phase 1: sends, sharded over contiguous agent ranges.
        let sends: Vec<Vec<A::Msg>> = run_sharded(&ranges, |r| {
            r.clone()
                .map(|v| {
                    let outdeg = graph.outdegree(v);
                    let msgs = algo.send(&states[v], outdeg);
                    assert_eq!(
                        msgs.len(),
                        outdeg,
                        "round {round}: wrong message count from agent {v}"
                    );
                    msgs
                })
                .collect()
        });

        // Phase 2: route (sequential — cheap) with the same port order as
        // the sequential step.
        let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
            .map(|v| Vec::with_capacity(graph.indegree(v)))
            .collect();
        let order = graph.port_ranks();
        for (v, msgs) in sends.into_iter().enumerate() {
            for (msg, &e) in msgs.into_iter().zip(order.out_edges_ranked(v)) {
                let dst = graph.edges()[e].dst;
                obs.on_message(self.round, v, dst, &msg);
                inboxes[dst].push(msg);
            }
        }

        // Phase 3: transitions, sharded over contiguous agent ranges.
        let inboxes_ref = &inboxes;
        let next: Vec<A::State> = run_sharded(&ranges, |r| {
            r.clone()
                .map(|v| {
                    algo.transition_with_outdegree(&states[v], graph.outdegree(v), &inboxes_ref[v])
                })
                .collect()
        });
        self.states = next;
        obs.on_round_end(self.round, &self.algo, &self.states);
    }

    /// Run for up to `max_rounds` rounds, measuring the worst-case
    /// distance of the outputs from `target` each round, and report when
    /// the outputs entered the ε-ball *and stayed there* for the rest of
    /// the run (§2.3's convergence at tolerance `eps`).
    ///
    /// The full budget is executed — convergence is judged post-hoc over
    /// the whole trace, so a transient dip into the ball does not count —
    /// unless an output goes non-finite, which ends the run at once with
    /// [`CellReport::diverged_at`] set. Non-consuming: the execution can
    /// be stepped or measured again afterwards; a second call measures
    /// from the current round.
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(max_rounds).measure(metric, target, eps))`"
    )]
    pub fn run_until<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
    ) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        self.drive(
            net,
            RunConfig::rounds(max_rounds).measure(metric, target, eps),
        )
    }

    /// Like [`Execution::run_until`], driving an [`Observer`] each round
    /// (and firing `on_converged` when the sealed report says so).
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(max_rounds).measure(metric, target, eps).observer(obs))`"
    )]
    pub fn run_until_observed<M: Metric<A::Output>, O: Observer<A>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
        obs: &mut O,
    ) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        self.drive(
            net,
            RunConfig::rounds(max_rounds)
                .measure(metric, target, eps)
                .observer(obs),
        )
    }

    /// Like [`Execution::run_until`], but stop early once the outputs
    /// have stayed within `eps` of `target` for `confirm` consecutive
    /// rounds — the budget-saving variant for sweeps whose cells
    /// converge long before `max_rounds`.
    ///
    /// The stay-in-ball criterion is unchanged; only the observation
    /// window is truncated, so `converged_at` equals the full-budget
    /// answer whenever the algorithm does not leave the ball again after
    /// `confirm` rounds inside it.
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(max_rounds).measure(metric, target, eps).confirm(confirm))`"
    )]
    pub fn run_until_converged<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
        confirm: u64,
    ) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        self.drive(
            net,
            RunConfig::rounds(max_rounds)
                .measure(metric, target, eps)
                .confirm(confirm),
        )
    }

    /// Like [`Execution::run_until_converged`], driving an [`Observer`]
    /// each round.
    #[allow(clippy::too_many_arguments)] // mirrors run_until_converged + observer
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(max_rounds).measure(metric, target, eps).confirm(confirm).observer(obs))`"
    )]
    pub fn run_until_converged_observed<M: Metric<A::Output>, O: Observer<A>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
        confirm: u64,
        obs: &mut O,
    ) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        self.drive(
            net,
            RunConfig::rounds(max_rounds)
                .measure(metric, target, eps)
                .confirm(confirm)
                .observer(obs),
        )
    }

    /// Like [`Execution::run_until`], but against per-agent targets:
    /// the measured distance of a round is `max_i δ(output_i,
    /// targets[i])`. This is the primitive behind
    /// [`crate::testing::check_self_stabilization`].
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != n()`.
    pub fn run_until_targets<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        targets: &[A::Output],
        eps: f64,
        max_rounds: u64,
    ) -> CellReport
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        assert_eq!(targets.len(), self.n(), "one target per agent");
        let dist = |outputs: &[A::Output]| {
            outputs
                .iter()
                .zip(targets)
                .map(|(o, t)| {
                    let d = metric.distance(o, t);
                    if d.is_finite() {
                        d
                    } else {
                        f64::INFINITY
                    }
                })
                .fold(0.0, f64::max)
        };
        self.drive(net, RunConfig::rounds(max_rounds).measure_with(dist, eps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Broadcast, BroadcastAlgorithm};
    use kya_graph::{generators, StaticGraph};

    /// Gossip the set of seen values; output the set's maximum.
    #[derive(Clone)]
    struct SetGossip;
    impl BroadcastAlgorithm for SetGossip {
        type State = Vec<u32>; // sorted set
        type Msg = Vec<u32>;
        type Output = u32;
        fn message(&self, state: &Vec<u32>) -> Vec<u32> {
            state.clone()
        }
        fn transition(&self, state: &Vec<u32>, inbox: &[Vec<u32>]) -> Vec<u32> {
            let mut merged = state.clone();
            for m in inbox {
                merged.extend_from_slice(m);
            }
            merged.sort_unstable();
            merged.dedup();
            merged
        }
        fn output(&self, state: &Vec<u32>) -> u32 {
            *state.last().expect("non-empty set")
        }
    }

    #[test]
    fn gossip_floods_in_diameter_rounds() {
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = [3, 9, 2, 9, 1, 4].iter().map(|&v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        exec.drive(&net, RunConfig::rounds(5));
        assert!(exec.outputs().iter().all(|&x| x == 9));
        // All agents hold the full set.
        assert!(exec.states().iter().all(|s| s == &vec![1, 2, 3, 4, 9]));
    }

    #[test]
    fn run_until_measures_convergence() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        let report = exec.drive(
            &net,
            RunConfig::rounds(20).measure(&DiscreteMetric, &5u32, 0.0),
        );
        // The max floods the ring in diameter = 5 rounds.
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.convergence_rounds, Some(5));
        assert_eq!(report.rounds_run, 20, "full budget is executed");
        assert_eq!(report.final_distance, 0.0);
        assert_eq!(exec.round(), 20, "non-consuming: execution advanced");
    }

    #[test]
    fn run_until_converged_stops_early() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        let report = exec.drive(
            &net,
            RunConfig::rounds(10_000)
                .measure(&DiscreteMetric, &5u32, 0.0)
                .confirm(3),
        );
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.rounds_run, 8, "5 to converge + 3 to confirm");
        assert_eq!(exec.round(), 8);
    }

    #[test]
    fn run_until_resumes_from_current_round() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        exec.drive(&net, RunConfig::rounds(2));
        let report = exec.drive(
            &net,
            RunConfig::rounds(10).measure(&DiscreteMetric, &5u32, 0.0),
        );
        // Rounds are absolute: convergence still lands at round 5, but
        // only 3 of this call's rounds were needed.
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.convergence_rounds, Some(3));
        assert_eq!(report.rounds_run, 10);
    }

    #[test]
    fn run_until_targets_checks_per_agent() {
        use crate::metric::DiscreteMetric;
        // Frozen states: each agent keeps its own value, so per-agent
        // targets equal to the initial values are hit at round 1.
        struct Keep;
        impl BroadcastAlgorithm for Keep {
            type State = u32;
            type Msg = ();
            type Output = u32;
            fn message(&self, _: &u32) {}
            fn transition(&self, s: &u32, _: &[()]) -> u32 {
                *s
            }
            fn output(&self, s: &u32) -> u32 {
                *s
            }
        }
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(Keep), vec![7, 8, 9]);
        let targets = [7u32, 8, 9];
        let report = exec.run_until_targets(&net, &DiscreteMetric, &targets, 0.0, 5);
        assert_eq!(report.converged_at, Some(1));
        // A wrong per-agent target never converges.
        let mut exec = Execution::new(Broadcast(Keep), vec![7, 8, 9]);
        let report = exec.run_until_targets(&net, &DiscreteMetric, &[7, 8, 0], 0.0, 5);
        assert_eq!(report.converged_at, None);
    }

    #[test]
    #[should_panic(expected = "one target per agent")]
    fn run_until_targets_rejects_wrong_arity() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2], vec![3]]);
        let _ = exec.run_until_targets(&net, &DiscreteMetric, &[1u32], 0.0, 5);
    }

    /// Frozen states: each agent keeps its value forever.
    struct Keep;
    impl BroadcastAlgorithm for Keep {
        type State = u32;
        type Msg = ();
        type Output = u32;
        fn message(&self, _: &u32) {}
        fn transition(&self, s: &u32, _: &[()]) -> u32 {
            *s
        }
        fn output(&self, s: &u32) -> u32 {
            *s
        }
    }

    #[test]
    fn run_until_with_zero_budget_reports_nothing() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(Keep), vec![5, 5, 5]);
        let report = exec.drive(
            &net,
            RunConfig::rounds(0).measure(&DiscreteMetric, &5u32, 0.0),
        );
        // Zero rounds: nothing measured, so nothing converged — even
        // though the initial states already sit on the target.
        assert_eq!(report.rounds_run, 0);
        assert_eq!(report.converged_at, None);
        assert_eq!(report.final_distance, 0.0, "empty trace defaults to 0");
        assert!(report.distances.is_empty());
        assert_eq!(exec.round(), 0, "no rounds executed");
        // The early-exit variant behaves identically at budget 0.
        let report = exec.drive(
            &net,
            RunConfig::rounds(0)
                .measure(&DiscreteMetric, &5u32, 0.0)
                .confirm(3),
        );
        assert_eq!(report.rounds_run, 0);
        assert_eq!(report.converged_at, None);
    }

    #[test]
    fn run_until_on_already_converged_states_reports_round_one() {
        use crate::metric::{DiscreteMetric, EuclideanMetric};
        // Outputs sit on the target from the start; convergence is still
        // dated to the end of round 1, the first *measured* round.
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(Keep), vec![5, 5, 5]);
        let report = exec.drive(
            &net,
            RunConfig::rounds(4).measure(&DiscreteMetric, &5u32, 0.0),
        );
        assert_eq!(report.converged_at, Some(1));
        assert_eq!(report.convergence_rounds, Some(1));
        assert_eq!(report.rounds_run, 4);
        assert!(report.distances.iter().all(|&d| d == 0.0));
        // Same under a continuous metric on f64 outputs.
        struct KeepF;
        impl BroadcastAlgorithm for KeepF {
            type State = f64;
            type Msg = ();
            type Output = f64;
            fn message(&self, _: &f64) {}
            fn transition(&self, s: &f64, _: &[()]) -> f64 {
                *s
            }
            fn output(&self, s: &f64) -> f64 {
                *s
            }
        }
        let mut exec = Execution::new(Broadcast(KeepF), vec![2.5, 2.5, 2.5]);
        let report = exec.drive(
            &net,
            RunConfig::rounds(4).measure(&EuclideanMetric, &2.5, 0.0),
        );
        assert_eq!(report.converged_at, Some(1));
        // run_until_converged stops right after the confirm window.
        let mut exec = Execution::new(Broadcast(Keep), vec![5, 5, 5]);
        let report = exec.drive(
            &net,
            RunConfig::rounds(1000)
                .measure(&DiscreteMetric, &5u32, 0.0)
                .confirm(2),
        );
        assert_eq!(report.converged_at, Some(1));
        assert_eq!(report.rounds_run, 3, "1 to converge + 2 to confirm");
    }

    #[test]
    fn eps_zero_discrete_vs_euclidean() {
        use crate::metric::{DiscreteMetric, EuclideanMetric};
        struct KeepF;
        impl BroadcastAlgorithm for KeepF {
            type State = f64;
            type Msg = ();
            type Output = f64;
            fn message(&self, _: &f64) {}
            fn transition(&self, s: &f64, _: &[()]) -> f64 {
                *s
            }
            fn output(&self, s: &f64) -> f64 {
                *s
            }
        }
        let net = StaticGraph::new(generators::directed_ring(3));
        // Outputs a hair off the target: the discrete metric says
        // distance 1 and the euclidean metric a tiny positive number —
        // at eps = 0.0 neither ever converges.
        let inits = vec![1.0, 1.0, 1.0 + 1e-12];
        let mut exec = Execution::new(Broadcast(KeepF), inits.clone());
        let report = exec.drive(
            &net,
            RunConfig::rounds(5).measure(&DiscreteMetric, &1.0, 0.0),
        );
        assert_eq!(report.converged_at, None);
        assert_eq!(report.final_distance, 1.0, "discrete: unequal is 1");
        let mut exec = Execution::new(Broadcast(KeepF), inits);
        let report = exec.drive(
            &net,
            RunConfig::rounds(5).measure(&EuclideanMetric, &1.0, 0.0),
        );
        assert_eq!(report.converged_at, None);
        assert!(report.final_distance > 0.0 && report.final_distance < 1e-11);
        // Exactly on target, eps = 0.0 converges under both metrics.
        let mut exec = Execution::new(Broadcast(KeepF), vec![1.0, 1.0, 1.0]);
        assert_eq!(
            exec.drive(
                &net,
                RunConfig::rounds(5).measure(&DiscreteMetric, &1.0, 0.0)
            )
            .converged_at,
            Some(1)
        );
        let mut exec = Execution::new(Broadcast(KeepF), vec![1.0, 1.0, 1.0]);
        assert_eq!(
            exec.drive(
                &net,
                RunConfig::rounds(5).measure(&EuclideanMetric, &1.0, 0.0)
            )
            .converged_at,
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "lacks a self-loop")]
    fn missing_self_loop_rejected() {
        let g = generators::directed_ring(3); // no self-loops
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2], vec![3]]);
        exec.step(&g);
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_rejected() {
        let g = generators::directed_ring(4).with_self_loops();
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1]]);
        exec.step(&g);
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let g = generators::random_strongly_connected(12, 10, 3).with_self_loops();
        let inits: Vec<Vec<u32>> = (0..12).map(|v| vec![v % 4]).collect();
        let mut seq = Execution::new(Broadcast(SetGossip), inits.clone());
        let mut par = Execution::new(Broadcast(SetGossip), inits);
        for _ in 0..8 {
            seq.step(&g);
            par.step_parallel(&g, 4);
            assert_eq!(seq.states(), par.states());
            assert_eq!(seq.round(), par.round());
        }
    }

    /// Order-sensitive f64 fold: the sum of the inbox, accumulated in
    /// delivery order. Any reordering of the inbox changes the rounding
    /// and hence the bit pattern of the result.
    #[derive(Clone)]
    struct OrderSum;
    impl BroadcastAlgorithm for OrderSum {
        type State = f64;
        type Msg = f64;
        type Output = f64;
        fn message(&self, s: &f64) -> f64 {
            *s
        }
        fn transition(&self, _: &f64, inbox: &[f64]) -> f64 {
            inbox.iter().fold(0.0, |acc, m| acc + m)
        }
        fn output(&self, s: &f64) -> f64 {
            *s
        }
    }

    #[test]
    fn parallel_routing_restores_delivery_order() {
        // In-star built with sources in *descending* order, so the
        // center's in-edge list is the reverse of the canonical
        // ascending-source delivery order; the self-loops come last.
        // step_parallel routes by in-edge list and must sort back to
        // canonical order, or the f64 fold below rounds differently.
        let n = 6;
        let mut g = Digraph::new(n);
        for src in (1..n).rev() {
            g.add_edge(src, 0);
        }
        let g = g.with_self_loops();
        // Magnitudes spread far enough that every permutation of the
        // sum rounds differently.
        let inits = vec![1e16, 3.0, 1e-7, 2.0, 1e7, 1.0];
        let mut seq = Execution::new(Broadcast(OrderSum), inits.clone());
        let mut par = Execution::new(Broadcast(OrderSum), inits);
        for _ in 0..4 {
            seq.step(&g);
            par.step_parallel(&g, 3);
            for (a, b) in seq.states().iter().zip(par.states()) {
                assert_eq!(a.to_bits(), b.to_bits(), "f64 paths diverged bitwise");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallel_step_rejects_zero_threads() {
        let g = generators::directed_ring(2).with_self_loops();
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2]]);
        exec.step_parallel(&g, 0);
    }

    #[test]
    fn deterministic_replay() {
        let net = StaticGraph::new(generators::random_strongly_connected(8, 6, 11));
        let inits: Vec<Vec<u32>> = (0..8).map(|v| vec![v * 7 % 5]).collect();
        let mut a = Execution::new(Broadcast(SetGossip), inits.clone());
        let mut b = Execution::new(Broadcast(SetGossip), inits);
        a.drive(&net, RunConfig::rounds(10));
        b.drive(&net, RunConfig::rounds(10));
        assert_eq!(a.states(), b.states());
    }
}
