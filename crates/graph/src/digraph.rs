//! The directed multigraph type.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// A vertex identifier: vertices of an `n`-vertex graph are `0..n`.
///
/// The paper writes `[n] = {1, ..., n}`; we use zero-based indices.
pub type Vertex = usize;

/// An edge identifier: index into [`Digraph::edges`].
pub type EdgeId = usize;

/// A directed edge of a multigraph, optionally labelled with an output
/// port.
///
/// Output ports implement the paper's *output port awareness* model
/// (§2.2): the outgoing edges of each vertex carry locally-unique labels
/// `0..outdegree`, and a sender may emit a different message on each port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: Vertex,
    /// Target vertex.
    pub dst: Vertex,
    /// Output-port label, if the graph is port-colored.
    pub port: Option<u32>,
}

/// A directed multigraph on vertices `0..n()`, stored as an explicit edge
/// list with per-vertex adjacency indices.
///
/// Parallel edges are permitted (minimum bases need them); self-loops are
/// ordinary edges. Use [`Digraph::with_self_loops`] to obtain the closure
/// the communication model requires (§2.1: "a self-loop at each vertex in
/// each graph").
///
/// ```
/// use kya_graph::Digraph;
/// let mut g = Digraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// assert_eq!(g.outdegree(0), 1);
/// assert_eq!(g.in_neighbors(1).collect::<Vec<_>>(), vec![0]);
/// ```
#[derive(Clone)]
pub struct Digraph {
    n: usize,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
    // Lazily-computed canonical port order; invalidated by every edge or
    // port mutation and excluded from equality and serialization.
    port_order: OnceLock<PortOrder>,
}

/// The canonical port order of a [`Digraph`], computed once per graph by
/// [`Digraph::port_ranks`].
///
/// The *port rank* of an edge is its index in the source vertex's
/// out-edge list sorted by `(port label, edge id)` — unlabelled edges
/// sort first, ties break by insertion order. This is the order in which
/// an output-port-aware sender's messages line up with its out-edges,
/// and the secondary key of the canonical ascending `(source id, port
/// rank)` delivery order every executor guarantees.
#[derive(Clone, Debug)]
pub struct PortOrder {
    /// `rank[e]` is the port rank of edge `e` among its source's out-edges.
    rank: Vec<u32>,
    /// All edge ids grouped by source vertex, in ascending rank order.
    sorted: Vec<EdgeId>,
    /// `sorted[start[v]..start[v + 1]]` are the out-edges of `v`.
    start: Vec<usize>,
}

impl PortOrder {
    fn build(g: &Digraph) -> PortOrder {
        let mut rank = vec![0u32; g.edges.len()];
        let mut sorted = Vec::with_capacity(g.edges.len());
        let mut start = Vec::with_capacity(g.n + 1);
        start.push(0);
        for v in 0..g.n {
            let mut ports: Vec<(Option<u32>, EdgeId)> =
                g.out_adj[v].iter().map(|&e| (g.edges[e].port, e)).collect();
            ports.sort_unstable();
            for (k, &(_, e)) in ports.iter().enumerate() {
                rank[e] = k as u32;
                sorted.push(e);
            }
            start.push(sorted.len());
        }
        PortOrder {
            rank,
            sorted,
            start,
        }
    }

    /// The port rank of edge `e` among its source's out-edges.
    pub fn rank(&self, e: EdgeId) -> u32 {
        self.rank[e]
    }

    /// Port ranks indexed by edge id.
    pub fn ranks(&self) -> &[u32] {
        &self.rank
    }

    /// The out-edges of `v` in ascending port-rank order.
    pub fn out_edges_ranked(&self, v: Vertex) -> &[EdgeId] {
        &self.sorted[self.start[v]..self.start[v + 1]]
    }
}

impl Digraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Digraph {
        Digraph {
            n,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            port_order: OnceLock::new(),
        }
    }

    /// Build a graph from an edge list over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Vertex, Vertex)>) -> Digraph {
        let mut g = Digraph::new(n);
        for (src, dst) in edges {
            g.add_edge(src, dst);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (counting multiplicities).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Append an unlabelled edge; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, src: Vertex, dst: Vertex) -> EdgeId {
        self.add_edge_with_port(src, dst, None)
    }

    /// Append an edge with an optional port label; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge_with_port(&mut self, src: Vertex, dst: Vertex, port: Option<u32>) -> EdgeId {
        assert!(src < self.n && dst < self.n, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push(Edge { src, dst, port });
        self.out_adj[src].push(id);
        self.in_adj[dst].push(id);
        self.port_order.take();
        id
    }

    /// The canonical port order of this graph, computed once and cached.
    ///
    /// Every execution path (sequential, sharded, observed, faulty) and
    /// the CSR routing plan derive their delivery order from this single
    /// accessor, so the canonical ascending `(source id, port rank)`
    /// contract has exactly one definition.
    pub fn port_ranks(&self) -> &PortOrder {
        self.port_order.get_or_init(|| PortOrder::build(self))
    }

    /// Outdegree of `v` (counting multiplicities and self-loops).
    pub fn outdegree(&self, v: Vertex) -> usize {
        self.out_adj[v].len()
    }

    /// Indegree of `v` (counting multiplicities and self-loops).
    pub fn indegree(&self, v: Vertex) -> usize {
        self.in_adj[v].len()
    }

    /// Ids of the edges leaving `v`.
    pub fn out_edges(&self, v: Vertex) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[v].iter().copied()
    }

    /// Ids of the edges entering `v`.
    pub fn in_edges(&self, v: Vertex) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[v].iter().copied()
    }

    /// Targets of edges leaving `v` (with multiplicity).
    pub fn out_neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.out_adj[v].iter().map(move |&e| self.edges[e].dst)
    }

    /// Sources of edges entering `v` (with multiplicity).
    pub fn in_neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.in_adj[v].iter().map(move |&e| self.edges[e].src)
    }

    /// Number of parallel `src -> dst` edges.
    pub fn multiplicity(&self, src: Vertex, dst: Vertex) -> usize {
        self.out_adj[src]
            .iter()
            .filter(|&&e| self.edges[e].dst == dst)
            .count()
    }

    /// Whether `v` carries at least one self-loop.
    pub fn has_self_loop(&self, v: Vertex) -> bool {
        self.out_adj[v].iter().any(|&e| self.edges[e].dst == v)
    }

    /// A copy with a self-loop added at every vertex that lacks one, as
    /// the communication model of §2.1 requires.
    pub fn with_self_loops(&self) -> Digraph {
        let mut g = self.clone();
        for v in 0..g.n {
            if !g.has_self_loop(v) {
                g.add_edge(v, v);
            }
        }
        g
    }

    /// Whether the *edge relation* is symmetric: `(i, j)` present iff
    /// `(j, i)` present (set semantics, ignoring multiplicity), the
    /// condition defining the paper's class of symmetric networks.
    pub fn is_bidirectional(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.multiplicity(e.dst, e.src) > 0)
    }

    /// The transpose graph (all edges reversed; port labels dropped since
    /// they are meaningless after reversal).
    pub fn transpose(&self) -> Digraph {
        let mut g = Digraph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.dst, e.src);
        }
        g
    }

    /// Assign canonical output ports: the outgoing edges of each vertex
    /// are labelled `0..outdegree` in insertion order.
    ///
    /// This models a static network whose output ports are fixed once and
    /// for all, the setting in which the paper's output port awareness is
    /// meaningful (§2.2).
    pub fn with_canonical_ports(&self) -> Digraph {
        let mut g = self.clone();
        for v in 0..g.n {
            for (k, &e) in g.out_adj[v].iter().enumerate() {
                g.edges[e].port = Some(k as u32);
            }
        }
        g.port_order.take();
        g
    }

    /// The `n x n` matrix of edge multiplicities: entry `(i, j)` counts
    /// `i -> j` edges.
    pub fn multiplicity_matrix(&self) -> Vec<Vec<usize>> {
        let mut m = vec![vec![0usize; self.n]; self.n];
        for e in &self.edges {
            m[e.src][e.dst] += 1;
        }
        m
    }

    /// Relabel vertices by `perm` (vertex `v` becomes `perm[v]`); used to
    /// realize graph isomorphisms.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[Vertex]) -> Digraph {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut g = Digraph::new(self.n);
        for e in &self.edges {
            g.add_edge_with_port(perm[e.src], perm[e.dst], e.port);
        }
        g
    }
}

// Equality and serialization ignore the lazily-built `port_order` cache
// (it is a pure function of the other fields), so both are written by
// hand over the four structural fields — mirroring what the derives
// produced before the cache existed.
impl PartialEq for Digraph {
    fn eq(&self, other: &Digraph) -> bool {
        self.n == other.n
            && self.edges == other.edges
            && self.out_adj == other.out_adj
            && self.in_adj == other.in_adj
    }
}

impl Eq for Digraph {}

impl Serialize for Digraph {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("n".to_string(), self.n.to_value()),
            ("edges".to_string(), self.edges.to_value()),
            ("out_adj".to_string(), self.out_adj.to_value()),
            ("in_adj".to_string(), self.in_adj.to_value()),
        ])
    }
}

impl Deserialize for Digraph {
    fn from_value(v: &serde::Value) -> Result<Digraph, serde::Error> {
        Ok(Digraph {
            n: Deserialize::from_value(v.field("n")?)?,
            edges: Deserialize::from_value(v.field("edges")?)?,
            out_adj: Deserialize::from_value(v.field("out_adj")?)?,
            in_adj: Deserialize::from_value(v.field("in_adj")?)?,
            port_order: OnceLock::new(),
        })
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, edges=[", self.n)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e.port {
                Some(p) => write!(f, "{}-[{}]->{}", e.src, p, e.dst)?,
                None => write!(f, "{}->{}", e.src, e.dst)?,
            }
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_adjacency() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 1)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.outdegree(0), 2);
        assert_eq!(g.indegree(1), 2);
        assert_eq!(g.multiplicity(0, 1), 2);
        assert_eq!(g.multiplicity(1, 0), 0);
        assert_eq!(g.out_neighbors(0).collect::<Vec<_>>(), vec![1, 1]);
    }

    #[test]
    fn self_loops() {
        let g = Digraph::from_edges(2, [(0, 1)]);
        assert!(!g.has_self_loop(0));
        let closed = g.with_self_loops();
        assert!(closed.has_self_loop(0) && closed.has_self_loop(1));
        assert_eq!(closed.edge_count(), 3);
        // Idempotent.
        assert_eq!(closed.with_self_loops().edge_count(), 3);
    }

    #[test]
    fn bidirectional_check() {
        let sym = Digraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(sym.is_bidirectional());
        let asym = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!asym.is_bidirectional());
        // Multiplicity does not matter for the set-semantics check.
        let multi = Digraph::from_edges(2, [(0, 1), (0, 1), (1, 0)]);
        assert!(multi.is_bidirectional());
    }

    #[test]
    fn transpose_and_relabel() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let t = g.transpose();
        assert_eq!(t.multiplicity(1, 0), 1);
        assert_eq!(t.multiplicity(2, 1), 1);
        let r = g.relabel(&[2, 0, 1]);
        assert_eq!(r.multiplicity(2, 0), 1);
        assert_eq!(r.multiplicity(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Digraph::new(2);
        let _ = g.relabel(&[0, 0]);
    }

    #[test]
    fn canonical_ports() {
        let g = Digraph::from_edges(3, [(0, 1), (0, 2), (1, 0)]).with_canonical_ports();
        let ports: Vec<Option<u32>> = g.out_edges(0).map(|e| g.edges()[e].port).collect();
        assert_eq!(ports, vec![Some(0), Some(1)]);
    }

    #[test]
    fn port_ranks_follow_labels_then_insertion_order() {
        // Vertex 0 has three out-edges: ids 0 (port 1), 1 (port 0),
        // 2 (unlabelled). Unlabelled sorts first, then by label.
        let mut g = Digraph::new(3);
        g.add_edge_with_port(0, 1, Some(1));
        g.add_edge_with_port(0, 2, Some(0));
        g.add_edge(0, 0);
        g.add_edge(1, 2);
        let order = g.port_ranks();
        assert_eq!(order.ranks(), &[2, 1, 0, 0]);
        assert_eq!(order.out_edges_ranked(0), &[2, 1, 0]);
        assert_eq!(order.out_edges_ranked(1), &[3]);
        assert_eq!(order.out_edges_ranked(2), &[] as &[EdgeId]);
    }

    #[test]
    fn port_ranks_cache_invalidates_on_mutation() {
        let mut g = Digraph::from_edges(2, [(0, 1)]);
        assert_eq!(g.port_ranks().ranks(), &[0]);
        g.add_edge(0, 1);
        assert_eq!(g.port_ranks().ranks(), &[0, 1]);
        let ported = g.with_canonical_ports();
        assert_eq!(ported.port_ranks().ranks(), &[0, 1]);
        // Cloning carries (or rebuilds) a consistent cache.
        let clone = ported.clone();
        assert_eq!(clone.port_ranks().ranks(), ported.port_ranks().ranks());
    }

    #[test]
    fn digraph_equality_and_json_ignore_the_cache() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let h = g.clone();
        let _ = h.port_ranks(); // populate only one side's cache
        assert_eq!(g, h);
        let json = serde::to_json_string(&h);
        assert!(!json.contains("port_order"), "{json}");
        let back: Digraph = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, g);
        assert_eq!(back.port_ranks().ranks(), g.port_ranks().ranks());
    }

    #[test]
    fn multiplicity_matrix() {
        let g = Digraph::from_edges(2, [(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.multiplicity_matrix(), vec![vec![0, 2], vec![0, 1]]);
    }
}
