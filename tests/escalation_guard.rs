//! Escalation-rate guard for the certified backend (the CI bench-smoke
//! companion): on the small matrix, the backend oracle's enclosures must
//! decide essentially every certification themselves — escalating to
//! exact ℚ replay is the *rare* path, and a regression that balloons
//! interval widths (losing the error-free fast paths, say) would show up
//! here as a rate above the pinned threshold long before it shows up as
//! a wall-clock regression.

use kya_conformance::{specs, CheckKind, Matrix};
use kya_harness::Runner;
use serde::Value;

/// Escalations per certification the small matrix is allowed. The
/// measured rate is exactly 0 (every enclosure stays bounded); the pin
/// leaves headroom of one escalation per hundred certifications before
/// the guard trips.
const PINNED_MAX_RATE: f64 = 0.01;

#[test]
fn certified_backend_escalation_rate_stays_pinned() {
    let (kind, spec) = specs(Matrix::Small)
        .into_iter()
        .find(|(k, _)| *k == CheckKind::Backend)
        .expect("backend spec present");
    let sink = Runner::new(&spec).run(|ctx| kind.run(ctx));
    assert!(
        sink.all_ok(),
        "{} backend cell(s) failed",
        sink.failures().len()
    );

    let mut certifications = 0u64;
    let mut escalations = 0u64;
    for r in sink.records() {
        let get = |key: &str| match r.detail(key) {
            Some(Value::UInt(v)) => *v,
            Some(Value::Int(v)) if *v >= 0 => *v as u64,
            other => panic!("cell {}: missing numeric detail `{key}`: {other:?}", r.cell),
        };
        certifications += get("certifications");
        escalations += get("escalations");
    }
    assert!(certifications > 0, "backend oracle certified nothing");
    let rate = escalations as f64 / certifications as f64;
    assert!(
        rate <= PINNED_MAX_RATE,
        "escalation rate {rate:.4} ({escalations}/{certifications}) above the \
         pinned threshold {PINNED_MAX_RATE}"
    );
}
