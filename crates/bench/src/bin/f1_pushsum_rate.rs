//! **F1** — Push-Sum convergence rate vs the Theorem 5.2 bound.
//!
//! The theorem: on a network of dynamic diameter `D`, all outputs are
//! within `ε` of the quot-sum after `O(n² D log(1/ε))` rounds. We sweep
//! `n` (rings: `D = n - 1`), `D` at fixed `n` (layered cycles), and `ε`,
//! reporting measured rounds next to the bound's shape. Absolute
//! constants are not expected to match (the bound is worst-case); the
//! *scaling* is: rounds grow no faster than linearly in `log(1/ε)` and
//! polynomially in `n`, `D`.
//!
//! Run with `cargo run --release -p kya-bench --bin f1_pushsum_rate`.

use kya_bench::pushsum_rounds_to;
use kya_graph::{generators, DynamicGraph, RandomDynamicGraph, StaticGraph};

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 101) as f64).collect()
}

fn main() {
    println!("F1. Push-Sum rounds to epsilon-consensus (Theorem 5.2)\n");

    println!("(a) sweep n on directed rings (D = n - 1), eps = 1e-6");
    println!(
        "{:>4} {:>6} {:>10} {:>16}",
        "n", "D", "rounds", "rounds/(n^2 D)"
    );
    for n in [4usize, 8, 12, 16, 24, 32] {
        let net = StaticGraph::new(generators::directed_ring(n));
        let d = (n - 1) as f64;
        let rounds = pushsum_rounds_to(&net, &values_for(n), 1e-6, 400_000).expect("converges");
        println!(
            "{n:>4} {:>6} {rounds:>10} {:>16.5}",
            n - 1,
            rounds as f64 / (n as f64 * n as f64 * d)
        );
    }

    println!("\n(b) sweep D at fixed n = 24 (layered cycles), eps = 1e-6");
    println!("{:>4} {:>6} {:>10} {:>16}", "n", "D", "rounds", "rounds/D");
    for groups in [2usize, 3, 4, 6, 8, 12] {
        let size = 24 / groups;
        let g = generators::layered_cycle(groups, size);
        let net = StaticGraph::new(g);
        let rounds = pushsum_rounds_to(&net, &values_for(24), 1e-6, 400_000).expect("converges");
        println!(
            "{:>4} {groups:>6} {rounds:>10} {:>16.2}",
            24,
            rounds as f64 / groups as f64
        );
    }

    println!("\n(c) sweep eps on a random dynamic digraph (n = 12)");
    println!(
        "{:>10} {:>10} {:>18}",
        "eps", "rounds", "rounds/log10(1/eps)"
    );
    let net = RandomDynamicGraph::directed(12, 6, 555);
    for exp in [2i32, 4, 6, 8, 10, 12] {
        let eps = 10f64.powi(-exp);
        let rounds = pushsum_rounds_to(&net, &values_for(12), eps, 400_000).expect("converges");
        println!(
            "{:>10.0e} {rounds:>10} {:>18.2}",
            eps,
            rounds as f64 / exp as f64
        );
    }
    let _ = net.diameter_hint();

    println!(
        "\nReading: (a)-(b) rounds grow polynomially with n and D and \
         (c) linearly with log(1/eps) — the shape of the O(n^2 D log 1/eps) \
         bound, with measured constants far below the worst case."
    );
}
