//! The unified per-cell convergence report.
//!
//! Every experiment in this repository — fault-free convergence runs,
//! fault-injection recovery runs, and the bench sweeps — ultimately
//! measures the same thing: a per-round worst-case distance trace to a
//! target, summarized as "when did the outputs enter (and stay in) the
//! ε-ball, and what happened along the way". [`CellReport`] is that
//! summary, produced by [`Execution::run_until`](crate::Execution::run_until)
//! and [`FaultyExecution::run_with_recovery`](crate::faults::FaultyExecution::run_with_recovery)
//! alike, and consumed verbatim by the `kya_harness` result sink.
//!
//! For a fault-free run the fault-specific fields are simply zero /
//! default: `last_fault_round == 0`, `events == FaultEvents::default()`,
//! and `converged_at` measures from the start of the run.

use crate::faults::FaultEvents;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The measured outcome of one experiment cell: a run of an algorithm on
/// a network against a convergence target.
///
/// This type unifies the former `StabilizationReport` (discrete-metric
/// stabilization), `RecoveryReport` (fault injection), and the ad-hoc
/// per-binary record structs of the bench drivers. Field semantics:
///
/// - `converged_at` is the first round at the end of which every output
///   was within `eps` of the target *and stayed there* for the remainder
///   of the run (the stay-in-ball criterion of §2.3). For faulted runs
///   only rounds strictly after `last_fault_round` qualify, so it doubles
///   as the recovery round.
/// - `convergence_rounds` is `converged_at` minus the last fault round
///   (or minus the measurement start, for fault-free runs): the rounds
///   the algorithm actually needed once the adversary went quiet.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellReport {
    /// Rounds executed while measuring.
    pub rounds_run: u64,
    /// First round at the end of which every output was within `eps` of
    /// the target and stayed there for the rest of the run; `None` if the
    /// outputs never (re-)entered the ε-ball.
    pub converged_at: Option<u64>,
    /// `converged_at - max(last_fault_round, start)`: rounds needed to
    /// converge after the final fault (or from the measurement start when
    /// the run was fault-free).
    pub convergence_rounds: Option<u64>,
    /// Distance from the target at the final round.
    pub final_distance: f64,
    /// Last round at which a fault was actually injected (0 = the run
    /// was fault-free).
    pub last_fault_round: u64,
    /// Worst-case distance from the target over the fault window
    /// (`rounds <= last_fault_round`); 0 for a fault-free run.
    pub max_divergence_during_faults: f64,
    /// Deficit of the caller-supplied conserved quantity at the final
    /// round (e.g. Push-Sum mass), if an invariant was supplied.
    pub mass_deficit: Option<f64>,
    /// First round whose measured distance was non-finite — an output
    /// went NaN/inf (e.g. Push-Sum's `y / z` after `z` underflowed to
    /// 0.0). `None` for a numerically sane run. A diverged run never
    /// converges.
    pub diverged_at: Option<u64>,
    /// Per-round worst-case distance from the target (round `start+1`
    /// first).
    pub distances: Vec<f64>,
    /// Fault counters for the measured window (all zero for fault-free
    /// runs).
    pub events: FaultEvents,
}

impl CellReport {
    /// Summarize a distance trace into a report.
    ///
    /// `start` is the round count *before* the measured window began (so
    /// `distances[i]` is the worst-case distance at the end of round
    /// `start + i + 1`). `last_fault_round` is an absolute round number
    /// (0 = fault-free); only rounds strictly after it can qualify as
    /// converged.
    pub fn from_trace(
        start: u64,
        distances: Vec<f64>,
        eps: f64,
        last_fault_round: u64,
        events: FaultEvents,
        mass_deficit: Option<f64>,
    ) -> CellReport {
        let rounds_run = distances.len() as u64;
        // Worst divergence over rounds start+1 ..= last_fault_round.
        let fault_window = if last_fault_round > start {
            (last_fault_round - start) as usize
        } else {
            0
        };
        let max_divergence_during_faults = distances[..fault_window.min(distances.len())]
            .iter()
            .fold(0.0, |a: f64, &b| a.max(b));
        // First round strictly after the last fault whose distance is
        // <= eps and stays <= eps until the end of the trace.
        let mut converged_idx = None;
        for (i, &d) in distances.iter().enumerate().skip(fault_window) {
            if d <= eps {
                converged_idx.get_or_insert(i);
            } else {
                converged_idx = None;
            }
        }
        let converged_at = converged_idx.map(|i| start + i as u64 + 1);
        let convergence_rounds = converged_at.map(|r| r - last_fault_round.max(start));
        // A non-finite distance is a numerical divergence, never
        // convergence (NaN fails `d <= eps` above, so the stay-in-ball
        // scan already rejects it — this dates the failure).
        let diverged_at = distances
            .iter()
            .position(|d| !d.is_finite())
            .map(|i| start + i as u64 + 1);
        CellReport {
            rounds_run,
            converged_at,
            convergence_rounds,
            final_distance: distances.last().copied().unwrap_or(0.0),
            last_fault_round,
            max_divergence_during_faults,
            mass_deficit,
            diverged_at,
            distances,
            events,
        }
    }

    /// The same report with the per-round distance trace dropped — what
    /// sweeps serialize, where a full trace per cell would dwarf the
    /// summary.
    pub fn without_trace(mut self) -> CellReport {
        self.distances.clear();
        self
    }

    /// Whether the outputs converged (entered the ε-ball and stayed).
    pub fn converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

impl fmt::Display for CellReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let after = if self.last_fault_round > 0 {
            write!(
                f,
                "faults until round {} (max divergence {:.3e}); ",
                self.last_fault_round, self.max_divergence_during_faults
            )?;
            "last fault"
        } else {
            "start"
        };
        match self.converged_at {
            Some(r) => write!(
                f,
                "converged at round {r} ({} rounds after {after})",
                self.convergence_rounds.unwrap_or(0)
            )?,
            None => write!(f, "not converged after {} rounds", self.rounds_run)?,
        }
        write!(f, "; final distance {:.3e}", self.final_distance)?;
        if let Some(d) = self.mass_deficit {
            write!(f, "; mass deficit {d:.3e}")?;
        }
        if let Some(r) = self.diverged_at {
            write!(f, "; DIVERGED (non-finite output) at round {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_trace_converges_from_start() {
        let report = CellReport::from_trace(
            0,
            vec![4.0, 2.0, 0.5, 0.9, 0.1, 0.05],
            1.0,
            0,
            FaultEvents::default(),
            None,
        );
        // Enters the ball at index 2 (round 3) and stays.
        assert_eq!(report.converged_at, Some(3));
        assert_eq!(report.convergence_rounds, Some(3));
        assert_eq!(report.rounds_run, 6);
        assert_eq!(report.final_distance, 0.05);
        assert_eq!(report.max_divergence_during_faults, 0.0);
        assert!(report.converged());
    }

    #[test]
    fn stay_in_ball_resets_on_exit() {
        let report = CellReport::from_trace(
            0,
            vec![4.0, 0.5, 2.0, 0.5, 0.1],
            1.0,
            0,
            FaultEvents::default(),
            None,
        );
        // Enters at round 2, exits at round 3, re-enters at round 4.
        assert_eq!(report.converged_at, Some(4));
    }

    #[test]
    fn faulted_trace_measures_from_last_fault() {
        let report = CellReport::from_trace(
            0,
            vec![0.0, 3.0, 2.0, 1.0, 0.0, 0.0],
            0.5,
            3,
            FaultEvents {
                dropped: 7,
                ..FaultEvents::default()
            },
            Some(0.25),
        );
        // Round 1's 0.0 is inside the fault window and must not count.
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.convergence_rounds, Some(2));
        assert_eq!(report.max_divergence_during_faults, 3.0);
        assert_eq!(report.mass_deficit, Some(0.25));
    }

    #[test]
    fn nonzero_start_offsets_rounds() {
        let report =
            CellReport::from_trace(10, vec![2.0, 0.0], 0.1, 0, FaultEvents::default(), None);
        assert_eq!(report.converged_at, Some(12));
        assert_eq!(report.convergence_rounds, Some(2));
    }

    #[test]
    fn divergent_trace_reports_none() {
        let report =
            CellReport::from_trace(0, vec![1.0, 2.0, 3.0], 0.5, 0, FaultEvents::default(), None);
        assert_eq!(report.converged_at, None);
        assert_eq!(report.convergence_rounds, None);
        assert!(!report.converged());
        assert_eq!(report.final_distance, 3.0);
    }

    #[test]
    fn non_finite_trace_reports_divergence() {
        let report = CellReport::from_trace(
            0,
            vec![1.0, f64::INFINITY, f64::NAN],
            0.5,
            0,
            FaultEvents::default(),
            None,
        );
        assert_eq!(report.diverged_at, Some(2));
        assert!(!report.converged());
        // A sane run reports no divergence.
        let sane = CellReport::from_trace(0, vec![1.0, 0.1], 0.5, 0, FaultEvents::default(), None);
        assert_eq!(sane.diverged_at, None);
    }

    #[test]
    fn without_trace_drops_only_distances() {
        let full =
            CellReport::from_trace(0, vec![1.0, 0.0], 0.0, 1, FaultEvents::default(), Some(0.5));
        let lean = full.clone().without_trace();
        assert!(lean.distances.is_empty());
        assert_eq!(lean.converged_at, full.converged_at);
        assert_eq!(lean.mass_deficit, full.mass_deficit);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = CellReport::from_trace(
            2,
            vec![3.5, 0.25, 0.0],
            0.5,
            3,
            FaultEvents {
                dropped: 4,
                duplicated: 1,
                bounced_to_crashed: 2,
                crashed_rounds: 3,
                last_fault_round: 3,
            },
            Some(1.5),
        );
        let json = serde::to_json_string(&report);
        let back: CellReport = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn display_mentions_convergence() {
        let report =
            CellReport::from_trace(0, vec![1.0, 0.0, 0.0], 0.0, 1, FaultEvents::default(), None);
        let s = report.to_string();
        assert!(s.contains("faults until round 1"), "{s}");
        assert!(s.contains("converged at round 2"), "{s}");
    }
}
