//! Criterion bench: the flat SoA/CSR engine against the boxed executor
//! on the same graphs and rounds. Both paths compute bit-identical
//! Push-Sum states (the conformance flat oracle pins that), so the gap
//! is pure engine overhead: per-round message boxing and inbox
//! allocation on the boxed side vs a precomputed gather over reused
//! flat buffers on the flat side.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::generators;
use kya_runtime::{Execution, FlatExecution, Isotropic, RunConfig};
use std::time::Duration;

const ROUNDS: u64 = 20;

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 101) as f64).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_engine_20_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [1_000usize, 10_000] {
        let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
        let states = PushSumState::averaging(&values_for(n));
        group.bench_with_input(BenchmarkId::new("boxed_t1", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Isotropic(PushSum), states.clone());
                exec.drive(
                    &kya_graph::StaticGraph::new(g.clone()),
                    RunConfig::rounds(ROUNDS),
                );
                exec.outputs()[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_t1", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                exec.run(ROUNDS, 1);
                exec.outputs()[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_t4", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                exec.run(ROUNDS, 4);
                exec.outputs()[0]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
