//! Criterion bench: exact kernel solving (ablation A1 — the exact ℚ
//! Gaussian elimination that eq. (1) requires, vs an f64 power-iteration
//! stand-in that can only approximate the kernel ray and can never yield
//! coprime integers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_arith::spectral::FMatrix;
use kya_arith::{BigRational, QMatrix};
use std::time::Duration;

/// Fibre-count matrix of a synthetic base with ray (1, 2, ..., m): build
/// M with M z = 0 by construction.
fn fibre_matrix(m: usize) -> QMatrix {
    // Off-diagonal entries: d_{i,j} = ((i + j) % 3) + 1; diagonal row
    // balance chosen so that z = (1..m) is in the kernel:
    // M_{ii} = -(sum_{j != i} d_{i,j} z_j) / z_i — keep it integer by
    // scaling rows by z_i.
    let mut q = QMatrix::zeros(m, m);
    for i in 0..m {
        let zi = (i + 1) as i64;
        let mut acc = 0i64;
        for j in 0..m {
            if i == j {
                continue;
            }
            let d = (((i + j) % 3) + 1) as i64;
            let zj = (j + 1) as i64;
            q[(i, j)] = BigRational::from_integer(d * zi);
            acc += d * zi * zj;
        }
        // Diagonal: -(acc / zi) after row scaling by zi: row i is
        // zi * (original row), so diagonal entry is -acc/zi * ... keep
        // exact: row scaled by zi means kernel unchanged; diagonal must
        // satisfy M_{ii} zi = -acc.
        q[(i, i)] = BigRational::new(kya_arith::BigInt::from(-acc), kya_arith::BigInt::from(zi));
    }
    q
}

fn bench_exact_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_positive_integer_kernel");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for m in [4usize, 8, 16, 24] {
        let q = fibre_matrix(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| q.positive_integer_kernel().expect("rank one"))
        });
    }
    group.finish();
}

fn bench_float_perron(c: &mut Criterion) {
    let mut group = c.benchmark_group("f64_perron_ablation");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for m in [4usize, 8, 16, 24] {
        let q = fibre_matrix(m);
        // Shift to non-negative P = M + alpha I as in §4.2.
        let alpha = (0..m).map(|i| -q[(i, i)].to_f64()).fold(0.0f64, f64::max) + 1.0;
        let mut p = FMatrix::zeros(m);
        for i in 0..m {
            for j in 0..m {
                p[(i, j)] = q[(i, j)].to_f64() + if i == j { alpha } else { 0.0 };
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| p.perron(1e-12, 100_000).expect("irreducible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_kernel, bench_float_perron);
criterion_main!(benches);
