//! CSR routing plans: the canonical delivery order of a [`Digraph`],
//! frozen into flat offset arrays.
//!
//! Every executor in this workspace delivers each inbox in ascending
//! `(source id, port rank)` order. The boxed executors re-derive that
//! order every round by sorting per-destination message lists; a
//! [`RoutingPlan`] instead sorts **once** at construction and records,
//! for every inbox slot, which send slot feeds it. A round of routing
//! then degenerates to a gather: `arena[slot] = send_buf[gather[slot]]`,
//! with zero comparisons, zero allocation, and a layout that shards over
//! contiguous vertex ranges — the backbone of the flat executor's
//! million-agent hot path.
//!
//! Layout (all offsets in *message slots*, not bytes):
//!
//! - `send_start[v]..send_start[v + 1]` — the send slots of vertex `v`,
//!   one per out-edge, ordered by port rank. The slot of edge `e` is
//!   `send_start[src(e)] + rank(e)`.
//! - `inbox_start[v]..inbox_start[v + 1]` — the arena slots of `v`'s
//!   inbox, in canonical `(source id, port rank)` order.
//! - `gather[s]` — for each arena slot `s`, the send slot that feeds it.

use crate::digraph::{Digraph, Vertex};
use std::ops::Range;

/// A precomputed gather plan realizing the canonical delivery order of
/// one [`Digraph`]; see the module docs for the layout.
#[derive(Clone, Debug)]
pub struct RoutingPlan {
    n: usize,
    send_start: Vec<usize>,
    inbox_start: Vec<usize>,
    gather: Vec<usize>,
}

impl RoutingPlan {
    /// Freeze the canonical routing of `g` into a gather plan.
    pub fn new(g: &Digraph) -> RoutingPlan {
        let n = g.n();
        let order = g.port_ranks();
        let mut send_start = Vec::with_capacity(n + 1);
        send_start.push(0usize);
        for v in 0..n {
            send_start.push(send_start[v] + g.outdegree(v));
        }
        let mut inbox_start = Vec::with_capacity(n + 1);
        inbox_start.push(0usize);
        for v in 0..n {
            inbox_start.push(inbox_start[v] + g.indegree(v));
        }
        let edges = g.edges();
        let mut gather = Vec::with_capacity(g.edge_count());
        let mut incoming: Vec<(Vertex, u32)> = Vec::new();
        for v in 0..n {
            incoming.clear();
            incoming.extend(g.in_edges(v).map(|e| (edges[e].src, order.rank(e))));
            // (src, rank) is unique per in-edge, so the sort is total and
            // the slot order is exactly the executors' delivery order.
            incoming.sort_unstable();
            gather.extend(
                incoming
                    .iter()
                    .map(|&(src, rank)| send_start[src] + rank as usize),
            );
        }
        RoutingPlan {
            n,
            send_start,
            inbox_start,
            gather,
        }
    }

    /// Number of vertices the plan was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total number of message slots (= the graph's edge count).
    pub fn slots(&self) -> usize {
        self.gather.len()
    }

    /// First send slot of vertex `v` (`v == n()` gives the total).
    pub fn send_start(&self, v: Vertex) -> usize {
        self.send_start[v]
    }

    /// The send slots of vertex `v`, one per out-edge in rank order.
    pub fn send_range(&self, v: Vertex) -> Range<usize> {
        self.send_start[v]..self.send_start[v + 1]
    }

    /// First inbox slot of vertex `v` (`v == n()` gives the total).
    pub fn inbox_start(&self, v: Vertex) -> usize {
        self.inbox_start[v]
    }

    /// The arena slots of vertex `v`'s inbox, in canonical order.
    pub fn inbox_range(&self, v: Vertex) -> Range<usize> {
        self.inbox_start[v]..self.inbox_start[v + 1]
    }

    /// For each arena slot, the send slot that feeds it.
    pub fn gather(&self) -> &[usize] {
        &self.gather
    }

    /// Out-degree of vertex `v` under the plan (= its send-slot count).
    pub fn outdegree(&self, v: Vertex) -> usize {
        self.send_start[v + 1] - self.send_start[v]
    }

    /// In-degree of vertex `v` under the plan (= its inbox-slot count).
    pub fn indegree(&self, v: Vertex) -> usize {
        self.inbox_start[v + 1] - self.inbox_start[v]
    }

    /// Send slots owned by the contiguous vertex range — the shard
    /// accounting behind the flat executor's per-shard probe counters
    /// (a shard routes exactly this many messages in phase 1).
    pub fn send_slots_in(&self, range: Range<Vertex>) -> usize {
        self.send_start[range.end] - self.send_start[range.start]
    }

    /// Inbox slots owned by the contiguous vertex range — the number of
    /// messages a phase-2 shard gathers and folds.
    pub fn inbox_slots_in(&self, range: Range<Vertex>) -> usize {
        self.inbox_start[range.end] - self.inbox_start[range.start]
    }

    /// Resident size of the plan's arrays in bytes.
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<usize>()
            * (self.send_start.len() + self.inbox_start.len() + self.gather.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_replays_the_canonical_delivery_order() {
        // In-star on 4 vertices with self-loops: every spoke sends to the
        // hub (vertex 0), sources in descending insertion order.
        let mut g = Digraph::new(4);
        for v in (1..4).rev() {
            g.add_edge(v, 0);
        }
        let g = g.with_self_loops();
        let plan = RoutingPlan::new(&g);
        assert_eq!(plan.n(), 4);
        assert_eq!(plan.slots(), g.edge_count());
        // Hub inbox: sources 0 (self-loop), 1, 2, 3 in ascending order
        // regardless of edge insertion order.
        let edges = g.edges();
        let hub: Vec<usize> = plan.inbox_range(0).collect();
        let sources: Vec<usize> = hub
            .iter()
            .map(|&slot| {
                let send = plan.gather()[slot];
                (0..4)
                    .find(|&v| plan.send_range(v).contains(&send))
                    .unwrap()
            })
            .collect();
        assert_eq!(sources, vec![0, 1, 2, 3]);
        // Every in-edge of every vertex is fed by its own source's slot.
        for v in 0..4 {
            assert_eq!(plan.inbox_range(v).len(), g.indegree(v));
            for slot in plan.inbox_range(v) {
                let send = plan.gather()[slot];
                let src = (0..4)
                    .find(|&u| plan.send_range(u).contains(&send))
                    .unwrap();
                assert!(edges.iter().any(|e| e.src == src && e.dst == v));
            }
        }
    }

    #[test]
    fn shard_accounting_partitions_the_slots() {
        let mut g = Digraph::new(5);
        for v in (1..5).rev() {
            g.add_edge(v, 0);
        }
        g.add_edge(0, 3);
        let g = g.with_self_loops();
        let plan = RoutingPlan::new(&g);
        for v in 0..5 {
            assert_eq!(plan.outdegree(v), g.outdegree(v));
            assert_eq!(plan.indegree(v), g.indegree(v));
            assert_eq!(plan.send_slots_in(v..v + 1), plan.send_range(v).len());
            assert_eq!(plan.inbox_slots_in(v..v + 1), plan.inbox_range(v).len());
        }
        // Any split of 0..n partitions the slot total exactly.
        for cut in 0..=5 {
            assert_eq!(
                plan.send_slots_in(0..cut) + plan.send_slots_in(cut..5),
                plan.slots()
            );
            assert_eq!(
                plan.inbox_slots_in(0..cut) + plan.inbox_slots_in(cut..5),
                plan.slots()
            );
        }
        assert_eq!(plan.send_slots_in(2..2), 0);
    }

    #[test]
    fn parallel_edges_get_distinct_slots_in_rank_order() {
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        let plan = RoutingPlan::new(&g);
        // Vertex 1's inbox: the two parallel 0->1 edges in rank order
        // (ranks 0 and 1 = send slots 0 and 1), then the self-loop.
        let fed: Vec<usize> = plan.inbox_range(1).map(|s| plan.gather()[s]).collect();
        assert_eq!(fed, vec![0, 1, plan.send_start(1)]);
    }
}
