//! Sensor-network averaging over a *dynamic* topology with asynchronous
//! starts — the §5 workload.
//!
//! Run with `cargo run --example sensor_average`.
//!
//! A fleet of anonymous temperature sensors wakes up at different times;
//! the radio topology changes every round (but keeps a finite dynamic
//! diameter). Push-Sum (outdegree awareness) drives every output to the
//! fleet average; with a known bound N on the fleet size, rounding to the
//! grid ℚ_N makes the result exact in finite time (Corollary 5.3).

use know_your_audience::algos::push_sum::{
    round_to_grid, FrequencyState, PushSum, PushSumFrequency, PushSumState,
};
use know_your_audience::graph::RandomDynamicGraph;
use know_your_audience::runtime::adversary::AsyncStarts;
use know_your_audience::runtime::{Execution, Isotropic, RunConfig};

fn main() {
    let n = 10;
    let readings: Vec<f64> = vec![18.0, 19.5, 21.0, 20.0, 22.5, 19.0, 18.5, 21.5, 20.5, 23.0];
    let truth: f64 = readings.iter().sum::<f64>() / n as f64;

    // Dynamic topology + sensors waking in the first 5 rounds.
    let topology = RandomDynamicGraph::directed(n, 8, 2024);
    let net = AsyncStarts::random(topology, 5, 7);
    println!(
        "sensors wake at rounds {:?} (dynamic topology, outdegree awareness)",
        net.starts()
    );

    let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&readings));
    for checkpoint in [10u64, 50, 200, 800] {
        exec.drive(&net, RunConfig::rounds(checkpoint - exec.round()));
        let outs = exec.outputs();
        let worst = outs
            .iter()
            .map(|x| (x - truth).abs())
            .fold(0.0f64, f64::max);
        println!("round {checkpoint:4}: worst error {worst:.3e}");
    }
    println!("true average {truth}");

    // Exact finite-time variant: integer readings, frequency Push-Sum,
    // rounding with a known bound N >= n.
    let int_readings: Vec<u64> = vec![18, 19, 21, 20, 22, 19, 18, 21, 20, 23];
    let topology = RandomDynamicGraph::directed(n, 8, 99);
    let mut freq_exec = Execution::new(
        Isotropic(PushSumFrequency::frequency()),
        FrequencyState::initial(&int_readings),
    );
    let net2 = AsyncStarts::random(topology, 4, 3);
    freq_exec.drive(&net2, RunConfig::rounds(900));
    let snapped = round_to_grid(&freq_exec.outputs()[0], 16); // N = 16 >= n
    println!("\nexact frequencies after rounding to the grid Q_16:");
    for (v, f) in &snapped {
        println!("  {v} C: {f}");
    }
    // Check against ground truth.
    for (v, f) in &snapped {
        let count = int_readings.iter().filter(|&&x| x == *v).count();
        assert_eq!(
            f,
            &know_your_audience::arith::BigRational::from_i64(count as i64, n as i64),
            "value {v}"
        );
    }
    println!("frequencies are exact — Corollary 5.3 in action");
}
