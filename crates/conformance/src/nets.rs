//! The conformance topology grammar.
//!
//! Extends the harness's static-graph grammar (`ring:6`, `star:6`,
//! `torus:6`, ...) with the dynamic and adversarial families the
//! differential matrix needs:
//!
//! - `periodic:N` — a [`PeriodicGraph`] alternating a directed ring and
//!   an out-star on `N` vertices (period 2);
//! - `dyn:N:SEED` — [`RandomDynamicGraph::directed`] with 2 extra edges
//!   per round;
//! - `instar:N` — the directed in-star (every leaf sends to vertex 0),
//!   built with sources in *descending* order so the center's in-edge
//!   list is the reverse of the canonical delivery order — the topology
//!   that catches a parallel router that forgets to sort; it is also
//!   Push-Sum's worst case for `z` underflow;
//! - `liftring:N` — the self-loop closure of the ring fibration
//!   `R_N -> R_{N/2}` (§4.1), used by the lift/base oracle;
//! - `pair:N:FAIR[:SEED]` — an Angluin-style [`PairingScheduler`] over
//!   `N` agents with fairness `uniform` (seeded random matchings) or
//!   `cover` (deterministic round-robin tournament), used by the churn
//!   oracle.

use kya_graph::{
    Digraph, DynamicGraph, PairingScheduler, PeriodicGraph, RandomDynamicGraph, RoundRobinCover,
    StaticGraph, UniformRandom,
};
use kya_harness::{parse_graph, SpecError};

/// Build the dynamic network named by a conformance topology label.
///
/// # Errors
///
/// [`SpecError`] for unknown families or malformed parameters.
pub fn build_net(label: &str) -> Result<Box<dyn DynamicGraph + Sync>, SpecError> {
    let mut parts = label.split(':');
    let family = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let num = |i: usize, what: &str| -> Result<usize, SpecError> {
        rest.get(i)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SpecError(format!("`{family}` needs a numeric {what} (`{label}`)")))
    };
    match family {
        "periodic" => {
            let n = num(0, "size")?.max(2);
            let phases = vec![
                kya_graph::generators::directed_ring(n),
                kya_graph::generators::star(n),
            ];
            Ok(Box::new(PeriodicGraph::new(phases)))
        }
        "dyn" => {
            let n = num(0, "size")?.max(2);
            let seed = num(1, "seed")? as u64;
            Ok(Box::new(RandomDynamicGraph::directed(n, 2, seed)))
        }
        "pair" => {
            let n = num(0, "size")?.max(2);
            let seed = if rest.len() > 2 {
                num(2, "seed")? as u64
            } else {
                0
            };
            match rest.get(1).copied().unwrap_or_default() {
                "uniform" => Ok(Box::new(PairingScheduler::new(
                    n,
                    UniformRandom::new(n / 2),
                    seed,
                ))),
                "cover" => Ok(Box::new(PairingScheduler::new(n, RoundRobinCover, seed))),
                other => Err(SpecError(format!(
                    "unknown fairness `{other}` in `{label}` (expected `uniform` or `cover`)"
                ))),
            }
        }
        "instar" => Ok(Box::new(StaticGraph::new(instar(num(0, "size")?.max(2))))),
        "liftring" => {
            let (g, _, _) = lift_ring(num(0, "size")?);
            Ok(Box::new(StaticGraph::new(g)))
        }
        _ => Ok(Box::new(StaticGraph::new(parse_graph(label)?))),
    }
}

/// The directed in-star on `n` vertices, edges inserted from the highest
/// leaf down (no self-loops; `StaticGraph::new` closes them).
pub fn instar(n: usize) -> Digraph {
    let mut g = Digraph::new(n);
    for leaf in (1..n).rev() {
        g.add_edge(leaf, 0);
    }
    g
}

/// The closed ring fibration `R_n -> R_{n/2}` used by the lift oracle:
/// `(total graph, base graph, morphism)`, all with self-loops.
///
/// # Panics
///
/// Panics if `n < 4` or `n` is odd.
pub fn lift_ring(n: usize) -> (Digraph, Digraph, kya_fibration::GraphMorphism) {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "liftring needs an even n >= 4"
    );
    let (g, b, phi) = kya_algos::lifting::ring_fibration(n, n / 2);
    kya_algos::lifting::close_fibration(&phi, &g, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build() {
        for label in [
            "ring:5",
            "periodic:4",
            "dyn:5:7",
            "instar:6",
            "liftring:6",
            "pair:5:uniform:3",
            "pair:6:cover",
        ] {
            let net = build_net(label).expect(label);
            assert!(net.n() >= 2, "{label}");
            let g = net.graph(1);
            assert!((0..net.n()).all(|v| g.has_self_loop(v)), "{label}");
        }
        assert!(build_net("nosuch:3").is_err());
        assert!(build_net("pair:5:lottery:3").is_err(), "unknown fairness");
    }

    #[test]
    fn instar_in_edges_are_descending() {
        let g = instar(5);
        let srcs: Vec<usize> = g.in_edges(0).map(|e| g.edges()[e].src).collect();
        assert_eq!(srcs, vec![4, 3, 2, 1]);
    }
}
