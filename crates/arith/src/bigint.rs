//! Arbitrary-precision signed integers.
//!
//! Sign-magnitude representation over little-endian `u64` limbs.
//! Multiplication is schoolbook (operands here rarely exceed a few
//! thousand bits), but division and gcd — the hot kernels of the exact
//! Push-Sum referee, whose rational state grows every round — work a
//! limb at a time: division is Knuth's Algorithm D, gcd is the binary
//! (Stein) algorithm with a `u64` fast path. Both are differentially
//! tested against the simple bit-at-a-time references they replaced,
//! which are kept in the test module.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// Invariants: `mag` has no trailing zero limbs, and `sign == Sign::Zero`
/// if and only if `mag` is empty.
///
/// ```
/// use kya_arith::BigInt;
/// let a: BigInt = "123456789012345678901234567890".parse()?;
/// let b = BigInt::from(10_u64).pow(29);
/// assert!(a > b);
/// assert_eq!((&a - &a), BigInt::zero());
/// # Ok::<(), kya_arith::ParseBigIntError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian magnitude; no trailing zeros.
    mag: Vec<u64>,
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: &'static str,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.kind)
    }
}

impl std::error::Error for ParseBigIntError {}

// ---------------------------------------------------------------------
// magnitude helpers (unsigned little-endian Vec<u64>)
// ---------------------------------------------------------------------

fn mag_trim(mag: &mut Vec<u64>) {
    while mag.last() == Some(&0) {
        mag.pop();
    }
}

fn mag_cmp(a: &[u64], b: &[u64]) -> Ordering {
    if a.len() != b.len() {
        return a.len().cmp(&b.len());
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

fn mag_add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &limb) in long.iter().enumerate() {
        let x = limb as u128;
        let y = *short.get(i).unwrap_or(&0) as u128;
        let s = x + y + carry as u128;
        out.push(s as u64);
        carry = (s >> 64) as u64;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Requires `a >= b`.
fn mag_sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(mag_cmp(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i128;
    for (i, &limb) in a.iter().enumerate() {
        let x = limb as i128;
        let y = *b.get(i).unwrap_or(&0) as i128;
        let mut d = x - y - borrow;
        if d < 0 {
            d += 1i128 << 64;
            borrow = 1;
        } else {
            borrow = 0;
        }
        out.push(d as u64);
    }
    debug_assert_eq!(borrow, 0);
    mag_trim(&mut out);
    out
}

fn mag_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &y) in b.iter().enumerate() {
            let cur = out[i + j] as u128 + x as u128 * y as u128 + carry;
            out[i + j] = cur as u64;
            carry = cur >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let cur = out[k] as u128 + carry;
            out[k] = cur as u64;
            carry = cur >> 64;
            k += 1;
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_shl(a: &[u64], bits: usize) -> Vec<u64> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = bits / 64;
    let bit_shift = bits % 64;
    let mut out = vec![0u64; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u64;
        for &x in a {
            out.push((x << bit_shift) | carry);
            carry = x >> (64 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    mag_trim(&mut out);
    out
}

fn mag_shr(a: &[u64], bits: usize) -> Vec<u64> {
    let limb_shift = bits / 64;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = bits % 64;
    let mut out = Vec::with_capacity(a.len() - limb_shift);
    if bit_shift == 0 {
        out.extend_from_slice(&a[limb_shift..]);
    } else {
        let src = &a[limb_shift..];
        for i in 0..src.len() {
            let lo = src[i] >> bit_shift;
            let hi = if i + 1 < src.len() {
                src[i + 1] << (64 - bit_shift)
            } else {
                0
            };
            out.push(lo | hi);
        }
    }
    mag_trim(&mut out);
    out
}

/// Whether any of the low `bits` bits of the magnitude are set — the
/// "sticky" information a truncating shift discards.
fn mag_low_bits_nonzero(a: &[u64], bits: usize) -> bool {
    let limbs = bits / 64;
    if a[..limbs.min(a.len())].iter().any(|&x| x != 0) {
        return true;
    }
    let rem = bits % 64;
    if rem > 0 {
        if let Some(&x) = a.get(limbs) {
            return x & ((1u64 << rem) - 1) != 0;
        }
    }
    false
}

fn mag_bits(a: &[u64]) -> usize {
    match a.last() {
        None => 0,
        Some(&top) => 64 * (a.len() - 1) + (64 - top.leading_zeros() as usize),
    }
}

/// Divide magnitude by a single non-zero limb; returns (quotient, remainder).
fn mag_divmod_limb(a: &[u64], d: u64) -> (Vec<u64>, u64) {
    debug_assert!(d != 0);
    let mut q = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        q[i] = (cur / d as u128) as u64;
        rem = cur % d as u128;
    }
    mag_trim(&mut q);
    (q, rem as u64)
}

/// Full multi-limb division.
/// Returns (quotient, remainder) with `a = q*b + r`, `0 <= r < b`.
fn mag_divmod(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "division by zero");
    if mag_cmp(a, b) == Ordering::Less {
        return (Vec::new(), a.to_vec());
    }
    if b.len() == 1 {
        let (q, r) = mag_divmod_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    mag_divmod_knuth(a, b)
}

/// Schoolbook multi-limb division: Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
///
/// Requires `b.len() >= 2` and `a >= b`. One quotient limb per iteration:
/// the divisor is normalized so its top limb has the high bit set (D1),
/// each trial quotient is estimated from the top two dividend limbs and
/// corrected against the top *two* divisor limbs (D3) — after which it is
/// off by at most one, fixed by the rare add-back step (D6).
fn mag_divmod_knuth(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = b.len();
    let m = a.len() - n;
    // D1: normalize so the divisor's top limb has its high bit set. The
    // dividend gains one extra high limb.
    let shift = b[n - 1].leading_zeros() as usize;
    let vn = mag_shl_fixed(b, shift, n);
    let mut un = mag_shl_fixed(a, shift, a.len() + 1);
    let v_hi = vn[n - 1];
    let v_lo = vn[n - 2];
    let mut q = vec![0u64; m + 1];
    for j in (0..=m).rev() {
        // D3: trial quotient from the top two dividend limbs, then the
        // classical two-limb correction (runs at most twice).
        let num = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = num / v_hi as u128;
        let mut rhat = num % v_hi as u128;
        while qhat >> 64 != 0 || qhat * v_lo as u128 > ((rhat << 64) | un[j + n - 2] as u128) {
            qhat -= 1;
            rhat += v_hi as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // D4: multiply-and-subtract qhat * v from un[j ..= j+n].
        let mut mul_carry = 0u64;
        let mut borrow = 0u64;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + mul_carry as u128;
            mul_carry = (p >> 64) as u64;
            let (d, b1) = un[j + i].overflowing_sub(p as u64);
            let (d, b2) = d.overflowing_sub(borrow);
            un[j + i] = d;
            borrow = (b1 as u64) | (b2 as u64);
        }
        let (d, b1) = un[j + n].overflowing_sub(mul_carry);
        let (d, b2) = d.overflowing_sub(borrow);
        un[j + n] = d;
        if b1 || b2 {
            // D6: qhat was one too large (probability ~2/2^64) — add the
            // divisor back and decrement.
            qhat -= 1;
            let mut carry = 0u64;
            for i in 0..n {
                let s = un[j + i] as u128 + vn[i] as u128 + carry as u128;
                un[j + i] = s as u64;
                carry = (s >> 64) as u64;
            }
            un[j + n] = un[j + n].wrapping_add(carry);
        }
        q[j] = qhat as u64;
    }
    // D8: denormalize the remainder.
    un.truncate(n);
    let rem = mag_shr(&un, shift);
    mag_trim(&mut q);
    (q, rem)
}

/// `a << shift` (with `shift < 64`) padded/truncated to exactly `len`
/// limbs — the fixed-width shift Algorithm D needs for its working copies.
fn mag_shl_fixed(a: &[u64], shift: usize, len: usize) -> Vec<u64> {
    debug_assert!(shift < 64);
    let mut out = mag_shl(a, shift);
    debug_assert!(out.len() <= len);
    out.resize(len, 0);
    out
}

/// Number of trailing zero bits of a non-zero magnitude.
fn mag_trailing_zeros(a: &[u64]) -> usize {
    debug_assert!(!a.is_empty());
    let mut bits = 0usize;
    for &limb in a {
        if limb == 0 {
            bits += 64;
        } else {
            return bits + limb.trailing_zeros() as usize;
        }
    }
    unreachable!("magnitude has no trailing zero limbs")
}

/// Binary (Stein) gcd on `u64`.
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let k = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << k;
        }
    }
}

/// Limb-level binary (Stein) gcd of two magnitudes.
///
/// Single-limb operands take a `u64` fast path; a mixed big/small pair is
/// reduced with one `O(len)` limb division first (one Euclid step), which
/// avoids the long subtraction chains plain Stein would need there. The
/// general multi-limb case is the classical odd-odd subtract-and-shift
/// loop, re-entering the fast paths as the operands shrink.
fn mag_gcd(a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() {
        return b.to_vec();
    }
    if b.is_empty() {
        return a.to_vec();
    }
    if b.len() == 1 {
        let (_, r) = mag_divmod_limb(a, b[0]);
        let g = gcd_u64(r, b[0]);
        return vec![g];
    }
    if a.len() == 1 {
        return mag_gcd(b, a);
    }
    // Both multi-limb: factor out the common power of two, make both odd.
    let za = mag_trailing_zeros(a);
    let zb = mag_trailing_zeros(b);
    let k = za.min(zb);
    let mut a = mag_shr(a, za);
    let mut b = mag_shr(b, zb);
    loop {
        // Invariant: both odd and non-zero here.
        if a.len() == 1 || b.len() == 1 {
            return mag_shl(&mag_gcd(&a, &b), k);
        }
        match mag_cmp(&a, &b) {
            Ordering::Equal => break,
            Ordering::Less => std::mem::swap(&mut a, &mut b),
            Ordering::Greater => {}
        }
        a = mag_sub(&a, &b); // even and non-zero (a != b, both odd)
        let z = mag_trailing_zeros(&a);
        a = mag_shr(&a, z);
    }
    mag_shl(&a, k)
}

// ---------------------------------------------------------------------
// BigInt proper
// ---------------------------------------------------------------------

impl BigInt {
    /// The integer `0`.
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer `1`.
    pub fn one() -> BigInt {
        BigInt::from(1u64)
    }

    fn from_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        mag_trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Whether this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Whether this integer is one.
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag == [1]
    }

    /// Whether this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Whether this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// The sign of this integer.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Negative => BigInt {
                sign: Sign::Positive,
                mag: self.mag.clone(),
            },
            _ => self.clone(),
        }
    }

    /// Number of significant bits of the magnitude (`0` for zero).
    pub fn bits(&self) -> usize {
        mag_bits(&self.mag)
    }

    /// Raise to a small non-negative power.
    ///
    /// ```
    /// use kya_arith::BigInt;
    /// assert_eq!(BigInt::from(3).pow(4), BigInt::from(81));
    /// ```
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Simultaneous quotient and remainder (truncated toward zero, like
    /// Rust's primitive `/` and `%`).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        if self.is_zero() {
            return (BigInt::zero(), BigInt::zero());
        }
        let (q_mag, r_mag) = mag_divmod(&self.mag, &other.mag);
        let q_sign = if q_mag.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let r_sign = if r_mag.is_empty() {
            Sign::Zero
        } else {
            self.sign
        };
        (
            BigInt::from_mag(q_sign, q_mag),
            BigInt::from_mag(r_sign, r_mag),
        )
    }

    /// Correctly rounded conversion to `f64` (round-to-nearest-even;
    /// overflows to infinity for huge magnitudes).
    ///
    /// Values wider than 64 bits keep their top 63 bits and fold every
    /// dropped bit into the low bit (round-to-odd). The `u64 → f64`
    /// conversion then rounds to nearest-even exactly as if it had seen
    /// the full value: round-to-odd to 64 bits followed by
    /// round-to-nearest to 53 never double-rounds, because the odd
    /// sticky bit sits more than two positions below the kept mantissa.
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        let v = if bits <= 64 {
            self.mag.first().copied().unwrap_or(0) as f64
        } else if bits > 1100 {
            // Beyond any finite double regardless of mantissa.
            f64::INFINITY
        } else {
            let drop = bits - 63;
            let mut m = mag_shr(&self.mag, drop).first().copied().unwrap_or(0) << 1;
            if mag_low_bits_nonzero(&self.mag, drop) {
                m |= 1;
            }
            m as f64 * 2f64.powi((drop - 1) as i32)
        };
        match self.sign {
            Sign::Negative => -v,
            Sign::Zero => 0.0,
            Sign::Positive => v,
        }
    }

    /// Exact conversion to `i64` when the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if self.mag.len() > 1 {
                    None
                } else {
                    i64::try_from(self.mag[0]).ok()
                }
            }
            Sign::Negative => {
                if self.mag.len() > 1 {
                    None
                } else if self.mag[0] == 1u64 << 63 {
                    Some(i64::MIN)
                } else {
                    i64::try_from(self.mag[0]).ok().map(|v| -v)
                }
            }
        }
    }

    /// Exact conversion to `u64` when the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if self.mag.len() == 1 => Some(self.mag[0]),
            _ => None,
        }
    }

    /// Exact conversion to `i128` when the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.mag.len() > 2 {
            return None;
        }
        let lo = self.mag.first().copied().unwrap_or(0) as u128;
        let hi = self.mag.get(1).copied().unwrap_or(0) as u128;
        let m = (hi << 64) | lo;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive if m <= i128::MAX as u128 => Some(m as i128),
            Sign::Negative if m <= i128::MAX as u128 + 1 => Some((m as i128).wrapping_neg()),
            _ => None,
        }
    }

    /// Greatest common divisor (always non-negative; `gcd(0, 0) == 0`).
    ///
    /// Limb-level binary (Stein) gcd with a `u64` fast path — the
    /// normalization kernel of every [`crate::BigRational`] operation.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mag = mag_gcd(&self.mag, &other.mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag,
            }
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                if v == 0 {
                    BigInt::zero()
                } else {
                    BigInt { sign: Sign::Positive, mag: vec![v as u64] }
                }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                match v.cmp(&0) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt { sign: Sign::Positive, mag: vec![v as u64] },
                    Ordering::Less => BigInt {
                        sign: Sign::Negative,
                        mag: vec![(v as i128).unsigned_abs() as u64],
                    },
                }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, isize);

impl From<i128> for BigInt {
    fn from(v: i128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let sign = if v > 0 {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let m = v.unsigned_abs();
        let mut mag = vec![m as u64, (m >> 64) as u64];
        mag_trim(&mut mag);
        BigInt { sign, mag }
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> BigInt {
        if v == 0 {
            return BigInt::zero();
        }
        let mut mag = vec![v as u64, (v >> 64) as u64];
        mag_trim(&mut mag);
        BigInt {
            sign: Sign::Positive,
            mag,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (a, b) if a != b => a.cmp(&b),
            (Sign::Zero, _) => Ordering::Equal,
            (Sign::Positive, _) => mag_cmp(&self.mag, &other.mag),
            (Sign::Negative, _) => mag_cmp(&other.mag, &self.mag),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.flip();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_mag(a, mag_add(&self.mag, &rhs.mag)),
            (a, _) => match mag_cmp(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_mag(a, mag_sub(&self.mag, &rhs.mag)),
                Ordering::Less => BigInt::from_mag(a.flip(), mag_sub(&rhs.mag, &self.mag)),
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        if self.is_zero() || rhs.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == rhs.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_mag(sign, mag_mul(&self.mag, &rhs.mag))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_owned_binop {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt { (&self).$method(&rhs) }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt { (&self).$method(rhs) }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt { self.$method(&rhs) }
        }
    )*};
}
forward_owned_binop!(Add, add; Sub, sub; Mul, mul; Div, div; Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl Shl<usize> for &BigInt {
    type Output = BigInt;
    fn shl(self, bits: usize) -> BigInt {
        BigInt::from_mag(self.sign, mag_shl(&self.mag, bits))
    }
}

impl Shr<usize> for &BigInt {
    type Output = BigInt;
    fn shr(self, bits: usize) -> BigInt {
        let mag = mag_shr(&self.mag, bits);
        let sign = if mag.is_empty() {
            Sign::Zero
        } else {
            self.sign
        };
        BigInt::from_mag(sign, mag)
    }
}

impl Shl<usize> for BigInt {
    type Output = BigInt;
    fn shl(self, bits: usize) -> BigInt {
        &self << bits
    }
}

impl Shr<usize> for BigInt {
    type Output = BigInt;
    fn shr(self, bits: usize) -> BigInt {
        &self >> bits
    }
}

impl Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a BigInt> for BigInt {
    fn sum<I: Iterator<Item = &'a BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |a, b| &a + b)
    }
}

impl Product for BigInt {
    fn product<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::one(), |a, b| a * b)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 10^19 (largest power of ten in a u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut mag = self.mag.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !mag.is_empty() {
            let (q, r) = mag_divmod_limb(&mag, CHUNK);
            chunks.push(r);
            mag = q;
        }
        let mut s = String::new();
        for (i, c) in chunks.iter().rev().enumerate() {
            if i == 0 {
                s.push_str(&c.to_string());
            } else {
                s.push_str(&format!("{c:019}"));
            }
        }
        f.pad_integral(self.sign != Sign::Negative, "", &s)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { kind: "empty" });
        }
        let mut acc = BigInt::zero();
        let ten_pow_19 = BigInt::from(10_000_000_000_000_000_000u64);
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 19).min(bytes.len());
            let chunk = &digits[i..end];
            let v: u64 = chunk
                .parse()
                .map_err(|_| ParseBigIntError { kind: "non-digit" })?;
            let scale = if end - i == 19 {
                ten_pow_19.clone()
            } else {
                BigInt::from(10u64).pow((end - i) as u32)
            };
            acc = acc * scale + BigInt::from(v);
            i = end;
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn big(v: i128) -> BigInt {
        BigInt::from(v)
    }

    /// The pre-Algorithm-D bit-by-bit binary long division, kept verbatim
    /// as the differential reference for `mag_divmod_knuth`.
    fn mag_divmod_binary_reference(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if mag_cmp(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = mag_divmod_limb(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }
        let shift = mag_bits(a) - mag_bits(b);
        let mut q = vec![0u64; a.len()];
        let mut rem = a.to_vec();
        let mut d = mag_shl(b, shift);
        for s in (0..=shift).rev() {
            if mag_cmp(&rem, &d) != Ordering::Less {
                rem = mag_sub(&rem, &d);
                q[s / 64] |= 1u64 << (s % 64);
            }
            if s > 0 {
                d = mag_shr(&d, 1);
            }
        }
        mag_trim(&mut q);
        mag_trim(&mut rem);
        (q, rem)
    }

    /// Random magnitude of up to `limbs` limbs with a bias toward shapes
    /// that stress Algorithm D (trailing zeros, saturated limbs).
    fn arb_mag(limbs: usize) -> impl Strategy<Value = Vec<u64>> {
        (
            proptest::collection::vec(
                (any::<u64>(), 0u32..4).prop_map(|(v, tag)| match tag {
                    0 => u64::MAX,
                    1 => 0,
                    2 => 1,
                    _ => v,
                }),
                0..limbs + 1,
            ),
            0usize..100,
        )
            .prop_map(|(mut mag, shift)| {
                mag_trim(&mut mag);
                if mag.is_empty() {
                    mag
                } else {
                    mag_shl(&mag, shift)
                }
            })
    }

    #[test]
    fn construction_and_signs() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert!(big(-5).is_negative());
        assert!(big(5).is_positive());
        assert_eq!(big(-5).abs(), big(5));
        assert_eq!(BigInt::default(), BigInt::zero());
    }

    #[test]
    fn display_roundtrip_small() {
        for v in [-1234567890123456789012345i128, -1, 0, 1, 42, i128::MAX] {
            let b = big(v);
            assert_eq!(b.to_string(), v.to_string());
            assert_eq!(b.to_string().parse::<BigInt>().unwrap(), b);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("12a3".parse::<BigInt>().is_err());
        assert!("+7".parse::<BigInt>().unwrap() == big(7));
    }

    #[test]
    fn big_multiplication() {
        let a: BigInt = "340282366920938463463374607431768211456".parse().unwrap(); // 2^128
        assert_eq!(&a, &(&BigInt::from(1u64) << 128));
        assert_eq!((&a * &a), (&BigInt::from(1u64) << 256));
    }

    #[test]
    fn division_truncates_toward_zero() {
        assert_eq!(big(7).div_rem(&big(2)), (big(3), big(1)));
        assert_eq!(big(-7).div_rem(&big(2)), (big(-3), big(-1)));
        assert_eq!(big(7).div_rem(&big(-2)), (big(-3), big(1)));
        assert_eq!(big(-7).div_rem(&big(-2)), (big(3), big(-1)));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn shifts() {
        assert_eq!(&big(1) << 200 >> 200, big(1));
        assert_eq!(&big(0) << 5, BigInt::zero());
        assert_eq!(&big(255) >> 4, big(15));
    }

    #[test]
    fn to_f64_large() {
        let a = &BigInt::from(1u64) << 100;
        let f = a.to_f64();
        assert!((f / 2f64.powi(100) - 1.0).abs() < 1e-12);
        assert_eq!((-a).to_f64(), -f);
    }

    #[test]
    fn to_f64_rounds_to_nearest_even() {
        // Regression: the pre-sticky conversion truncated every bit
        // below the top 64, so 2^64 + 2^11 + 1 — one sliver above the
        // halfway point between 2^64 and 2^64 + 2^12 — collapsed to
        // 2^64 instead of rounding up.
        let above_half = (&BigInt::from(1u64) << 64) + (&BigInt::from(1u64) << 11) + BigInt::one();
        assert_eq!(above_half.to_f64(), 2f64.powi(64) + 2f64.powi(12));
        // An exact halfway value ties to even (mantissa LSB 0 → stay).
        let halfway = (&BigInt::from(1u64) << 64) + (&BigInt::from(1u64) << 11);
        assert_eq!(halfway.to_f64(), 2f64.powi(64));
        // Halfway with an odd kept mantissa ties to even (round up).
        let halfway_odd =
            (&BigInt::from(1u64) << 64) + (&BigInt::from(1u64) << 12) + (&BigInt::from(1u64) << 11);
        assert_eq!(halfway_odd.to_f64(), 2f64.powi(64) + 2f64.powi(13));
        // Below halfway rounds down even when low limbs are full.
        let below_half = (&BigInt::from(1u64) << 64) + (&BigInt::from(1u64) << 11) - BigInt::one();
        assert_eq!(below_half.to_f64(), 2f64.powi(64));
        // Sign carries through; overflow saturates to infinity.
        assert_eq!((-above_half).to_f64(), -(2f64.powi(64) + 2f64.powi(12)));
        assert_eq!((&BigInt::one() << 1200).to_f64(), f64::INFINITY);
    }

    #[test]
    fn to_primitive_bounds() {
        assert_eq!(big(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(big(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(big(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(big(u64::MAX as i128).to_u64(), Some(u64::MAX));
        assert_eq!(big(-1).to_u64(), None);
    }

    #[test]
    fn pow_and_bits() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(10).pow(0), big(1));
        assert_eq!(BigInt::zero().bits(), 0);
        assert_eq!(big(1).bits(), 1);
        assert_eq!(big(255).bits(), 8);
        assert_eq!((&big(1) << 64).bits(), 65);
    }

    #[test]
    fn sum_and_product() {
        let xs: Vec<BigInt> = (1..=5i64).map(BigInt::from).collect();
        assert_eq!(xs.iter().sum::<BigInt>(), big(15));
        assert_eq!(xs.into_iter().product::<BigInt>(), big(120));
    }

    #[test]
    fn division_edge_cases_match_reference() {
        let one = vec![1u64];
        let top = vec![0u64, 0, 1]; // 2^128
        let all_ones = vec![u64::MAX; 4];
        let mut big_pow = vec![0u64; 63];
        big_pow.push(1); // 2^4032
        let cases: Vec<(Vec<u64>, Vec<u64>)> = vec![
            (Vec::new(), one.clone()),               // 0 / 1
            (one.clone(), one.clone()),              // equal single-limb
            (all_ones.clone(), all_ones.clone()),    // equal multi-limb
            (top.clone(), vec![u64::MAX, u64::MAX]), // forces qhat correction
            (all_ones.clone(), vec![1u64, 1]),
            (big_pow.clone(), all_ones.clone()),
            (big_pow.clone(), vec![u64::MAX, 1]),
            (vec![5u64], all_ones.clone()), // dividend < divisor
        ];
        for (a, b) in &cases {
            assert_eq!(
                mag_divmod(a, b),
                mag_divmod_binary_reference(a, b),
                "divmod({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn division_qhat_addback_path() {
        // Classic Algorithm D stress case: dividend top limbs equal to the
        // normalized divisor's, which drives qhat to b-1 and exercises the
        // add-back branch probability region.
        let b = vec![0u64, u64::MAX - 1, 1u64 << 63];
        let mut a = mag_mul(&b, &[u64::MAX, u64::MAX, u64::MAX]);
        a = mag_add(&a, &mag_sub(&b, &[1]));
        let (q, r) = mag_divmod(&a, &b);
        assert_eq!((q, r), mag_divmod_binary_reference(&a, &b));
    }

    proptest! {
        /// Differential: Algorithm D == binary long division reference on
        /// operands up to ~4096 bits.
        #[test]
        fn divmod_matches_binary_reference(a in arb_mag(64), b in arb_mag(32)) {
            prop_assume!(!b.is_empty());
            let (q, r) = mag_divmod(&a, &b);
            let (q_ref, r_ref) = mag_divmod_binary_reference(&a, &b);
            prop_assert_eq!(&q, &q_ref);
            prop_assert_eq!(&r, &r_ref);
            // And the result reconstructs: a = q*b + r with r < b.
            prop_assert_eq!(mag_add(&mag_mul(&q, &b), &r), a);
            prop_assert_eq!(mag_cmp(&r, &b), Ordering::Less);
        }

        /// Differential on *correlated* operands (a = b * c + d), where
        /// trial quotients hit exact boundaries.
        #[test]
        fn divmod_matches_reference_on_products(
            b in arb_mag(24),
            c in arb_mag(24),
            d in arb_mag(8),
        ) {
            prop_assume!(!b.is_empty());
            let a = mag_add(&mag_mul(&b, &c), &d);
            prop_assert_eq!(mag_divmod(&a, &b), mag_divmod_binary_reference(&a, &b));
        }

        #[test]
        fn gcd_of_products_shares_factor(a in arb_mag(12), b in arb_mag(12), f in arb_mag(6)) {
            prop_assume!(!f.is_empty() && !a.is_empty() && !b.is_empty());
            let fa = BigInt::from_mag(Sign::Positive, mag_mul(&a, &f));
            let fb = BigInt::from_mag(Sign::Positive, mag_mul(&b, &f));
            let g = fa.gcd(&fb);
            // The common factor divides the gcd, and the gcd divides both.
            prop_assert!((&g % &BigInt::from_mag(Sign::Positive, f)).is_zero());
            prop_assert!((&fa % &g).is_zero());
            prop_assert!((&fb % &g).is_zero());
        }

        #[test]
        fn to_i128_roundtrip(v in any::<i128>()) {
            prop_assert_eq!(BigInt::from(v).to_i128(), Some(v));
        }

        #[test]
        fn add_matches_i128(a in -(1i128<<100)..(1i128<<100), b in -(1i128<<100)..(1i128<<100)) {
            prop_assert_eq!(big(a) + big(b), big(a + b));
        }

        #[test]
        fn mul_matches_i128(a in -(1i128<<62)..(1i128<<62), b in -(1i128<<62)..(1i128<<62)) {
            prop_assert_eq!(big(a) * big(b), big(a * b));
        }

        #[test]
        fn divmod_matches_i128(a in any::<i128>(), b in any::<i128>()) {
            prop_assume!(b != 0);
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q, big(a / b));
            prop_assert_eq!(r, big(a % b));
        }

        #[test]
        fn divmod_reconstructs(a_s in "\\-?[0-9]{1,60}", b_s in "[1-9][0-9]{0,40}") {
            let a: BigInt = a_s.parse().unwrap();
            let b: BigInt = b_s.parse().unwrap();
            let (q, r) = a.div_rem(&b);
            prop_assert_eq!(&q * &b + &r, a);
            prop_assert!(r.abs() < b);
        }

        #[test]
        fn ordering_matches_i128(a in any::<i128>(), b in any::<i128>()) {
            prop_assert_eq!(big(a).cmp(&big(b)), a.cmp(&b));
        }

        #[test]
        fn display_parse_roundtrip(s in "\\-?[1-9][0-9]{0,80}") {
            let a: BigInt = s.parse().unwrap();
            prop_assert_eq!(a.to_string(), s);
        }
    }
}
