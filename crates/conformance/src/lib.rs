//! Differential conformance oracles for the `kya` stack.
//!
//! Every algorithm in this workspace can be driven four ways — the
//! sequential [`Execution::step`], the sharded `step_parallel`, the
//! observed variants, and [`FaultyExecution`] — and, for the Push-Sum
//! family, in two arithmetics (f64 and exact [`BigRational`]). The
//! simulator's claims are only as good as those paths agreeing, so this
//! crate cross-checks them on a seeded matrix of topologies:
//!
//! - **paths** — byte-identical state streams across all execution
//!   entry points, every round ([`checks::CheckKind::Paths`]);
//! - **backend** — every f64 output lies inside a machine-checked
//!   directed-rounding enclosure ([`kya_arith::Enclosure`]) computed by
//!   the certified backend, escalating to lazily-normalized exact ℚ
//!   replay when an enclosure cannot certify its comparison; the
//!   `certified` variant runs the escalation-on-demand policy and the
//!   `exact` variant forces the full-ℚ baseline on every cell
//!   ([`checks::CheckKind::Backend`]). There is **no tolerance knob**:
//!   the heuristic `f64_tolerance` model survives only in the relabel /
//!   mass / churn oracles, where no certified twin runs;
//! - **relabel** — vertex-relabeling equivariance (anonymity: renaming
//!   agents must not change what they compute);
//! - **mass** — exact mass conservation under graph faults, and bounded
//!   f64 mass deficit under message faults with self-healing;
//! - **lift** — lift/base indistinguishability along a closed ring
//!   fibration (the paper's lifting lemma, §4.1);
//! - **churn** — mass conservation modulo the explicit reinjection
//!   ledger, frozen parked states, and quiescence/stabilization
//!   detection under the combined pairing + churn + faults stack
//!   ([`checks::CheckKind::Churn`]);
//! - **flat** — the flat SoA/CSR executor
//!   ([`kya_runtime::FlatExecution`]) bitwise identical to the boxed
//!   sequential executor at 1, 2 and 4 threads
//!   ([`checks::CheckKind::Flat`]);
//! - **probe** — the deterministic probe stream of a probed flat run
//!   (merged shard counters plus strided bit-exact sample digests)
//!   byte-identical at 1, 2 and 4 threads, with counters matching the
//!   routing plan's ground truth ([`checks::CheckKind::Probe`]);
//! - **bandwidth** — the bounded-bandwidth laws of the quantized
//!   variants: every payload lane a codeword below `2^b` (audited
//!   message by message), token mass conserved exactly in ℚ, f64
//!   outputs bitwise equal to exact token ratios inside the `ℚ_{2^b}`
//!   grid envelope, flat ≡ boxed with byte-identical ledgers, and the
//!   `b = ∞` rung bitwise identical to the uncapped baseline
//!   ([`checks::CheckKind::Bandwidth`]).
//!
//! The matrix reuses [`ExperimentSpec`]/[`Runner`]/[`ResultSink`], so
//! results are **byte-identical at any worker count** — `kya check
//! --ndjson` output can be diffed across `--workers` values, which the
//! CI conformance job does.
//!
//! [`Execution::step`]: kya_runtime::Execution::step
//! [`FaultyExecution`]: kya_runtime::faults::FaultyExecution
//! [`BigRational`]: kya_arith::BigRational

pub mod checks;
pub mod fingerprint;
pub mod nets;

pub use checks::{f64_tolerance, CheckKind};
pub use fingerprint::Fingerprint;

use kya_harness::{ChurnSpec, ExperimentSpec, PlanSpec, ResultSink, Runner, SpecError};

/// How much of the conformance matrix to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Matrix {
    /// The tier-1 matrix: small sizes, one seed — fast enough for every
    /// `cargo test` and the CI conformance job.
    Small,
    /// The extended matrix: more sizes and seeds.
    Full,
}

impl Matrix {
    /// Parse a `--matrix` argument.
    ///
    /// # Errors
    ///
    /// [`SpecError`] for anything but `small` / `full`.
    pub fn parse(s: &str) -> Result<Matrix, SpecError> {
        match s {
            "small" => Ok(Matrix::Small),
            "full" => Ok(Matrix::Full),
            other => Err(SpecError(format!(
                "unknown matrix `{other}` (expected `small` or `full`)"
            ))),
        }
    }

    /// Network sizes swept (all even, so the lift oracle's `n/2`-fibre
    /// ring fibration is defined at every size).
    fn sizes(self) -> Vec<usize> {
        match self {
            Matrix::Small => vec![4, 6],
            Matrix::Full => vec![4, 6, 8, 12],
        }
    }

    fn seeds(self) -> Vec<u64> {
        match self {
            Matrix::Small => vec![1],
            Matrix::Full => vec![1, 2, 3],
        }
    }

    fn rounds(self) -> u64 {
        match self {
            Matrix::Small => 20,
            Matrix::Full => 40,
        }
    }
}

/// The check matrix: one [`ExperimentSpec`] per oracle kind, in the
/// fixed order `kya check` runs and reports them.
pub fn specs(matrix: Matrix) -> Vec<(CheckKind, ExperimentSpec)> {
    let sizes = matrix.sizes();
    let seeds = matrix.seeds();
    let rounds = matrix.rounds();
    // Churn scripts scale with the round budget: every window closes (or
    // permanently opens) by `3/4 · rounds`, leaving a quiescent tail for
    // the stabilization detector.
    let half = rounds / 2;
    let churn_variants: Vec<String> = [
        ChurnSpec::stable(),
        ChurnSpec::stable().leave(1, rounds / 4..half),
        ChurnSpec::stable()
            .leave(1, rounds / 4..half)
            .leave(2, rounds / 3..half + rounds / 4)
            .reset(),
        ChurnSpec::stable().depart(0, half),
    ]
    .iter()
    .map(ChurnSpec::label)
    .collect();
    vec![
        (
            CheckKind::Paths,
            ExperimentSpec::new("conformance-paths")
                .topologies([
                    "ring:{n}",
                    "star:{n}",
                    "instar:{n}",
                    "torus:{n}",
                    "periodic:{n}",
                    "dyn:{n}:{seed}",
                ])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms([
                    "pushsum",
                    "metropolis",
                    "gossip",
                    "pushsum-freq",
                    "pushsum-leader",
                    "minbase",
                ])
                .rounds(rounds)
                .base_seed(0xc0f0_0001),
        ),
        (
            CheckKind::Backend,
            ExperimentSpec::new("conformance-backend")
                .topologies(["ring:{n}", "complete:{n}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["pushsum", "frequency"])
                .variants(["certified", "exact"])
                .rounds(rounds)
                .base_seed(0xc0f0_0002),
        ),
        (
            CheckKind::Relabel,
            ExperimentSpec::new("conformance-relabel")
                .topologies(["ring:{n}", "star:{n}", "torus:{n}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["gossip", "pushsum-exact", "pushsum"])
                .rounds(rounds)
                .base_seed(0xc0f0_0003),
        ),
        (
            CheckKind::Mass,
            ExperimentSpec::new("conformance-mass")
                .topologies(["ring:{n}", "biring:{n}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["exact-graph-faults", "healing-message-faults"])
                .plans([PlanSpec::quiescent().drop_links(0.25).until(rounds / 2)])
                .rounds(rounds)
                .base_seed(0xc0f0_0004),
        ),
        (
            CheckKind::Lift,
            ExperimentSpec::new("conformance-lift")
                .topologies(["liftring:{n}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["gossip", "pushsum-exact"])
                .rounds(rounds)
                .base_seed(0xc0f0_0005),
        ),
        (
            CheckKind::Churn,
            ExperimentSpec::new("conformance-churn")
                .topologies(["pair:{n}:uniform:{seed}", "pair:{n}:cover:{seed}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["exact-mass", "healing-mass", "frozen-absence"])
                .variants(churn_variants)
                .plans([PlanSpec::quiescent().drop_links(0.25).until(half)])
                .rounds(rounds)
                .base_seed(0xc0f0_0006),
        ),
        (
            CheckKind::Flat,
            ExperimentSpec::new("conformance-flat")
                .topologies([
                    "ring:{n}",
                    "star:{n}",
                    "instar:{n}",
                    "torus:{n}",
                    "random:{n}:{n}:{seed}",
                ])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["pushsum", "metropolis"])
                .rounds(rounds)
                .base_seed(0xc0f0_0007),
        ),
        (
            CheckKind::Probe,
            ExperimentSpec::new("conformance-probe")
                .topologies(["ring:{n}", "instar:{n}", "random:{n}:{n}:{seed}"])
                .sizes(sizes.clone())
                .seeds(seeds.clone())
                .algorithms(["pushsum", "metropolis"])
                .rounds(rounds)
                .base_seed(0xc0f0_0008),
        ),
        (
            // Symmetric topologies only: the quantized Metropolis
            // conservation law needs every link to be bidirectional.
            CheckKind::Bandwidth,
            ExperimentSpec::new("conformance-bandwidth")
                .topologies(["biring:{n}", "complete:{n}", "path:{n}"])
                .sizes(sizes)
                .seeds(seeds)
                .algorithms(["qpushsum", "qmetropolis"])
                .variants(["b1", "b2", "b4", "b8", "binf"])
                .rounds(rounds)
                .base_seed(0xc0f0_0009),
        ),
    ]
}

/// Run the whole matrix at the given worker count.
///
/// The returned sinks are in [`specs`] order; their NDJSON concatenation
/// is byte-identical for every `workers` value.
pub fn run(matrix: Matrix, workers: usize) -> Vec<(CheckKind, ResultSink)> {
    run_only(matrix, workers, None)
}

/// Like [`run`], restricted to one check kind when `only` is set — the
/// engine of `kya check --only <check>`, which lets CI run the expensive
/// full-matrix backend oracle without paying for the other checks.
pub fn run_only(
    matrix: Matrix,
    workers: usize,
    only: Option<CheckKind>,
) -> Vec<(CheckKind, ResultSink)> {
    specs(matrix)
        .into_iter()
        .filter(|(kind, _)| only.is_none_or(|o| o == *kind))
        .map(|(kind, spec)| {
            let sink = Runner::new(&spec).workers(workers).run(|ctx| kind.run(ctx));
            (kind, sink)
        })
        .collect()
}

/// The concatenated NDJSON stream of all sinks, in matrix order.
pub fn to_ndjson(results: &[(CheckKind, ResultSink)]) -> String {
    results.iter().map(|(_, sink)| sink.to_ndjson()).collect()
}

/// Whether every cell of every check passed.
pub fn all_ok(results: &[(CheckKind, ResultSink)]) -> bool {
    results.iter().all(|(_, sink)| sink.all_ok())
}

/// Total number of failed cells across all checks.
pub fn failure_count(results: &[(CheckKind, ResultSink)]) -> usize {
    results.iter().map(|(_, sink)| sink.failures().len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_parses() {
        assert_eq!(Matrix::parse("small").unwrap(), Matrix::Small);
        assert_eq!(Matrix::parse("full").unwrap(), Matrix::Full);
        assert!(Matrix::parse("medium").is_err());
    }

    #[test]
    fn specs_are_ordered_and_named() {
        let specs = specs(Matrix::Small);
        let kinds: Vec<CheckKind> = specs.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                CheckKind::Paths,
                CheckKind::Backend,
                CheckKind::Relabel,
                CheckKind::Mass,
                CheckKind::Lift,
                CheckKind::Churn,
                CheckKind::Flat,
                CheckKind::Probe,
                CheckKind::Bandwidth,
            ]
        );
        for (_, spec) in &specs {
            assert!(spec.name().starts_with("conformance-"), "{}", spec.name());
            assert!(!spec.cells().is_empty(), "{}", spec.name());
        }
    }
}
