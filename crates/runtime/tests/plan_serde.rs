//! Persistence contracts for the adversary scripts: `FaultPlan` (F6)
//! and `ChurnPlan` (F8) round-trip through JSON exactly, and — since
//! archived plans outlive releases — a plan written by a *newer* build
//! with extra fields must still load (unknown fields are ignored, never
//! an error).

use kya_runtime::churn::{ChurnPlan, ReinjectPolicy};
use kya_runtime::faults::FaultPlan;

/// Splice an unknown key into the top-level JSON object, simulating a
/// field added by a future release.
fn with_future_field(json: &str) -> String {
    assert!(json.starts_with('{'), "plans serialize to objects");
    json.replacen('{', "{\"future_field\":[1,{\"nested\":true}],", 1)
}

#[test]
fn fault_plan_roundtrips_and_tolerates_unknown_fields() {
    let plan = FaultPlan::new(0xf6)
        .drop_links(0.125)
        .duplicate(0.25)
        .retry_within(5)
        .until(80)
        .crash(1, 10..30)
        .crash_stop(3, 50);
    let json = serde::to_json_string(&plan);
    let back: FaultPlan = serde::from_json_str(&json).expect("round-trip parses");
    assert_eq!(back, plan);
    let forward: FaultPlan =
        serde::from_json_str(&with_future_field(&json)).expect("unknown field tolerated");
    assert_eq!(forward, plan, "unknown fields ignored, known ones kept");
}

#[test]
fn churn_plan_roundtrips_and_tolerates_unknown_fields() {
    for policy in [ReinjectPolicy::Carry, ReinjectPolicy::Reset] {
        let plan = ChurnPlan::new(0xf8)
            .leave(2, 10..40)
            .leave(4, 25..55)
            .depart(0, 70)
            .policy(policy);
        let json = serde::to_json_string(&plan);
        let back: ChurnPlan = serde::from_json_str(&json).expect("round-trip parses");
        assert_eq!(back, plan);
        let forward: ChurnPlan =
            serde::from_json_str(&with_future_field(&json)).expect("unknown field tolerated");
        assert_eq!(forward, plan);
    }
}

#[test]
fn quiescent_plans_roundtrip() {
    let fault = FaultPlan::new(0);
    let churn = ChurnPlan::new(0);
    assert!(fault.is_quiescent() && churn.is_quiescent());
    let fault_back: FaultPlan =
        serde::from_json_str(&serde::to_json_string(&fault)).expect("parses");
    let churn_back: ChurnPlan =
        serde::from_json_str(&serde::to_json_string(&churn)).expect("parses");
    assert_eq!(fault_back, fault);
    assert_eq!(churn_back, churn);
}

#[test]
fn unknown_reinject_policy_is_rejected() {
    // The flip side of tolerance: an unknown *enum variant* cannot be
    // defaulted away — a plan asking for a policy this build does not
    // implement must fail loudly, not silently fall back to Carry.
    let json = serde::to_json_string(&ChurnPlan::new(1).leave(0, 1..2));
    let bad = json.replace("\"Carry\"", "\"Teleport\"");
    assert_ne!(bad, json, "fixture actually rewrote the policy");
    assert!(serde::from_json_str::<ChurnPlan>(&bad).is_err());
}
