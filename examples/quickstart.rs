//! Quickstart: a five-minute tour of the library.
//!
//! Run with `cargo run --example quickstart`.
//!
//! We build a small anonymous network, ask what is computable in each
//! communication model (the paper's Tables 1–2), and then actually
//! compute: the maximum by gossip (simple broadcast), and the exact
//! average by minimum-base + fibre census (outdegree awareness) — the
//! separation the paper is about.

use know_your_audience::algos::frequency::CensusOutdegree;
use know_your_audience::algos::gossip::{set_functions, SetGossip};
use know_your_audience::algos::min_base::ViewState;
use know_your_audience::core::functions::average;
use know_your_audience::core::table::{render_table, NetworkKind};
use know_your_audience::graph::{generators, StaticGraph};
use know_your_audience::runtime::{Broadcast, Execution, Isotropic, RunConfig};

fn main() {
    // ----- What does the theory say? -----
    println!("{}", render_table(NetworkKind::Static));
    println!("{}", render_table(NetworkKind::Dynamic));

    // ----- A concrete network: 8 anonymous sensors on a random digraph.
    let values: Vec<u64> = vec![21, 19, 21, 24, 19, 21, 18, 21];
    let g = generators::random_strongly_connected(8, 6, 42);
    let net = StaticGraph::new(g);

    // Simple broadcast: the set of readings floods in D rounds; max is
    // computable, the average is provably not (Table 1, column 1).
    let mut gossip = Execution::new(Broadcast(SetGossip), SetGossip::initial(&values));
    gossip.drive(&net, RunConfig::rounds(10));
    let set = gossip.outputs()[0].clone();
    println!("\nsimple broadcast: every agent knows the SET {set:?}");
    println!(
        "  max  = {:?}  (set-based: computable)",
        set_functions::max(&set)
    );

    // Outdegree awareness: the fibre census recovers exact frequencies,
    // hence the exact average (Theorem 4.1).
    let mut census_exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
    census_exec.drive(&net, RunConfig::rounds(24)); // n + D rounds suffice
    let census = census_exec.outputs()[0]
        .clone()
        .expect("census stabilizes by round n + D");
    println!("\noutdegree awareness: every agent knows the FREQUENCIES");
    for (v, f) in census.frequencies() {
        println!("  value {v}: frequency {f}");
    }
    let truth = average(&values);
    println!("  average = {truth} (frequency-based: computable)");

    // The census agrees with ground truth.
    let canonical = census.canonical_vector();
    assert_eq!(average(&canonical), truth);
    println!("\ncensus average matches ground truth — quickstart OK");
}
