//! **flat** — throughput of the flat SoA/CSR engine
//! ([`FlatExecution`]) against the boxed executor's sharded
//! `step_parallel`, as one harness sweep.
//!
//! The variant axis encodes `engine:tT` (e.g. `boxed:t1`, `flat:t4`);
//! `--engine boxed|flat|both` selects the engines, `--threads 1,2,4`
//! the shard counts. Every cell runs Push-Sum for the full round budget
//! and reports wall-clock `rounds_per_sec`; flat cells also report the
//! measured `bytes_per_agent` of the resident SoA buffers. Both engines
//! compute bit-identical states (the `kya check` flat oracle pins
//! that), so the sweep is a pure like-for-like timing.

use super::Experiment;
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::StaticGraph;
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, SpecError};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::{
    CountingProbe, Execution, FlatExecution, FlatRunConfig, Isotropic, Log2Histogram, RunConfig,
};
use std::time::Instant;

/// Convergence tolerance of the sweep's measured runs; Push-Sum rarely
/// reaches it inside the fixed budget at large n, in which case
/// `converged_at` is honestly null.
const EPS: f64 = 1e-9;

/// The flat-engine registry entry.
pub const EXPERIMENT: Experiment = Experiment {
    name: "flat",
    about: "flat SoA/CSR engine vs boxed executor throughput",
    extra_flags: &["threads"],
    build,
    cell,
    render,
};

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 101) as f64).collect()
}

fn build(args: &Args) -> Result<Vec<ExperimentSpec>, SpecError> {
    let threads = args.usize_list_flag("threads", &[1, 4])?;
    let spec = ExperimentSpec::new("flat_engine")
        .topologies(["ring:{n}", "torus:{n}", "random:{n}:{n}:{seed}"])
        .sizes([10_000, 100_000])
        .seeds([1])
        .rounds(50)
        .engine("both")
        .with_args(args)?;
    let engines: Vec<&str> = match spec.engine_label() {
        "boxed" => vec!["boxed"],
        "flat" => vec!["flat"],
        _ => vec!["boxed", "flat"],
    };
    let variants: Vec<String> = engines
        .iter()
        .flat_map(|e| threads.iter().map(move |t| format!("{e}:t{t}")))
        .collect();
    Ok(vec![spec.variants(variants)])
}

/// Split a `engine:tT` variant label.
fn parse_variant(variant: &str) -> (&str, usize) {
    let (engine, t) = variant.split_once(":t").unwrap_or((variant, "1"));
    (engine, t.parse().unwrap_or(1))
}

fn cell(ctx: &CellCtx) -> CellOutcome {
    let (engine, threads) = parse_variant(&ctx.cell.variant);
    let g = match ctx.graph() {
        Ok(g) => g,
        Err(e) => return CellOutcome::new().ok(false).detail("error", e.to_string()),
    };
    let n = g.n();
    let rounds = ctx.rounds();
    let values = values_for(n);
    let target = values.iter().sum::<f64>() / n.max(1) as f64;
    let states = PushSumState::averaging(&values);
    // First run: pure timing (unmeasured, unprobed) for an honest
    // rounds/s. Second run: measured (and, on the flat engine, probed)
    // for `converged_at`, the residual histogram, and the probe totals.
    let mut outcome = CellOutcome::new();
    let (secs, outputs, bytes) = match engine {
        "flat" => {
            let closed = g.with_self_loops();
            let mut exec = FlatExecution::new(PushSum, &closed, PushSumState::columns(&states));
            let bytes = exec.resident_bytes();
            let start = Instant::now();
            exec.run(rounds, threads);
            let secs = start.elapsed().as_secs_f64();

            let mut probed = FlatExecution::new(PushSum, &closed, PushSumState::columns(&states));
            let mut probe = CountingProbe::new();
            let report = probed.drive_probed(
                FlatRunConfig::rounds(rounds)
                    .threads(threads)
                    .measure(target, EPS)
                    .confirm(2),
                &mut probe,
            );
            let residuals: Vec<f64> = probed.outputs().iter().map(|x| x - target).collect();
            let plan = probed.plan();
            let mut indeg = Log2Histogram::new();
            for v in 0..plan.n() {
                indeg.record_count(plan.indegree(v) as u64);
            }
            outcome = outcome
                .report(report.without_trace())
                .probe(probe.summary())
                .detail("residual_hist", Log2Histogram::from_values(&residuals))
                .detail("volume_hist", probe.volume_histogram().clone())
                .detail("indegree_hist", indeg);
            (secs, exec.outputs(), Some(bytes))
        }
        _ => {
            let net = StaticGraph::new((*g).clone());
            let mut exec = Execution::new(Isotropic(PushSum), states.clone());
            let start = Instant::now();
            exec.drive(&net, RunConfig::rounds(rounds).threads(threads));
            let secs = start.elapsed().as_secs_f64();

            let mut measured = Execution::new(Isotropic(PushSum), states);
            let report = measured.drive(
                &net,
                RunConfig::rounds(rounds)
                    .threads(threads)
                    .measure(&EuclideanMetric, &target, EPS)
                    .confirm(2),
            );
            outcome = outcome.report(report.without_trace());
            (secs, exec.outputs(), None)
        }
    };
    let ok = outputs.iter().all(|x| x.is_finite());
    outcome = outcome
        .ok(ok)
        .detail("engine", engine)
        .detail("threads", threads)
        .detail("rounds_per_sec", rounds as f64 / secs.max(1e-9));
    if let Some(b) = bytes {
        outcome = outcome.detail("bytes_per_agent", b as f64 / n.max(1) as f64);
    }
    outcome
}

fn detail_f64(r: &kya_harness::CellRecord, key: &str) -> Option<f64> {
    r.details
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            serde::Value::Float(f) => Some(*f),
            serde::Value::Int(i) => Some(*i as f64),
            serde::Value::UInt(u) => Some(*u as f64),
            _ => None,
        })
}

fn render(sink: &ResultSink) -> String {
    let mut out = String::new();
    out.push_str("Flat engine vs boxed executor (Push-Sum, full round budget)\n");
    out.push_str(&format!(
        "{:>22} {:>9} {:>8} {:>8} {:>14} {:>12} {:>8} {:>9}\n",
        "graph", "n", "engine", "threads", "rounds/s", "bytes/agent", "conv@", "speedup"
    ));
    for r in sink.records() {
        let (engine, threads) = parse_variant(&r.variant);
        let rps = detail_f64(r, "rounds_per_sec").unwrap_or(0.0);
        let bytes = detail_f64(r, "bytes_per_agent")
            .map(|b| format!("{b:.1}"))
            .unwrap_or_else(|| "-".to_string());
        let conv = r
            .report
            .as_ref()
            .and_then(|rep| rep.converged_at)
            .map(|c| c.to_string())
            .unwrap_or_else(|| "-".to_string());
        // Speedup vs the boxed cell at the same (graph, n, threads).
        let speedup = if engine == "flat" {
            sink.records()
                .iter()
                .find(|b| {
                    b.topology == r.topology
                        && b.n == r.n
                        && b.variant == format!("boxed:t{threads}")
                })
                .and_then(|b| detail_f64(b, "rounds_per_sec"))
                .map(|base| format!("{:.1}x", rps / base.max(1e-9)))
                .unwrap_or_else(|| "-".to_string())
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:>22} {:>9} {:>8} {:>8} {:>14.1} {:>12} {:>8} {:>9}\n",
            r.topology, r.n, engine, threads, rps, bytes, conv, speedup
        ));
    }
    out.push_str(
        "\nReading: the flat engine replays the boxed executor's canonical \
         delivery order through a precomputed CSR plan over SoA f64 columns — \
         identical bits, no per-round allocation, and an order of magnitude \
         more rounds per second at large n.\n",
    );
    out
}
