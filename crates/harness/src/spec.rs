//! Experiment specifications: axes, graph/value grammars, fault-plan
//! templates, and deterministic cell enumeration.
//!
//! Graph specs are `family:params`:
//!
//! | spec | graph |
//! |------|-------|
//! | `ring:N` | directed ring |
//! | `biring:N` | bidirectional ring |
//! | `star:N` | bidirectional star |
//! | `path:N` | bidirectional path |
//! | `complete:N` | complete digraph |
//! | `torus:RxC` / `torus:N` | directed torus (near-square for `N`) |
//! | `hypercube:D` | bidirectional hypercube |
//! | `debruijn:BxK` | de Bruijn graph |
//! | `kautz:BxK` | Kautz graph |
//! | `layered:GxS` | layered cycle of `G` groups of `S` |
//! | `random:N:EXTRA:SEED` | random strongly connected digraph |
//! | `randbi:N:EXTRA:SEED` | random connected bidirectional graph |
//!
//! In an [`ExperimentSpec`] topology axis, specs are *patterns*: the
//! placeholders `{n}` and `{seed}` are substituted from the size and
//! seed axes, so `ring:{n}` crossed with sizes `[4, 8]` enumerates
//! `ring:4` and `ring:8`. Labels the grammar does not know (for dynamic
//! networks, say) pass through verbatim for the experiment's cell
//! function to interpret.

use crate::args::Args;
use kya_graph::{generators, Digraph};
use kya_runtime::churn::{ChurnPlan, ChurnWindow, ReinjectPolicy};
use kya_runtime::faults::{CrashWindow, FaultPlan};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Range;

/// A specification or flag parsing error with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

fn parse_num(s: &str, what: &str) -> Result<usize, SpecError> {
    s.parse()
        .map_err(|_| err(format!("invalid {what}: `{s}` is not a number")))
}

fn parse_pair(s: &str, what: &str) -> Result<(usize, usize), SpecError> {
    let (a, b) = s
        .split_once('x')
        .ok_or_else(|| err(format!("invalid {what}: expected AxB, got `{s}`")))?;
    Ok((parse_num(a, what)?, parse_num(b, what)?))
}

/// The near-square factorization `r x c = n` with `r <= c` and `r`
/// maximal — what `torus:N` means.
fn near_square(n: usize) -> (usize, usize) {
    let n = n.max(1);
    let mut r = (n as f64).sqrt() as usize;
    while r > 1 && !n.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), n / r.max(1))
}

/// Parse a graph spec (see module docs for the grammar).
///
/// # Errors
///
/// Returns a [`SpecError`] describing the problem.
pub fn parse_graph(spec: &str) -> Result<Digraph, SpecError> {
    let mut parts = spec.split(':');
    let family = parts.next().unwrap_or_default();
    let rest: Vec<&str> = parts.collect();
    let arg = |i: usize| -> Result<&str, SpecError> {
        rest.get(i)
            .copied()
            .ok_or_else(|| err(format!("`{family}` needs more parameters (got `{spec}`)")))
    };
    let graph = match family {
        "ring" => generators::directed_ring(parse_num(arg(0)?, "size")?.max(1)),
        "biring" => generators::bidirectional_ring(parse_num(arg(0)?, "size")?.max(1)),
        "star" => generators::star(parse_num(arg(0)?, "size")?.max(1)),
        "path" => generators::bidirectional_path(parse_num(arg(0)?, "size")?.max(1)),
        "complete" => generators::complete(parse_num(arg(0)?, "size")?),
        "torus" => {
            let (r, c) = if arg(0)?.contains('x') {
                parse_pair(arg(0)?, "torus dimensions")?
            } else {
                near_square(parse_num(arg(0)?, "torus size")?)
            };
            generators::directed_torus(r.max(1), c.max(1))
        }
        "hypercube" => generators::hypercube(parse_num(arg(0)?, "dimension")? as u32),
        "debruijn" => {
            let (b, k) = parse_pair(arg(0)?, "de Bruijn parameters")?;
            generators::de_bruijn(b.max(1), (k.max(1)) as u32)
        }
        "kautz" => {
            let (b, k) = parse_pair(arg(0)?, "Kautz parameters")?;
            generators::kautz(b.max(1), k as u32)
        }
        "layered" => {
            let (g, s) = parse_pair(arg(0)?, "layered-cycle parameters")?;
            generators::layered_cycle(g.max(1), s.max(1))
        }
        "random" => {
            let n = parse_num(arg(0)?, "size")?.max(1);
            let extra = parse_num(arg(1)?, "extra edge count")?;
            let seed = parse_num(arg(2)?, "seed")? as u64;
            generators::random_strongly_connected(n, extra, seed)
        }
        "randbi" => {
            let n = parse_num(arg(0)?, "size")?.max(1);
            let extra = parse_num(arg(1)?, "extra pair count")?;
            let seed = parse_num(arg(2)?, "seed")? as u64;
            generators::random_bidirectional_connected(n, extra, seed)
        }
        other => {
            return Err(err(format!(
                "unknown graph family `{other}` (try ring, biring, star, path, complete, \
                 torus, hypercube, debruijn, kautz, layered, random, randbi)"
            )))
        }
    };
    Ok(graph)
}

/// Parse a comma-separated value list (`1,2,3`), optionally with `xK`
/// repetition (`5x3,7` = `5,5,5,7`).
///
/// # Errors
///
/// Returns a [`SpecError`] describing the problem.
pub fn parse_values(spec: &str) -> Result<Vec<u64>, SpecError> {
    let mut out = Vec::new();
    for item in spec.split(',') {
        if item.is_empty() {
            continue;
        }
        match item.split_once('x') {
            Some((v, k)) => {
                let v: u64 = v.parse().map_err(|_| err(format!("invalid value `{v}`")))?;
                let k: usize = k
                    .parse()
                    .map_err(|_| err(format!("invalid repeat count `{k}`")))?;
                out.extend(std::iter::repeat_n(v, k));
            }
            None => out.push(
                item.parse()
                    .map_err(|_| err(format!("invalid value `{item}`")))?,
            ),
        }
    }
    if out.is_empty() {
        return Err(err("empty value list"));
    }
    Ok(out)
}

/// The same `splitmix64` finalizer the fault plans use: cell seeds are
/// pure functions of the spec, never of scheduling.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Fault-plan templates
// ---------------------------------------------------------------------

/// A serializable [`FaultPlan`] template: everything but the seed, which
/// is supplied per cell (or pinned with [`PlanSpec::with_seed`]).
///
/// This is the fault-plan *axis* of an [`ExperimentSpec`]: the same
/// template crossed with many cells yields independent (but
/// deterministic and replayable) fault coins per cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanSpec {
    drop_p: f64,
    dup_p: f64,
    horizon: Option<u64>,
    crashes: Vec<CrashWindow>,
    seed: Option<u64>,
}

impl Default for PlanSpec {
    fn default() -> PlanSpec {
        PlanSpec::quiescent()
    }
}

impl PlanSpec {
    /// A template injecting no faults.
    pub fn quiescent() -> PlanSpec {
        PlanSpec {
            drop_p: 0.0,
            dup_p: 0.0,
            horizon: None,
            crashes: Vec::new(),
            seed: None,
        }
    }

    /// Drop each non-self-loop link i.i.d. with probability `p`.
    pub fn drop_links(mut self, p: f64) -> PlanSpec {
        self.drop_p = p;
        self
    }

    /// Deliver each surviving link twice with probability `p`.
    pub fn duplicate(mut self, p: f64) -> PlanSpec {
        self.dup_p = p;
        self
    }

    /// Probabilistic link faults cease after round `last`.
    pub fn until(mut self, last: u64) -> PlanSpec {
        self.horizon = Some(last);
        self
    }

    /// Crash `agent` for the rounds in `window` (crash-recover).
    pub fn crash(mut self, agent: usize, window: Range<u64>) -> PlanSpec {
        self.crashes.push(CrashWindow {
            agent,
            from: window.start,
            until: Some(window.end),
        });
        self
    }

    /// Crash `agent` at round `from`, permanently (crash-stop).
    pub fn crash_stop(mut self, agent: usize, from: u64) -> PlanSpec {
        self.crashes.push(CrashWindow {
            agent,
            from,
            until: None,
        });
        self
    }

    /// Pin the fault-coin seed instead of deriving it per cell (what the
    /// single-run `kya faults` adapter wants).
    pub fn with_seed(mut self, seed: u64) -> PlanSpec {
        self.seed = Some(seed);
        self
    }

    /// Whether the template injects no faults at all.
    pub fn is_quiescent(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.crashes.is_empty()
    }

    /// The per-round link-drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.drop_p
    }

    /// The scripted crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// A short deterministic label for result records, e.g.
    /// `p0.3+c2` or `quiescent`.
    pub fn label(&self) -> String {
        if self.is_quiescent() {
            return "quiescent".to_string();
        }
        let mut parts = Vec::new();
        if self.drop_p > 0.0 {
            parts.push(format!("p{}", self.drop_p));
        }
        if self.dup_p > 0.0 {
            parts.push(format!("d{}", self.dup_p));
        }
        if !self.crashes.is_empty() {
            parts.push(format!("c{}", self.crashes.len()));
        }
        parts.join("+")
    }

    /// Instantiate the template as a concrete [`FaultPlan`], seeding the
    /// coins with the pinned seed if any, else `cell_seed`.
    pub fn build(&self, cell_seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed.unwrap_or(cell_seed));
        if self.drop_p > 0.0 {
            plan = plan.drop_links(self.drop_p);
        }
        if self.dup_p > 0.0 {
            plan = plan.duplicate(self.dup_p);
        }
        if let Some(h) = self.horizon {
            plan = plan.until(h);
        }
        for w in &self.crashes {
            plan = match w.until {
                Some(until) => plan.crash(w.agent, w.from..until),
                None => plan.crash_stop(w.agent, w.from),
            };
        }
        plan
    }
}

// ---------------------------------------------------------------------
// Churn-plan templates
// ---------------------------------------------------------------------

/// A serializable [`ChurnPlan`] template, mirroring [`PlanSpec`]:
/// everything but the seed, which is supplied per cell (or pinned with
/// [`ChurnSpec::with_seed`]).
///
/// Unlike the fault templates, churn templates ride the **variant axis**
/// of an [`ExperimentSpec`] as labels (the NDJSON schema is unchanged),
/// so the label grammar is round-trippable: [`ChurnSpec::label`] and
/// [`ChurnSpec::parse`] are inverses, and a cell function reconstructs
/// the template from its `variant` string.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    windows: Vec<ChurnWindow>,
    policy: ReinjectPolicy,
    seed: Option<u64>,
}

impl Default for ChurnSpec {
    fn default() -> ChurnSpec {
        ChurnSpec::stable()
    }
}

impl ChurnSpec {
    /// A template scripting no churn.
    pub fn stable() -> ChurnSpec {
        ChurnSpec {
            windows: Vec::new(),
            policy: ReinjectPolicy::Carry,
            seed: None,
        }
    }

    /// `agent` is absent for the rounds in `window` (leave + rejoin).
    pub fn leave(mut self, agent: usize, window: Range<u64>) -> ChurnSpec {
        self.windows.push(ChurnWindow {
            agent,
            leave: window.start,
            rejoin: Some(window.end),
        });
        self
    }

    /// `agent` leaves at round `from` and never comes back.
    pub fn depart(mut self, agent: usize, from: u64) -> ChurnSpec {
        self.windows.push(ChurnWindow {
            agent,
            leave: from,
            rejoin: None,
        });
        self
    }

    /// Rejoining agents get a fresh state ([`ReinjectPolicy::Reset`]).
    pub fn reset(mut self) -> ChurnSpec {
        self.policy = ReinjectPolicy::Reset;
        self
    }

    /// Rejoining agents resume from their parked state
    /// ([`ReinjectPolicy::Carry`], the default).
    pub fn carry(mut self) -> ChurnSpec {
        self.policy = ReinjectPolicy::Carry;
        self
    }

    /// Pin the plan seed instead of deriving it per cell.
    pub fn with_seed(mut self, seed: u64) -> ChurnSpec {
        self.seed = Some(seed);
        self
    }

    /// Whether the template scripts no churn.
    pub fn is_stable(&self) -> bool {
        self.windows.is_empty()
    }

    /// The scripted absence windows.
    pub fn windows(&self) -> &[ChurnWindow] {
        &self.windows
    }

    /// The mass re-injection policy.
    pub fn policy(&self) -> ReinjectPolicy {
        self.policy
    }

    /// A deterministic, parseable label: `stable`, or `c` followed by
    /// comma-joined `AGENT:LEAVE:REJOIN` windows (`-` for a permanent
    /// departure), with `+reset` appended under the reset policy — e.g.
    /// `c2:10:40,5:20:-+reset`. Inverse of [`ChurnSpec::parse`]; a
    /// pinned seed is not part of the label.
    pub fn label(&self) -> String {
        if self.is_stable() {
            return "stable".to_string();
        }
        let windows: Vec<String> = self
            .windows
            .iter()
            .map(|w| {
                let rejoin = w.rejoin.map_or_else(|| "-".to_string(), |r| r.to_string());
                format!("{}:{}:{}", w.agent, w.leave, rejoin)
            })
            .collect();
        let suffix = match self.policy {
            ReinjectPolicy::Carry => "",
            ReinjectPolicy::Reset => "+reset",
        };
        format!("c{}{suffix}", windows.join(","))
    }

    /// Parse a [`ChurnSpec::label`] back into a template.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] describing the malformed part.
    pub fn parse(label: &str) -> Result<ChurnSpec, SpecError> {
        if label == "stable" {
            return Ok(ChurnSpec::stable());
        }
        let body = label.strip_prefix('c').ok_or_else(|| {
            err(format!(
                "churn label must be `stable` or start with `c`: `{label}`"
            ))
        })?;
        let (body, policy) = match body.strip_suffix("+reset") {
            Some(b) => (b, ReinjectPolicy::Reset),
            None => (body, ReinjectPolicy::Carry),
        };
        let mut spec = ChurnSpec::stable();
        spec.policy = policy;
        for part in body.split(',') {
            let fields: Vec<&str> = part.split(':').collect();
            let [agent, leave, rejoin] = fields.as_slice() else {
                return Err(err(format!(
                    "churn window must be AGENT:LEAVE:REJOIN, got `{part}`"
                )));
            };
            let agent = parse_num(agent, "churn agent")?;
            let leave = parse_num(leave, "churn leave round")? as u64;
            let rejoin = if *rejoin == "-" {
                None
            } else {
                Some(parse_num(rejoin, "churn rejoin round")? as u64)
            };
            spec.windows.push(ChurnWindow {
                agent,
                leave,
                rejoin,
            });
        }
        Ok(spec)
    }

    /// Instantiate the template as a concrete [`ChurnPlan`], using the
    /// pinned seed if any, else `cell_seed`.
    pub fn build(&self, cell_seed: u64) -> ChurnPlan {
        let mut plan = ChurnPlan::new(self.seed.unwrap_or(cell_seed)).policy(self.policy);
        for w in &self.windows {
            plan = match w.rejoin {
                Some(rejoin) => plan.leave(w.agent, w.leave..rejoin),
                None => plan.depart(w.agent, w.leave),
            };
        }
        plan
    }
}

// ---------------------------------------------------------------------
// Experiment specifications
// ---------------------------------------------------------------------

/// The sweep flags every harness-driven binary understands; pass to
/// [`Args::reject_unknown`] (plus any experiment-specific extras).
pub const SWEEP_FLAGS: &[&str] = &[
    "topologies",
    "sizes",
    "seeds",
    "seed",
    "rounds",
    "eps",
    "engine",
    "workers",
    "ndjson",
    "json",
];

/// A declarative experiment: cartesian axes (topology × size × seed ×
/// algorithm × variant × fault plan) plus shared run parameters.
///
/// Axes left empty contribute a single neutral element, so the cell
/// enumeration is always the full cartesian product in a fixed order —
/// the order (and each cell's derived seed) depends only on the spec,
/// never on worker scheduling.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    name: String,
    topologies: Vec<String>,
    sizes: Vec<usize>,
    seeds: Vec<u64>,
    algorithms: Vec<String>,
    variants: Vec<String>,
    plans: Vec<PlanSpec>,
    rounds: u64,
    eps: f64,
    base_seed: u64,
    engine: String,
}

/// One enumerated cell of an [`ExperimentSpec`]: the resolved axis
/// values plus the derived per-cell seed.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Position in the spec's enumeration order.
    pub index: usize,
    /// Resolved topology label (`{n}` / `{seed}` substituted).
    pub topology: String,
    /// The size-axis value (0 when the spec has no size axis).
    pub n: usize,
    /// The seed-axis value.
    pub seed: u64,
    /// The algorithm-axis label.
    pub algorithm: String,
    /// The variant-axis label (experiment-specific sub-axis).
    pub variant: String,
    /// The fault-plan template for this cell.
    pub plan: PlanSpec,
    /// Deterministic per-cell seed: a pure function of the spec's base
    /// seed, this cell's seed-axis value, and the cell index.
    pub cell_seed: u64,
}

impl ExperimentSpec {
    /// A new spec with no axes, 1000 rounds, ε = 1e-6, base seed 42.
    pub fn new(name: impl Into<String>) -> ExperimentSpec {
        ExperimentSpec {
            name: name.into(),
            topologies: Vec::new(),
            sizes: Vec::new(),
            seeds: Vec::new(),
            algorithms: Vec::new(),
            variants: Vec::new(),
            plans: Vec::new(),
            rounds: 1000,
            eps: 1e-6,
            base_seed: 42,
            engine: "boxed".to_string(),
        }
    }

    /// Set the topology axis (label patterns; `{n}`, `{seed}`
    /// placeholders).
    pub fn topologies<I, S>(mut self, t: I) -> ExperimentSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.topologies = t.into_iter().map(Into::into).collect();
        self
    }

    /// Set the size axis.
    pub fn sizes(mut self, s: impl IntoIterator<Item = usize>) -> ExperimentSpec {
        self.sizes = s.into_iter().collect();
        self
    }

    /// Set the seed axis.
    pub fn seeds(mut self, s: impl IntoIterator<Item = u64>) -> ExperimentSpec {
        self.seeds = s.into_iter().collect();
        self
    }

    /// Set the algorithm axis.
    pub fn algorithms<I, S>(mut self, a: I) -> ExperimentSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.algorithms = a.into_iter().map(Into::into).collect();
        self
    }

    /// Set the variant axis (experiment-specific sub-axis, e.g. the
    /// centralized-help rows of the tables or an ε sweep).
    pub fn variants<I, S>(mut self, v: I) -> ExperimentSpec
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.variants = v.into_iter().map(Into::into).collect();
        self
    }

    /// Set the fault-plan axis.
    pub fn plans(mut self, p: impl IntoIterator<Item = PlanSpec>) -> ExperimentSpec {
        self.plans = p.into_iter().collect();
        self
    }

    /// Set the round budget shared by all cells.
    pub fn rounds(mut self, r: u64) -> ExperimentSpec {
        self.rounds = r;
        self
    }

    /// Set the convergence tolerance shared by all cells.
    pub fn eps(mut self, e: f64) -> ExperimentSpec {
        self.eps = e;
        self
    }

    /// Set the base seed from which per-cell seeds derive.
    pub fn base_seed(mut self, s: u64) -> ExperimentSpec {
        self.base_seed = s;
        self
    }

    /// Select the execution engine: `boxed` (the generic executor),
    /// `flat` (the SoA/CSR executor for f64 algorithms on static
    /// graphs), or `both` (experiments that compare them side by side).
    /// Experiments that never consult the engine ignore it.
    ///
    /// # Panics
    ///
    /// Panics on any other label; use [`ExperimentSpec::with_args`] for
    /// fallible parsing of user input.
    pub fn engine(mut self, e: impl Into<String>) -> ExperimentSpec {
        let e = e.into();
        assert!(
            matches!(e.as_str(), "boxed" | "flat" | "both"),
            "engine must be `boxed`, `flat`, or `both`, got `{e}`"
        );
        self.engine = e;
        self
    }

    /// Override axes and parameters from parsed sweep flags:
    /// `--topologies`, `--sizes`, `--seeds`, `--seed` (base seed; also
    /// the seed axis unless `--seeds` is given), `--rounds`, `--eps`.
    ///
    /// This is the one place the CLI and every bench binary map flags
    /// onto a spec.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] for malformed numbers.
    pub fn with_args(mut self, args: &Args) -> Result<ExperimentSpec, SpecError> {
        if let Some(t) = args.optional("topologies") {
            self.topologies = t
                .split(',')
                .filter(|s| !s.is_empty())
                .map(String::from)
                .collect();
        }
        self.sizes = args.usize_list_flag("sizes", &self.sizes)?;
        if let Some(s) = args.optional("seeds") {
            self.seeds = s
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|item| {
                    item.parse()
                        .map_err(|_| err(format!("--seeds entries must be numbers, got `{item}`")))
                })
                .collect::<Result<Vec<u64>, _>>()?;
        }
        if args.optional("seed").is_some() {
            let s = args.u64_flag("seed", self.base_seed)?;
            self.base_seed = s;
            if args.optional("seeds").is_none() {
                self.seeds = vec![s];
            }
        }
        self.rounds = args.u64_flag("rounds", self.rounds)?;
        self.eps = args.f64_flag("eps", self.eps)?;
        if let Some(e) = args.optional("engine") {
            if !matches!(e, "boxed" | "flat" | "both") {
                return Err(err(format!(
                    "--engine must be `boxed`, `flat`, or `both`, got `{e}`"
                )));
            }
            self.engine = e.to_string();
        }
        Ok(self)
    }

    /// The experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared round budget.
    pub fn round_budget(&self) -> u64 {
        self.rounds
    }

    /// The shared convergence tolerance.
    pub fn tolerance(&self) -> f64 {
        self.eps
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.base_seed
    }

    /// The selected execution engine (`boxed`, `flat`, or `both`).
    pub fn engine_label(&self) -> &str {
        &self.engine
    }

    /// The size axis as configured (may be empty).
    pub fn size_axis(&self) -> &[usize] {
        &self.sizes
    }

    /// The seed axis as configured (may be empty; defaults to the base
    /// seed during enumeration).
    pub fn seed_axis(&self) -> &[u64] {
        &self.seeds
    }

    /// The distinct resolved topology labels, in first-appearance order
    /// (what a runner pre-warms the cache with).
    pub fn topology_labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for c in self.cells() {
            if !labels.contains(&c.topology) {
                labels.push(c.topology);
            }
        }
        labels
    }

    /// Enumerate every cell in the fixed axis order: topology (outer) ×
    /// size × seed × algorithm × variant × plan (inner).
    pub fn cells(&self) -> Vec<CellSpec> {
        fn or_neutral<T: Clone>(axis: &[T], neutral: T) -> Vec<T> {
            if axis.is_empty() {
                vec![neutral]
            } else {
                axis.to_vec()
            }
        }
        let topologies = or_neutral(&self.topologies, String::new());
        let sizes = or_neutral(&self.sizes, 0);
        let seeds = or_neutral(&self.seeds, self.base_seed);
        let algorithms = or_neutral(&self.algorithms, String::new());
        let variants = or_neutral(&self.variants, String::new());
        let plans = or_neutral(&self.plans, PlanSpec::quiescent());

        let mut out = Vec::new();
        let mut index = 0;
        for pattern in &topologies {
            for &n in &sizes {
                for &seed in &seeds {
                    for algorithm in &algorithms {
                        for variant in &variants {
                            for plan in &plans {
                                let topology = pattern
                                    .replace("{n}", &n.to_string())
                                    .replace("{seed}", &seed.to_string());
                                let mut h = mix(self.base_seed ^ 0x6b79_615f_6877_7373);
                                h = mix(h.wrapping_add(seed));
                                let cell_seed = mix(h.wrapping_add(index as u64));
                                out.push(CellSpec {
                                    index,
                                    topology,
                                    n,
                                    seed,
                                    algorithm: algorithm.clone(),
                                    variant: variant.clone(),
                                    plan: plan.clone(),
                                    cell_seed,
                                });
                                index += 1;
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_parse() {
        assert_eq!(parse_graph("ring:5").unwrap().n(), 5);
        assert_eq!(parse_graph("biring:4").unwrap().edge_count(), 8);
        assert_eq!(parse_graph("torus:2x3").unwrap().n(), 6);
        assert_eq!(parse_graph("hypercube:3").unwrap().n(), 8);
        assert_eq!(parse_graph("debruijn:2x2").unwrap().n(), 4);
        assert_eq!(parse_graph("kautz:2x1").unwrap().n(), 6);
        assert_eq!(parse_graph("random:7:3:42").unwrap().n(), 7);
        assert_eq!(parse_graph("randbi:7:2:1").unwrap().n(), 7);
        assert_eq!(parse_graph("star:5").unwrap().outdegree(0), 4);
        assert_eq!(parse_graph("layered:3x4").unwrap().n(), 12);
    }

    #[test]
    fn torus_single_size_factorizes_near_square() {
        // torus:12 = the 3x4 torus (same graph the old F6 hard-coded).
        let a = parse_graph("torus:12").unwrap();
        let b = parse_graph("torus:3x4").unwrap();
        assert_eq!(a.multiplicity_matrix(), b.multiplicity_matrix());
        assert_eq!(parse_graph("torus:9").unwrap().n(), 9); // 3x3
        assert_eq!(parse_graph("torus:5").unwrap().n(), 5); // 1x5 ring
    }

    #[test]
    fn graph_spec_errors() {
        assert!(parse_graph("nonsense:3").is_err());
        assert!(parse_graph("ring").is_err());
        assert!(parse_graph("torus:axb").is_err());
        assert!(parse_graph("random:5:1").is_err());
        assert!(parse_graph("ring:xyz").is_err());
    }

    #[test]
    fn value_specs_parse() {
        assert_eq!(parse_values("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_values("5x3,7").unwrap(), vec![5, 5, 5, 7]);
        assert_eq!(parse_values("0x2").unwrap(), vec![0, 0]);
        assert!(parse_values("").is_err());
        assert!(parse_values("a,b").is_err());
        assert!(parse_values("1x").is_err());
    }

    #[test]
    fn cells_enumerate_the_cartesian_product() {
        let spec = ExperimentSpec::new("t")
            .topologies(["ring:{n}", "torus:{n}"])
            .sizes([4, 6])
            .algorithms(["a", "b"]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 8);
        assert_eq!(cells[0].topology, "ring:4");
        assert_eq!(cells[0].algorithm, "a");
        assert_eq!(cells[1].algorithm, "b");
        assert_eq!(cells[2].topology, "ring:6");
        assert_eq!(cells[4].topology, "torus:4");
        // Indices are the enumeration order.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        assert_eq!(
            spec.topology_labels(),
            vec!["ring:4", "ring:6", "torus:4", "torus:6"]
        );
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let spec = ExperimentSpec::new("t")
            .topologies(["ring:{n}"])
            .sizes([4, 6, 8])
            .base_seed(7);
        let a = spec.cells();
        let b = spec.cells();
        assert_eq!(a, b, "pure function of the spec");
        let seeds: Vec<u64> = a.iter().map(|c| c.cell_seed).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "distinct per cell");
        // A different base seed shifts every cell seed.
        let other = ExperimentSpec::new("t")
            .topologies(["ring:{n}"])
            .sizes([4, 6, 8])
            .base_seed(8);
        assert!(other
            .cells()
            .iter()
            .zip(&a)
            .all(|(x, y)| x.cell_seed != y.cell_seed));
    }

    #[test]
    fn seed_placeholder_resolves() {
        let spec = ExperimentSpec::new("t")
            .topologies(["random:{n}:8:{seed}"])
            .sizes([12])
            .seeds([99]);
        assert_eq!(spec.cells()[0].topology, "random:12:8:99");
    }

    #[test]
    fn with_args_overrides_axes() {
        let argv: Vec<String> = ["--sizes", "3,5", "--seed", "9", "--rounds", "77"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let args = Args::parse(&argv);
        let spec = ExperimentSpec::new("t")
            .topologies(["ring:{n}"])
            .sizes([4])
            .with_args(&args)
            .unwrap();
        assert_eq!(spec.size_axis(), &[3, 5]);
        assert_eq!(spec.seed(), 9);
        assert_eq!(spec.seed_axis(), &[9]);
        assert_eq!(spec.round_budget(), 77);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].topology, "ring:3");
    }

    #[test]
    fn engine_axis_parses_and_rejects() {
        let spec = ExperimentSpec::new("t").topologies(["ring:{n}"]);
        assert_eq!(spec.engine_label(), "boxed");
        for engine in ["boxed", "flat", "both"] {
            let argv: Vec<String> = ["--engine", engine].iter().map(|s| s.to_string()).collect();
            let spec = ExperimentSpec::new("t")
                .topologies(["ring:{n}"])
                .with_args(&Args::parse(&argv))
                .unwrap();
            assert_eq!(spec.engine_label(), engine);
        }
        let argv: Vec<String> = ["--engine", "warp"].iter().map(|s| s.to_string()).collect();
        let err = ExperimentSpec::new("t")
            .topologies(["ring:{n}"])
            .with_args(&Args::parse(&argv));
        assert!(err.is_err());
    }

    #[test]
    fn plan_spec_builds_and_labels() {
        let p = PlanSpec::quiescent();
        assert_eq!(p.label(), "quiescent");
        assert!(p.build(5).is_quiescent());
        let p = PlanSpec::quiescent()
            .drop_links(0.3)
            .until(60)
            .crash(1, 10..30)
            .crash(2, 20..40);
        assert_eq!(p.label(), "p0.3+c2");
        let plan = p.build(5);
        assert_eq!(plan.seed(), 5);
        assert_eq!(plan.drop_rate(), 0.3);
        assert_eq!(plan.horizon(), Some(60));
        assert_eq!(plan.crashes().len(), 2);
        // A pinned seed wins over the cell seed.
        assert_eq!(p.with_seed(77).build(5).seed(), 77);
    }

    #[test]
    fn plan_spec_roundtrips_through_json() {
        let p = PlanSpec::quiescent()
            .drop_links(0.25)
            .duplicate(0.1)
            .until(50)
            .crash_stop(3, 12);
        let json = serde::to_json_string(&p);
        let back: PlanSpec = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, p);
    }

    #[test]
    fn churn_spec_builds_labels_and_parses_back() {
        let s = ChurnSpec::stable();
        assert_eq!(s.label(), "stable");
        assert!(s.build(5).is_quiescent());
        assert_eq!(ChurnSpec::parse("stable").unwrap(), s);

        let s = ChurnSpec::stable().leave(2, 10..40).depart(5, 20).reset();
        assert_eq!(s.label(), "c2:10:40,5:20:-+reset");
        assert_eq!(
            ChurnSpec::parse(&s.label()).unwrap(),
            s,
            "label round-trips"
        );
        let plan = s.build(9);
        assert_eq!(plan.seed(), 9);
        assert_eq!(plan.windows().len(), 2);
        assert_eq!(plan.reinject_policy(), ReinjectPolicy::Reset);
        assert_eq!(s.with_seed(77).build(9).seed(), 77, "pinned seed wins");

        let carry = ChurnSpec::stable().leave(0, 1..3);
        assert_eq!(carry.label(), "c0:1:3");
        assert_eq!(ChurnSpec::parse("c0:1:3").unwrap(), carry);

        assert!(ChurnSpec::parse("nonsense").is_err());
        assert!(ChurnSpec::parse("c1:2").is_err());
        assert!(ChurnSpec::parse("c1:x:3").is_err());
    }

    #[test]
    fn churn_spec_roundtrips_through_json() {
        let s = ChurnSpec::stable().leave(1, 5..9).depart(3, 30).reset();
        let json = serde::to_json_string(&s);
        let back: ChurnSpec = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, s);
    }
}
