//! Criterion bench: the flat SoA/CSR engine against the boxed executor
//! on the same graphs and rounds. Both paths compute bit-identical
//! Push-Sum states (the conformance flat oracle pins that), so the gap
//! is pure engine overhead: per-round message boxing and inbox
//! allocation on the boxed side vs a precomputed gather over reused
//! flat buffers on the flat side.
//!
//! The `flat_probe_overhead` group is the **NullProbe guard**: `run` vs
//! `run_probed::<NullProbe>` (must be indistinguishable — the probe
//! hooks compile away behind `FlatProbe::ENABLED`) vs a full
//! `CountingProbe` (the measured cost of real metrics; EXPERIMENTS.md
//! quotes this table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::generators;
use kya_runtime::{CountingProbe, Execution, FlatExecution, Isotropic, NullProbe, RunConfig};
use std::time::Duration;

const ROUNDS: u64 = 20;

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 101) as f64).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_engine_20_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [1_000usize, 10_000] {
        let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
        let states = PushSumState::averaging(&values_for(n));
        group.bench_with_input(BenchmarkId::new("boxed_t1", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Isotropic(PushSum), states.clone());
                exec.drive(
                    &kya_graph::StaticGraph::new(g.clone()),
                    RunConfig::rounds(ROUNDS),
                );
                exec.outputs()[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_t1", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                exec.run(ROUNDS, 1);
                exec.outputs()[0]
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_t4", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                exec.run(ROUNDS, 4);
                exec.outputs()[0]
            })
        });
    }
    group.finish();
}

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_probe_overhead");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let n = 10_000usize;
    let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
    let states = PushSumState::averaging(&values_for(n));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("bare", threads), &threads, |b, &t| {
            b.iter(|| {
                let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                exec.run(ROUNDS, t);
                exec.outputs()[0]
            })
        });
        group.bench_with_input(
            BenchmarkId::new("null_probe", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                    exec.run_probed(ROUNDS, t, &mut NullProbe);
                    exec.outputs()[0]
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("counting_probe", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
                    let mut probe = CountingProbe::new();
                    exec.run_probed(ROUNDS, t, &mut probe);
                    (exec.outputs()[0], probe.summary().messages_routed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_probe_overhead);
criterion_main!(benches);
