//! The Push-Sum family (§5.1–5.5).
//!
//! Push-Sum maintains a value mass `y` and a weight mass `z`, both
//! rescattered each round in equal shares over the sender's out-edges
//! (eqs. 6–7); the output is the ratio `x = y / z`. Column-stochasticity
//! of the rescattering conserves both totals, and a finite dynamic
//! diameter forces the ratios to consensus on the *quot-sum*
//! `Σ v / Σ w` (Theorem 5.2). With unit weights the quot-sum is the
//! average; with per-value unit masses it is the frequency vector
//! (Algorithm 1); with weights seeded only at `ℓ` known leaders it
//! recovers exact multiplicities (§5.5).
//!
//! Push-Sum requires **outdegree awareness** (the shares are `1/d⁻`),
//! uses no persistent memory beyond the masses, is not self-stabilizing,
//! but tolerates asynchronous starts (§5.3): run it under
//! [`kya_runtime::adversary::AsyncStarts`] and it still converges.
//!
//! Two arithmetic backends are provided: `f64` (fast; what any practical
//! deployment would use) and exact [`BigRational`] (the simulator's
//! referee: mass conservation holds *exactly*, which the property tests
//! exploit).

use kya_arith::{BigInt, BigRational};
use kya_runtime::faults::FaultAwareIsotropic;
use kya_runtime::{FlatAlgorithm, IsotropicAlgorithm};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Scalar Push-Sum, f64 backend
// ---------------------------------------------------------------------

/// Scalar Push-Sum over `f64` (Theorem 5.2): output converges to
/// `Σ v_i / Σ w_i`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushSum;

/// State of scalar Push-Sum: the two masses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PushSumState {
    /// Value mass `y`.
    pub y: f64,
    /// Weight mass `z` (positive).
    pub z: f64,
}

impl PushSumState {
    /// Initial state from input value `v` and weight `w > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `w <= 0` (the paper requires `w_i ∈ ℝ_{>0}`).
    pub fn new(v: f64, w: f64) -> PushSumState {
        assert!(w > 0.0, "push-sum weights must be positive");
        PushSumState { y: v, z: w }
    }

    /// Unit-weight initial states (computes the average of `values`).
    pub fn averaging(values: &[f64]) -> Vec<PushSumState> {
        values.iter().map(|&v| PushSumState::new(v, 1.0)).collect()
    }

    /// Struct-of-arrays columns (`[y-lane, z-lane]`) for the flat
    /// executor ([`kya_runtime::FlatExecution`]) from boxed states.
    pub fn columns(states: &[PushSumState]) -> Vec<Vec<f64>> {
        vec![
            states.iter().map(|s| s.y).collect(),
            states.iter().map(|s| s.z).collect(),
        ]
    }
}

impl IsotropicAlgorithm for PushSum {
    type State = PushSumState;
    type Msg = (f64, f64);
    type Output = f64;

    fn message(&self, state: &PushSumState, outdegree: usize) -> (f64, f64) {
        let d = outdegree as f64;
        (state.y / d, state.z / d)
    }

    fn transition(&self, _state: &PushSumState, inbox: &[(f64, f64)]) -> PushSumState {
        let mut y = 0.0;
        let mut z = 0.0;
        for &(ys, zs) in inbox {
            y += ys;
            z += zs;
        }
        PushSumState { y, z }
    }

    /// The mass quotient `y / z`, deliberately unguarded: on lopsided
    /// topologies (e.g. a directed in-star, where a leaf halves its
    /// masses every round) `z` underflows to exactly `0.0` after ~1075
    /// rounds and the output goes inf/NaN. The runtime surfaces this as
    /// [`CellReport::diverged_at`](kya_runtime::CellReport) rather than
    /// the algorithm masking it — a non-finite output *is* the signal
    /// that f64 left the regime where Theorem 5.2's analysis applies
    /// (the exact backend [`PushSumExact`] has no such failure mode).
    fn output(&self, state: &PushSumState) -> f64 {
        state.y / state.z
    }
}

/// The flat (struct-of-arrays) twin of the boxed [`IsotropicAlgorithm`]
/// impl: lanes `[y, z]` for both state and message, with every
/// floating-point operation performed in the same order — the `flat`
/// conformance oracle and `tests/flat_equivalence.rs` hold the two
/// bitwise identical.
impl FlatAlgorithm for PushSum {
    const STATE_LANES: usize = 2;
    const MSG_LANES: usize = 2;

    fn message(&self, state: &[f64], outdegree: usize, msg: &mut [f64]) {
        let d = outdegree as f64;
        msg[0] = state[0] / d;
        msg[1] = state[1] / d;
    }

    fn transition(&self, _state: &[f64], inbox: &[f64], next: &mut [f64]) {
        let mut y = 0.0;
        let mut z = 0.0;
        for m in inbox.chunks_exact(2) {
            y += m[0];
            z += m[1];
        }
        next[0] = y;
        next[1] = z;
    }

    fn output(&self, state: &[f64]) -> f64 {
        state[0] / state[1]
    }
}

// ---------------------------------------------------------------------
// Self-healing Push-Sum (F6)
// ---------------------------------------------------------------------

/// Push-Sum with a link-layer bounce handler: the same dynamics as
/// [`PushSum`], plus
/// [`FaultAwareIsotropic::reabsorb`](kya_runtime::faults::FaultAwareIsotropic)
/// folding undelivered shares back into the sender's masses.
///
/// Why this matters: Push-Sum conserves `Σ y` and `Σ z` because the
/// rescattering matrix is column-stochastic — every share the sender
/// splits off lands *somewhere*. Under message loss
/// ([`kya_runtime::faults::FaultyExecution`]) a dropped share lands
/// nowhere and the invariant breaks permanently: plain Push-Sum then
/// converges to the quot-sum of whatever mass survived, which is wrong
/// (the [`kya_runtime::faults::Lossy`] negative control exhibits this).
/// Re-absorbing the bounced share restores column-stochasticity of the
/// *effective* rescattering — the lost fraction simply stays with the
/// sender for one round — so both totals are conserved through arbitrary
/// drop/crash faults and convergence to the true quot-sum resumes as
/// soon as the network is connected often enough again.
///
/// ```
/// use kya_algos::push_sum::{total_mass, PushSumState, SelfHealingPushSum};
/// use kya_graph::{generators, StaticGraph};
/// use kya_runtime::faults::{FaultPlan, FaultyExecution};
/// use kya_runtime::{Isotropic, RunConfig};
///
/// let net = StaticGraph::new(generators::directed_ring(4));
/// let plan = FaultPlan::new(9).drop_links(0.3).until(30);
/// let mut exec = FaultyExecution::new(
///     Isotropic(SelfHealingPushSum),
///     PushSumState::averaging(&[0.0, 4.0, 0.0, 0.0]),
///     plan,
/// );
/// exec.drive(&net, RunConfig::rounds(300));
/// let (y, z) = total_mass(exec.states());
/// assert!((y - 4.0).abs() < 1e-9 && (z - 4.0).abs() < 1e-9);
/// assert!(exec.outputs().iter().all(|x| (x - 1.0).abs() < 1e-9));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SelfHealingPushSum;

impl IsotropicAlgorithm for SelfHealingPushSum {
    type State = PushSumState;
    type Msg = (f64, f64);
    type Output = f64;

    fn message(&self, state: &PushSumState, outdegree: usize) -> (f64, f64) {
        IsotropicAlgorithm::message(&PushSum, state, outdegree)
    }

    fn transition(&self, state: &PushSumState, inbox: &[(f64, f64)]) -> PushSumState {
        IsotropicAlgorithm::transition(&PushSum, state, inbox)
    }

    fn output(&self, state: &PushSumState) -> f64 {
        IsotropicAlgorithm::output(&PushSum, state)
    }
}

impl FaultAwareIsotropic for SelfHealingPushSum {
    fn reabsorb(&self, state: &PushSumState, lost: &[(f64, f64)]) -> PushSumState {
        let mut next = *state;
        for &(ys, zs) in lost {
            next.y += ys;
            next.z += zs;
        }
        next
    }
}

/// Total `(Σ y, Σ z)` mass of a population of Push-Sum states — the
/// conserved quantity of Theorem 5.2, and the invariant the F6
/// experiments monitor under faults.
pub fn total_mass(states: &[PushSumState]) -> (f64, f64) {
    states
        .iter()
        .fold((0.0, 0.0), |(y, z), s| (y + s.y, z + s.z))
}

// ---------------------------------------------------------------------
// Scalar Push-Sum, exact backend
// ---------------------------------------------------------------------

/// Scalar Push-Sum over exact rationals: identical dynamics, exact mass
/// conservation. Used as the referee in property tests and in the
/// lifting-lemma demonstrations (floating point would break exact state
/// equality between a base execution and its lift).
#[derive(Clone, Copy, Debug, Default)]
pub struct PushSumExact;

/// State of exact Push-Sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PushSumExactState {
    /// Value mass.
    pub y: BigRational,
    /// Weight mass (positive).
    pub z: BigRational,
}

impl PushSumExactState {
    /// Initial state from value `v` and weight `w > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not positive.
    pub fn new(v: BigRational, w: BigRational) -> PushSumExactState {
        assert!(w.is_positive(), "push-sum weights must be positive");
        PushSumExactState { y: v, z: w }
    }

    /// Unit-weight initial states from integer values.
    pub fn averaging(values: &[i64]) -> Vec<PushSumExactState> {
        values
            .iter()
            .map(|&v| PushSumExactState::new(BigRational::from_integer(v), BigRational::one()))
            .collect()
    }
}

impl IsotropicAlgorithm for PushSumExact {
    type State = PushSumExactState;
    type Msg = (BigRational, BigRational);
    type Output = BigRational;

    fn message(&self, state: &PushSumExactState, outdegree: usize) -> Self::Msg {
        let d = outdegree as u64;
        (state.y.div_integer(d), state.z.div_integer(d))
    }

    fn transition(&self, _state: &PushSumExactState, inbox: &[Self::Msg]) -> PushSumExactState {
        let y = inbox.iter().map(|(ys, _)| ys).sum();
        let z = inbox.iter().map(|(_, zs)| zs).sum();
        PushSumExactState { y, z }
    }

    fn output(&self, state: &PushSumExactState) -> BigRational {
        &state.y / &state.z
    }
}

// ---------------------------------------------------------------------
// Frequency Push-Sum (Algorithm 1) with optional leaders and rounding
// ---------------------------------------------------------------------

/// Push-Sum for the frequency function (the paper's Algorithm 1), with
/// the §5.5 leader variant folded in.
///
/// Each agent runs one Push-Sum instance per *value* it has heard of. On
/// first hearing of a value `ω`, an agent joins that instance with
/// `y[ω] = 0` and `z[ω] = 1` — except in leader mode, where non-leaders
/// join with `z[ω] = 0` and only the `ℓ` leaders carry weight, so
/// `ℓ · x[ω]` converges to the exact multiplicity of `ω`.
#[derive(Clone, Copy, Debug)]
pub struct PushSumFrequency {
    /// `None`: frequency mode (every agent weighs 1). `Some(ell)`:
    /// leader mode with `ell` leaders known to everyone.
    pub leaders: Option<usize>,
}

impl PushSumFrequency {
    /// Standard frequency mode (Algorithm 1).
    pub fn frequency() -> PushSumFrequency {
        PushSumFrequency { leaders: None }
    }

    /// Leader mode with `ell >= 1` known leaders (§5.5).
    ///
    /// # Panics
    ///
    /// Panics if `ell == 0`.
    pub fn with_leaders(ell: usize) -> PushSumFrequency {
        assert!(ell >= 1, "leader mode needs at least one leader");
        PushSumFrequency { leaders: Some(ell) }
    }
}

/// Per-value mass pair.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mass {
    /// Value mass for this input value.
    pub y: f64,
    /// Weight mass for this input value.
    pub z: f64,
}

/// State of [`PushSumFrequency`]: masses per known value.
#[derive(Clone, Debug, PartialEq)]
pub struct FrequencyState {
    /// Whether this agent is a leader (meaningful in leader mode only).
    pub is_leader: bool,
    /// Per-value masses; keys are the values heard of so far.
    pub masses: BTreeMap<u64, Mass>,
}

impl FrequencyState {
    /// Initial state for an agent with input `value`.
    ///
    /// In frequency mode pass `is_leader = false` for everyone. In leader
    /// mode the weight mass starts at 1 for leaders and 0 otherwise
    /// (§5.5: "its variables `z_i[ω]` are initially set to zero instead of
    /// one" for non-leaders).
    pub fn new(value: u64, is_leader: bool, leader_mode: bool) -> FrequencyState {
        let z0 = if leader_mode && !is_leader { 0.0 } else { 1.0 };
        let mut masses = BTreeMap::new();
        masses.insert(value, Mass { y: 1.0, z: z0 });
        FrequencyState { is_leader, masses }
    }

    /// Initial states for plain frequency mode.
    pub fn initial(values: &[u64]) -> Vec<FrequencyState> {
        values
            .iter()
            .map(|&v| FrequencyState::new(v, false, false))
            .collect()
    }

    /// Initial states for leader mode: `leaders[i]` flags agent `i`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn initial_with_leaders(values: &[u64], leaders: &[bool]) -> Vec<FrequencyState> {
        assert_eq!(values.len(), leaders.len(), "one leader flag per agent");
        values
            .iter()
            .zip(leaders)
            .map(|(&v, &l)| FrequencyState::new(v, l, true))
            .collect()
    }

    fn join_mass(&self, leader_mode: bool) -> f64 {
        if leader_mode && !self.is_leader {
            0.0
        } else {
            1.0
        }
    }
}

/// The frequency estimate vector: per value, the current `x[ω] = y/z`
/// (`f64::INFINITY` while `z[ω] = 0`, which the paper notes happens only
/// finitely often in leader mode).
pub type FrequencyEstimate = BTreeMap<u64, f64>;

impl IsotropicAlgorithm for PushSumFrequency {
    type State = FrequencyState;
    type Msg = BTreeMap<u64, Mass>;
    type Output = FrequencyEstimate;

    fn message(&self, state: &FrequencyState, outdegree: usize) -> Self::Msg {
        let d = outdegree as f64;
        state
            .masses
            .iter()
            .map(|(&v, m)| {
                (
                    v,
                    Mass {
                        y: m.y / d,
                        z: m.z / d,
                    },
                )
            })
            .collect()
    }

    fn transition(&self, state: &FrequencyState, inbox: &[Self::Msg]) -> FrequencyState {
        let leader_mode = self.leaders.is_some();
        // Values heard of before this round: they participate in the sums.
        // Newly discovered values: the agent joins that instance *now*
        // (Algorithm 1, lines 9-12): its own contribution for the value is
        // (y, z) = (0, join), added on top of the received shares.
        let mut next: BTreeMap<u64, Mass> = BTreeMap::new();
        for msg in inbox {
            for (&v, share) in msg {
                let e = next.entry(v).or_insert(Mass { y: 0.0, z: 0.0 });
                e.y += share.y;
                e.z += share.z;
            }
        }
        // Join newly heard instances with the appropriate weight.
        for (v, mass) in next.iter_mut() {
            if !state.masses.contains_key(v) {
                mass.z += state.join_mass(leader_mode);
            }
        }
        FrequencyState {
            is_leader: state.is_leader,
            masses: next,
        }
    }

    fn output(&self, state: &FrequencyState) -> FrequencyEstimate {
        state
            .masses
            .iter()
            .map(|(&v, m)| {
                let x = if m.z > 0.0 { m.y / m.z } else { f64::INFINITY };
                let x = match self.leaders {
                    Some(ell) => x * ell as f64,
                    None => x,
                };
                (v, x)
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Exact frequency Push-Sum
// ---------------------------------------------------------------------

/// Algorithm 1 over **exact rationals**: per-value masses in ℚ, so the
/// per-value mass invariants (`Σ_i y_i[ω] = multiplicity(ω)` and, once
/// everyone has joined, `Σ_i z_i[ω] = n`) hold *exactly* at every round.
/// The referee implementation for the `f64` variant and the engine of
/// exactness tests; denominators grow with the round number, so prefer
/// the `f64` variant for long runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct PushSumFrequencyExact;

/// Per-value exact mass pair.
pub type ExactMass = (BigRational, BigRational);

/// State of [`PushSumFrequencyExact`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactFrequencyState {
    /// Per-value `(y, z)` masses.
    pub masses: BTreeMap<u64, ExactMass>,
}

impl ExactFrequencyState {
    /// Initial states: each agent starts the instance of its own value
    /// with `(y, z) = (1, 1)`.
    pub fn initial(values: &[u64]) -> Vec<ExactFrequencyState> {
        values
            .iter()
            .map(|&v| {
                let mut masses = BTreeMap::new();
                masses.insert(v, (BigRational::one(), BigRational::one()));
                ExactFrequencyState { masses }
            })
            .collect()
    }
}

impl IsotropicAlgorithm for PushSumFrequencyExact {
    type State = ExactFrequencyState;
    type Msg = BTreeMap<u64, ExactMass>;
    type Output = BTreeMap<u64, BigRational>;

    fn message(&self, state: &ExactFrequencyState, outdegree: usize) -> Self::Msg {
        let d = outdegree as u64;
        state
            .masses
            .iter()
            .map(|(&v, (y, z))| (v, (y.div_integer(d), z.div_integer(d))))
            .collect()
    }

    fn transition(&self, state: &ExactFrequencyState, inbox: &[Self::Msg]) -> ExactFrequencyState {
        let mut next: BTreeMap<u64, ExactMass> = BTreeMap::new();
        for msg in inbox {
            for (&v, (ys, zs)) in msg {
                let e = next
                    .entry(v)
                    .or_insert_with(|| (BigRational::zero(), BigRational::zero()));
                e.0 = &e.0 + ys;
                e.1 = &e.1 + zs;
            }
        }
        for (v, mass) in next.iter_mut() {
            if !state.masses.contains_key(v) {
                mass.1 = &mass.1 + &BigRational::one();
            }
        }
        ExactFrequencyState { masses: next }
    }

    fn output(&self, state: &ExactFrequencyState) -> Self::Output {
        state
            .masses
            .iter()
            .filter(|(_, (_, z))| z.is_positive())
            .map(|(&v, (y, z))| (v, y / z))
            .collect()
    }
}

/// Round a raw frequency estimate to the grid `ℚ_N` (§5.4): each
/// estimate is snapped to the nearest rational with denominator at most
/// `bound`. With `bound >= n`, the snapped values are *exactly* the input
/// frequencies once the estimates are within `1/(2 bound²)` — turning
/// asymptotic convergence into finite-time exact computation
/// (Corollary 5.3).
///
/// Non-finite estimates (leader mode before weight arrives) round to 0,
/// and snapped values are clamped to `[0, 1]`: a frequency estimate that
/// drifted slightly outside the unit interval (f64 cancellation can
/// produce `-1e-12`, or `1 + 1e-12` for a value everyone holds) must not
/// escape the frequency grid `ℚ_N ⊂ [0, 1]` as a negative or
/// greater-than-one "frequency".
pub fn round_to_grid(estimate: &FrequencyEstimate, bound: usize) -> BTreeMap<u64, BigRational> {
    let n = BigInt::from(bound.max(1));
    let one = BigRational::one();
    estimate
        .iter()
        .map(|(&v, &x)| {
            let snapped = BigRational::from_f64(x)
                .map(|r| r.best_approximation(&n))
                .unwrap_or_else(BigRational::zero);
            let snapped = if snapped.is_negative() {
                BigRational::zero()
            } else if snapped > one {
                one.clone()
            } else {
                snapped
            };
            (v, snapped)
        })
        .collect()
}

/// Normalize a raw estimate into a frequency function (the `x̄` of §5.4:
/// divide by the sum so entries sum to one), for use when *no* bound on
/// the network size is known and only continuous-in-frequency functions
/// are computable (Corollary 5.5).
///
/// Returns an empty map if the estimate sums to zero or is not finite.
pub fn normalize_estimate(estimate: &FrequencyEstimate) -> BTreeMap<u64, f64> {
    let total: f64 = estimate.values().sum();
    if !total.is_finite() || total <= 0.0 {
        return BTreeMap::new();
    }
    estimate.iter().map(|(&v, &x)| (v, x / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::{generators, DynamicGraph, RandomDynamicGraph, StaticGraph};
    use kya_runtime::adversary::AsyncStarts;
    use kya_runtime::faults::{FaultPlan, FaultyExecution, Lossy};
    use kya_runtime::RunConfig;
    use kya_runtime::{Execution, Isotropic};

    #[test]
    fn averaging_on_static_ring() {
        let values = [1.0, 2.0, 3.0, 4.0, 10.0];
        let net = StaticGraph::new(generators::directed_ring(5));
        let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        exec.drive(&net, RunConfig::rounds(400));
        let avg = values.iter().sum::<f64>() / 5.0;
        for x in exec.outputs() {
            assert!((x - avg).abs() < 1e-9, "{x} != {avg}");
        }
    }

    #[test]
    fn in_star_underflow_surfaces_divergence_not_convergence() {
        use kya_graph::Digraph;
        use kya_runtime::metric::EuclideanMetric;
        // Directed in-star: every leaf sends to the center (plus the
        // mandatory self-loops). A leaf's outdegree is 2, so it halves
        // (y, z) every round; z underflows to exactly 0.0 near round
        // 1075 and the output goes inf/NaN. The center meanwhile holds
        // essentially all the mass and sits on the correct average, so
        // a NaN-dropping max_distance would let the dead leaves vanish
        // from the maximum and falsely report convergence (~round 1080).
        let n = 8;
        let mut g = Digraph::new(n);
        for leaf in 1..n {
            g.add_edge(leaf, 0);
        }
        let net = StaticGraph::new(g.with_self_loops());
        let values: Vec<f64> = (0..n).map(|v| v as f64).collect();
        let target = values.iter().sum::<f64>() / n as f64;
        let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        let report = exec.drive(
            &net,
            RunConfig::rounds(1400).measure(&EuclideanMetric, &target, 1e-9),
        );
        assert!(
            report.diverged_at.is_some(),
            "leaf z underflow must surface as divergence: {report}"
        );
        assert!(!report.converged(), "a diverged run never converges");
        assert!(
            report.rounds_run < 1400,
            "divergence ends the run early, got {} rounds",
            report.rounds_run
        );
    }

    #[test]
    fn quot_sum_with_weights() {
        // quot-sum = (1*2 + 3*4) / (2 + 4) — wait, quot-sum is
        // sum(v)/sum(w): (1 + 3) / (2 + 4) = 2/3.
        let net = StaticGraph::new(generators::complete(4));
        let inits = vec![
            PushSumState::new(1.0, 2.0),
            PushSumState::new(3.0, 4.0),
            PushSumState::new(0.0, 1.0),
            PushSumState::new(0.0, 1.0),
        ];
        let mut exec = Execution::new(Isotropic(PushSum), inits);
        exec.drive(&net, RunConfig::rounds(200));
        let target = 4.0 / 8.0;
        for x in exec.outputs() {
            assert!((x - target).abs() < 1e-10);
        }
    }

    #[test]
    fn exact_push_sum_conserves_mass() {
        let net = StaticGraph::new(generators::random_strongly_connected(6, 5, 2));
        let inits = PushSumExactState::averaging(&[3, 1, 4, 1, 5, 9]);
        let total_y: BigRational = inits.iter().map(|s| &s.y).sum();
        let total_z: BigRational = inits.iter().map(|s| &s.z).sum();
        let mut exec = Execution::new(Isotropic(PushSumExact), inits);
        exec.drive(&net, RunConfig::rounds(25));
        let y_now: BigRational = exec.states().iter().map(|s| &s.y).sum();
        let z_now: BigRational = exec.states().iter().map(|s| &s.z).sum();
        assert_eq!(y_now, total_y, "y mass is conserved exactly");
        assert_eq!(z_now, total_z, "z mass is conserved exactly");
    }

    #[test]
    fn averaging_on_dynamic_graphs() {
        let net = RandomDynamicGraph::directed(8, 6, 77);
        let values: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        exec.drive(&net, RunConfig::rounds(600));
        let avg = 3.5;
        for x in exec.outputs() {
            assert!((x - avg).abs() < 1e-8, "{x}");
        }
    }

    #[test]
    fn tolerates_asynchronous_starts() {
        let inner = StaticGraph::new(generators::bidirectional_ring(6));
        let net = AsyncStarts::new(inner, vec![1, 4, 2, 7, 3, 1]);
        let values = [6.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        exec.drive(&net, RunConfig::rounds(800));
        for x in exec.outputs() {
            assert!((x - 1.0).abs() < 1e-8, "{x}");
        }
    }

    #[test]
    fn self_healing_conserves_mass_under_drops() {
        // 30% of non-self-loop messages are lost in flight for 60
        // rounds. Self-healing Push-Sum reabsorbs every bounced share,
        // so (Σy, Σz) is invariant at every single round, and after the
        // faults cease the outputs converge to the true average.
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let n = values.len();
        let net = StaticGraph::new(generators::bidirectional_ring(n));
        let plan = FaultPlan::new(42).drop_links(0.3).until(60);
        let mut exec = FaultyExecution::new(
            Isotropic(SelfHealingPushSum),
            PushSumState::averaging(&values),
            plan,
        );
        let y0: f64 = values.iter().sum();
        for _ in 0..500u64 {
            let g = net.graph(exec.round() + 1);
            exec.step(&g);
            let (y, z) = total_mass(exec.states());
            assert!(
                (y - y0).abs() < 1e-9 && (z - n as f64).abs() < 1e-9,
                "round {}: mass ({y}, {z}) drifted from ({y0}, {n})",
                exec.round()
            );
        }
        assert!(exec.events().dropped > 0, "the plan did inject drops");
        let avg = y0 / n as f64;
        for x in exec.outputs() {
            assert!((x - avg).abs() < 1e-9, "{x} != {avg}");
        }
    }

    #[test]
    fn self_healing_survives_crash_recover() {
        // An agent is down for 20 rounds: its mass is frozen on board
        // and every share addressed to it bounces. Total mass never
        // moves, and convergence completes after it comes back.
        let values = [10.0, 0.0, 0.0, 0.0, 0.0];
        let net = StaticGraph::new(generators::complete(5));
        let plan = FaultPlan::new(7).crash(0, 5..25);
        let mut exec = FaultyExecution::new(
            Isotropic(SelfHealingPushSum),
            PushSumState::averaging(&values),
            plan,
        );
        for _ in 0..400u64 {
            let g = net.graph(exec.round() + 1);
            exec.step(&g);
            let (y, z) = total_mass(exec.states());
            assert!((y - 10.0).abs() < 1e-9 && (z - 5.0).abs() < 1e-9);
        }
        assert!(exec.events().bounced_to_crashed > 0);
        for x in exec.outputs() {
            assert!((x - 2.0).abs() < 1e-9, "{x}");
        }
    }

    #[test]
    fn plain_push_sum_leaks_mass_under_drops() {
        // Negative control: identical fault pattern, but the bounced
        // shares are discarded (Lossy). The conserved quantity decays
        // and never comes back: the deficit persists long after the
        // faults cease.
        let values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0];
        let n = values.len();
        let net = StaticGraph::new(generators::bidirectional_ring(n));
        let plan = FaultPlan::new(42).drop_links(0.3).until(60);
        let mut exec = FaultyExecution::new(
            Lossy(Isotropic(PushSum)),
            PushSumState::averaging(&values),
            plan,
        );
        exec.drive(&net, RunConfig::rounds(500));
        let (_, z) = total_mass(exec.states());
        let deficit = n as f64 - z;
        assert!(
            deficit > 0.5,
            "losing 30% of messages for 60 rounds must leave a visible
             weight deficit, got {deficit:.3}"
        );
    }

    #[test]
    fn frequency_estimates_converge() {
        // Values: three 1s and one 9 → frequencies 3/4 and 1/4.
        let values = [1u64, 1, 1, 9];
        let net = StaticGraph::new(generators::complete(4));
        let mut exec = Execution::new(
            Isotropic(PushSumFrequency::frequency()),
            FrequencyState::initial(&values),
        );
        exec.drive(&net, RunConfig::rounds(300));
        for est in exec.outputs() {
            assert!((est[&1] - 0.75).abs() < 1e-9);
            assert!((est[&9] - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn rounding_clamps_to_unit_interval() {
        // An estimate pushed slightly outside [0, 1] by f64 cancellation
        // must snap back onto the frequency grid, never to a negative or
        // greater-than-one rational.
        let mut est = FrequencyEstimate::new();
        est.insert(1, -1e-12); // tiny negative: snaps to 0, not -p/q
        est.insert(2, -0.05); // would snap to -1/12 on N = 12 unclamped
        est.insert(3, 1.0 + 1e-12); // tiny overshoot above 1
        est.insert(4, 1.06); // would snap to 13/12 on N = 12 unclamped
        est.insert(5, f64::INFINITY); // non-finite -> 0 (documented rule)
        est.insert(6, f64::NAN);
        let grid = round_to_grid(&est, 12);
        assert_eq!(grid[&1], BigRational::zero());
        assert_eq!(grid[&2], BigRational::zero());
        assert_eq!(grid[&3], BigRational::one());
        assert_eq!(grid[&4], BigRational::one());
        assert_eq!(grid[&5], BigRational::zero());
        assert_eq!(grid[&6], BigRational::zero());
        // In-range estimates are untouched by the clamp.
        let mut ok = FrequencyEstimate::new();
        ok.insert(7, 0.3333333333);
        assert_eq!(round_to_grid(&ok, 3)[&7], BigRational::from_i64(1, 3));
    }

    #[test]
    fn rounding_gives_exact_frequencies() {
        let values = [5u64, 5, 7];
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(
            Isotropic(PushSumFrequency::frequency()),
            FrequencyState::initial(&values),
        );
        exec.drive(&net, RunConfig::rounds(150));
        // Bound N = 4 >= n = 3.
        for est in exec.outputs() {
            let grid = round_to_grid(&est, 4);
            assert_eq!(grid[&5], BigRational::from_i64(2, 3));
            assert_eq!(grid[&7], BigRational::from_i64(1, 3));
        }
    }

    #[test]
    fn leader_mode_recovers_multiplicities() {
        // 5 agents, one leader; values: two 3s, three 8s.
        let values = [3u64, 8, 3, 8, 8];
        let leaders = [true, false, false, false, false];
        let net = StaticGraph::new(generators::complete(5));
        let mut exec = Execution::new(
            Isotropic(PushSumFrequency::with_leaders(1)),
            FrequencyState::initial_with_leaders(&values, &leaders),
        );
        exec.drive(&net, RunConfig::rounds(400));
        for est in exec.outputs() {
            assert!((est[&3] - 2.0).abs() < 1e-8, "mult of 3: {}", est[&3]);
            assert!((est[&8] - 3.0).abs() < 1e-8, "mult of 8: {}", est[&8]);
        }
    }

    #[test]
    fn normalized_estimates_sum_to_one() {
        let values = [2u64, 2, 4, 6];
        let net = StaticGraph::new(generators::directed_torus(2, 2));
        let mut exec = Execution::new(
            Isotropic(PushSumFrequency::frequency()),
            FrequencyState::initial(&values),
        );
        exec.drive(&net, RunConfig::rounds(120));
        for est in exec.outputs() {
            let norm = normalize_estimate(&est);
            let total: f64 = norm.values().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!((norm[&2] - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_weight_rejected() {
        let _ = PushSumState::new(1.0, 0.0);
    }

    #[test]
    fn exact_frequency_masses_are_invariant() {
        // Per-value y mass equals the multiplicity at every round, and z
        // mass reaches exactly n once everyone has joined the instance.
        let values = [4u64, 9, 4, 4];
        let n = values.len();
        let net = StaticGraph::new(generators::directed_ring(n));
        let mut exec = Execution::new(
            Isotropic(PushSumFrequencyExact),
            ExactFrequencyState::initial(&values),
        );
        for round in 1..=12u64 {
            let g = net.graph(round);
            exec.step(&g);
            for omega in [4u64, 9] {
                let y_total: BigRational = exec
                    .states()
                    .iter()
                    .filter_map(|s| s.masses.get(&omega).map(|(y, _)| y))
                    .sum();
                let mult = values.iter().filter(|&&v| v == omega).count() as i64;
                assert_eq!(
                    y_total,
                    BigRational::from_integer(mult),
                    "round {round} value {omega}"
                );
            }
            if round >= n as u64 {
                // Everyone joined: z mass is exactly n per value.
                for omega in [4u64, 9] {
                    let z_total: BigRational = exec
                        .states()
                        .iter()
                        .filter_map(|s| s.masses.get(&omega).map(|(_, z)| z))
                        .sum();
                    assert_eq!(z_total, BigRational::from_integer(n as i64));
                }
            }
        }
    }

    #[test]
    fn exact_and_f64_frequency_agree() {
        let values = [1u64, 1, 7];
        let net = StaticGraph::new(generators::complete(3));
        let mut exact = Execution::new(
            Isotropic(PushSumFrequencyExact),
            ExactFrequencyState::initial(&values),
        );
        let mut float = Execution::new(
            Isotropic(PushSumFrequency::frequency()),
            FrequencyState::initial(&values),
        );
        exact.drive(&net, RunConfig::rounds(20));
        float.drive(&net, RunConfig::rounds(20));
        let e = exact.outputs()[0].clone();
        let f = float.outputs()[0].clone();
        for (v, x) in &f {
            let ex = e[v].to_f64();
            assert!((ex - x).abs() < 1e-9, "value {v}: {ex} vs {x}");
        }
    }

    #[test]
    fn convergence_rate_tracks_theorem_bound() {
        // Theorem 5.2: within eps after O(n^2 D log(1/eps)) rounds. We
        // check the much weaker empirical claim that halving eps adds at
        // most ~linearly many rounds (geometric convergence).
        let n = 6;
        let net = StaticGraph::new(generators::directed_ring(n));
        let values: Vec<f64> = (0..n).map(|i| (i * i) as f64).collect();
        let avg = values.iter().sum::<f64>() / n as f64;
        let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        let mut rounds_to = Vec::new();
        let mut eps = 1e-2;
        for _ in 0..4 {
            while exec.outputs().iter().any(|x| (x - avg).abs() > eps) {
                let g = net.graph(exec.round() + 1);
                exec.step(&g);
                assert!(exec.round() < 10_000, "no convergence");
            }
            rounds_to.push(exec.round());
            eps /= 100.0;
        }
        // Each 100x tightening costs a bounded number of extra rounds.
        let increments: Vec<u64> = rounds_to.windows(2).map(|w| w[1] - w[0]).collect();
        for w in increments.windows(2) {
            assert!(w[1] <= w[0] + 50, "super-geometric slowdown: {rounds_to:?}");
        }
    }
}
