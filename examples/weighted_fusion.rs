//! Confidence-weighted sensor fusion via the quot-sum (Theorem 5.2).
//!
//! Run with `cargo run --example weighted_fusion`.
//!
//! The quot-sum `Σ v_i / Σ w_i` is more than the plain average: seeding
//! `(v_i, w_i) = (w_i * reading_i, w_i)` makes Push-Sum converge to the
//! **confidence-weighted mean** of the readings — the standard fusion
//! rule for sensors with heterogeneous noise — on any dynamic network
//! with finite dynamic diameter, with outdegree awareness only.

use know_your_audience::algos::push_sum::{PushSum, PushSumState};
use know_your_audience::graph::DynamicGraph;
use know_your_audience::graph::RandomDynamicGraph;
use know_your_audience::runtime::metric::{ConvergenceTrace, EuclideanMetric};
use know_your_audience::runtime::{Execution, Isotropic};

fn main() {
    // Readings of the same quantity with per-sensor confidence
    // (inverse variance). High-confidence sensors cluster near 20.0;
    // the two noisy outliers barely matter.
    let readings = [20.1, 19.9, 20.2, 35.0, 19.8, 5.0];
    let confidence = [10.0, 12.0, 9.0, 0.5, 11.0, 0.5];
    let n = readings.len();

    let weighted_sum: f64 = readings.iter().zip(&confidence).map(|(r, w)| r * w).sum();
    let weight_total: f64 = confidence.iter().sum();
    let target = weighted_sum / weight_total;
    let plain = readings.iter().sum::<f64>() / n as f64;
    println!("plain average     = {plain:.4} (dragged by outliers)");
    println!("weighted fusion   = {target:.4} (the quot-sum target)\n");

    let inits: Vec<PushSumState> = readings
        .iter()
        .zip(&confidence)
        .map(|(&r, &w)| PushSumState::new(r * w, w))
        .collect();

    let net = RandomDynamicGraph::directed(n, 3, 6021);
    let mut exec = Execution::new(Isotropic(PushSum), inits);
    let metric = EuclideanMetric;
    let mut trace = ConvergenceTrace::new();
    for _ in 0..400 {
        let g = net.graph(exec.round() + 1);
        exec.step(&g);
        trace.record(&metric, &exec.outputs(), &target);
    }
    for checkpoint in [10usize, 50, 100, 400] {
        println!(
            "round {checkpoint:4}: worst error {:.2e}",
            trace.distances()[checkpoint - 1]
        );
    }
    let final_err = *trace.distances().last().expect("recorded");
    assert!(final_err < 1e-9, "fusion converged: {final_err}");
    println!("\nevery agent holds the confidence-weighted mean — quot-sum fusion OK");
}
