//! Exact rational numbers and best rational approximation.
//!
//! [`BigRational`] backs the exact fibre-frequency computations of §4 and
//! the ℚ_N rounding step of §5.4 of the paper: an agent that knows an upper
//! bound `N` on the network size snaps its asymptotic Push-Sum estimate to
//! the nearest rational with denominator at most `N`, turning approximate
//! convergence into exact stabilization.

use crate::{gcd, BigInt};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

// ---------------------------------------------------------------------
// small-value (i128) fast path
// ---------------------------------------------------------------------

/// Binary gcd on `u128` (both operands may be zero).
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let k = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << k;
        }
    }
}

/// Both operands as `(num, den)` machine words, when all four parts fit
/// `i64`. With single-limb inputs every product below stays within
/// `i128` (|n|, d < 2^63 ⇒ |n₁d₂ ± n₂d₁| < 2^127, d₁d₂ < 2^126), so the
/// fast paths need no overflow checks.
#[inline]
fn small_parts(x: &BigRational, y: &BigRational) -> Option<(i128, i128, i128, i128)> {
    Some((
        x.num.to_i64()? as i128,
        x.den.to_i64()? as i128,
        y.num.to_i64()? as i128,
        y.den.to_i64()? as i128,
    ))
}

/// Normalize a small `num / den` (`den > 0`) into a reduced rational.
#[inline]
fn from_small(num: i128, den: i128) -> BigRational {
    debug_assert!(den > 0);
    if num == 0 {
        return BigRational::zero();
    }
    let g = gcd_u128(num.unsigned_abs(), den as u128) as i128;
    BigRational {
        num: BigInt::from(num / g),
        den: BigInt::from(den / g),
    }
}

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// ```
/// use kya_arith::BigRational;
/// let third = BigRational::from_i64(1, 3);
/// let sixth = BigRational::from_i64(1, 6);
/// assert_eq!(&third + &sixth, BigRational::from_i64(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

/// Error returned when parsing a [`BigRational`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRationalError {
    kind: &'static str,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.kind)
    }
}

impl std::error::Error for ParseRationalError {}

impl BigRational {
    /// The rational `0`.
    pub fn zero() -> BigRational {
        BigRational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> BigRational {
        BigRational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct and normalize `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = gcd(&num, &den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        BigRational { num, den }
    }

    /// Construct from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_i64(num: i64, den: i64) -> BigRational {
        BigRational::new(BigInt::from(num), BigInt::from(den))
    }

    /// The integer `v` as a rational.
    pub fn from_integer(v: impl Into<BigInt>) -> BigRational {
        BigRational {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// Swaps the (already coprime) parts directly — no gcd needed.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            BigRational {
                num: -&self.den,
                den: self.num.abs(),
            }
        } else {
            BigRational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Divide by a positive machine integer — the per-neighbor share
    /// split of exact Push-Sum (`y / outdegree`) — without materializing
    /// the integer as a rational: one small gcd against the numerator
    /// replaces the full normalization of `self / from_integer(k)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn div_integer(&self, k: u64) -> BigRational {
        assert!(k != 0, "division by zero");
        if self.is_zero() {
            return BigRational::zero();
        }
        let kb = BigInt::from(k);
        let g = self.num.gcd(&kb);
        BigRational {
            num: &self.num / &g,
            den: &self.den * &(&kb / &g),
        }
    }

    /// Correctly rounded conversion to `f64` (round-to-nearest-even).
    ///
    /// The nearest double to the exact rational value, with IEEE-754
    /// tie-to-even at halfway points, gradual underflow through the
    /// subnormal range (lopsided values like `1/2^1070` — the shape
    /// late-round exact Push-Sum residuals take — convert to the exact
    /// subnormal, not `0.0`), and saturation to `±inf` beyond f64
    /// range. This is the semantics [`crate::interval::Enclosure`]'s
    /// rational constructors and the conformance enclosure oracle rely
    /// on: one integer division produces a 55-plus-bit quotient and a
    /// sticky remainder, a single explicit round-to-nearest-even picks
    /// the mantissa, and the final power-of-two scaling is exact — no
    /// step rounds twice.
    pub fn to_f64(&self) -> f64 {
        if self.num.is_zero() {
            return 0.0;
        }
        let neg = self.num.is_negative();
        let num = self.num.abs();
        // The magnitude lies in [2^(e-1), 2^(e+1)).
        let e = num.bits() as i64 - self.den.bits() as i64;
        let mag = if e > 1026 {
            f64::INFINITY
        } else if e < -1080 {
            0.0
        } else {
            // Scale so the integer quotient q = ⌊num·2^s / den⌋ carries
            // 55 or 56 significant bits — at least two guard bits below
            // any (sub)normal mantissa — and a sticky remainder.
            let s = 55 - e;
            let (sn, sd) = if s >= 0 {
                (&num << s as usize, self.den.clone())
            } else {
                (num.clone(), &self.den << (-s) as usize)
            };
            let (q, r) = sn.div_rem(&sd);
            let sticky = !r.is_zero();
            let m = q.to_i64().expect("56-bit quotient fits i64") as u64;
            let t = 64 - i64::from(m.leading_zeros());
            let exp = t - 1 - s; // magnitude ∈ [2^exp, 2^(exp+1))
                                 // Keep 53 bits for normals; fewer as the value sinks into
                                 // the subnormal range (prec ≤ 0 ⇒ at most half the smallest
                                 // subnormal: only an upward tie-break can survive).
            let prec = (exp + 1075).clamp(0, 53);
            let drop = (t - prec) as u32; // ≥ 2 by construction
            let mut mant = m >> drop;
            let round = (m >> (drop - 1)) & 1 == 1;
            let rest = sticky || m & ((1u64 << (drop - 1)) - 1) != 0;
            if round && (rest || mant & 1 == 1) {
                mant += 1; // carry to 2^prec stays exact below
            }
            // mant·2^(drop−s) is exactly representable (or overflows to
            // inf), so the two-step scaling never rounds a second time.
            let exp2 = (i64::from(drop) - s) as i32;
            let h = exp2.clamp(-1000, 1000);
            mant as f64 * 2f64.powi(h) * 2f64.powi(exp2 - h)
        };
        if neg {
            -mag
        } else {
            mag
        }
    }

    /// Exact conversion from a finite `f64` (every finite float is a
    /// dyadic rational).
    ///
    /// Returns `None` for NaN or infinities.
    ///
    /// ```
    /// use kya_arith::BigRational;
    /// assert_eq!(
    ///     BigRational::from_f64(0.25),
    ///     Some(BigRational::from_i64(1, 4)),
    /// );
    /// assert_eq!(BigRational::from_f64(f64::NAN), None);
    /// ```
    pub fn from_f64(v: f64) -> Option<BigRational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & 0xf_ffff_ffff_ffff;
        let (mantissa, exp) = if exponent == 0 {
            (fraction, -1074i64)
        } else {
            (fraction | (1 << 52), exponent - 1075)
        };
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        Some(if exp >= 0 {
            BigRational::from_integer(&m << exp as usize)
        } else {
            BigRational::new(m, &BigInt::one() << (-exp) as usize)
        })
    }

    /// Floor: the largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling: the smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -(&(-self).floor())
    }

    /// Round to the nearest integer (ties away from zero).
    pub fn round(&self) -> BigInt {
        let half = BigRational::from_i64(1, 2);
        if self.is_negative() {
            -(&(-self).round())
        } else {
            (self + &half).floor()
        }
    }

    /// Raise to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> BigRational {
        if exp < 0 {
            return self.recip().pow(-exp);
        }
        BigRational {
            num: self.num.pow(exp as u32),
            den: self.den.pow(exp as u32),
        }
    }

    /// The continued-fraction expansion `[a0; a1, a2, ...]`: the unique
    /// finite sequence with `a0 = floor(self)` and `a_i >= 1` for
    /// `i >= 1` whose value is `self` (the last coefficient is `>= 2`
    /// for non-integers, making the expansion canonical).
    ///
    /// ```
    /// use kya_arith::{BigInt, BigRational};
    /// let x = BigRational::from_i64(355, 113);
    /// let cf: Vec<i64> = x
    ///     .continued_fraction()
    ///     .iter()
    ///     .map(|a| a.to_i64().unwrap())
    ///     .collect();
    /// assert_eq!(cf, vec![3, 7, 16]);
    /// ```
    pub fn continued_fraction(&self) -> Vec<BigInt> {
        let mut out = Vec::new();
        let mut p = self.num.clone();
        let mut q = self.den.clone();
        // First coefficient uses floor division to handle negatives.
        let a0 = self.floor();
        out.push(a0.clone());
        let r = &p - &(&a0 * &q);
        p = q;
        q = r;
        while !q.is_zero() {
            let (a, r) = p.div_rem(&q);
            out.push(a);
            p = q;
            q = r;
        }
        out
    }

    /// Rebuild a rational from a continued-fraction expansion.
    ///
    /// # Panics
    ///
    /// Panics if `cf` is empty or some tail coefficient is zero (which
    /// would divide by zero).
    pub fn from_continued_fraction(cf: &[BigInt]) -> BigRational {
        assert!(!cf.is_empty(), "empty continued fraction");
        let mut acc = BigRational::from_integer(cf.last().expect("non-empty").clone());
        for a in cf[..cf.len() - 1].iter().rev() {
            acc = &BigRational::from_integer(a.clone()) + &acc.recip();
        }
        acc
    }

    /// The best rational approximation to `self` with denominator at most
    /// `max_den`, via the continued-fraction (Stern–Brocot) construction.
    ///
    /// This is the ℚ_N rounding primitive of the paper's §5.4: snapping the
    /// asymptotic Push-Sum output to the frequency grid
    /// `ℚ_N = { p/q : 0 <= p <= q <= N }` (here generalized to all
    /// rationals) yields exact finite-time stabilization when a bound `N`
    /// on the network size is known.
    ///
    /// Ties (two grid points equidistant from `self`) resolve to the one
    /// with the smaller denominator, matching the classical best
    /// approximation theory.
    ///
    /// # Panics
    ///
    /// Panics if `max_den < 1`.
    ///
    /// ```
    /// use kya_arith::{BigInt, BigRational};
    /// // 0.333 snaps to 1/3 on the N = 10 grid.
    /// let x = BigRational::from_i64(333, 1000);
    /// let best = x.best_approximation(&BigInt::from(10));
    /// assert_eq!(best, BigRational::from_i64(1, 3));
    /// ```
    pub fn best_approximation(&self, max_den: &BigInt) -> BigRational {
        assert!(
            max_den >= &BigInt::one(),
            "best_approximation requires max_den >= 1"
        );
        if self.den <= *max_den {
            return self.clone();
        }
        // Continued fraction: maintain convergents (h0/k0, h1/k1).
        let mut p = self.num.clone();
        let mut q = self.den.clone();
        let mut h0 = BigInt::one();
        let mut k0 = BigInt::zero();
        let mut h1 = self.floor();
        let mut k1 = BigInt::one();
        // Consume the integer part.
        let a0 = self.floor();
        let r = &p - &(&a0 * &q);
        p = q;
        q = r;
        while !q.is_zero() {
            let (a, r) = p.div_rem(&q);
            let h2 = &a * &h1 + &h0;
            let k2 = &a * &k1 + &k0;
            if k2 > *max_den {
                // Largest t such that k0 + t*k1 <= max_den gives the best
                // semiconvergent; compare it with the previous convergent.
                let t = (max_den - &k0) / &k1;
                let semi_valid = &t + &t >= a; // t >= a/2 (classical criterion)
                let semi = BigRational::new(&h0 + &(&t * &h1), &k0 + &(&t * &k1));
                let conv = BigRational::new(h1.clone(), k1.clone());
                if semi_valid {
                    let d_semi = (&semi - self).abs();
                    let d_conv = (&conv - self).abs();
                    return match d_semi.cmp(&d_conv) {
                        Ordering::Less => semi,
                        Ordering::Greater => conv,
                        Ordering::Equal => {
                            if semi.denom() < conv.denom() {
                                semi
                            } else {
                                conv
                            }
                        }
                    };
                }
                return conv;
            }
            h0 = h1;
            k0 = k1;
            h1 = h2;
            k1 = k2;
            p = q;
            q = r;
        }
        BigRational::new(h1, k1)
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_integer(v)
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_integer(v)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

/// `x ± y` over the big-integer path, via the classic d1/d2
/// decomposition (Knuth 4.5.1; the same shape as GMP's `mpq_add`): with
/// `g = gcd(d1, d2)` the only common factor the raw cross-multiplied sum
/// can share with the product denominator divides `g`, so one *small*
/// gcd replaces the full-size normalization gcd of `BigRational::new` —
/// this is what keeps Push-Sum's `y/z` intermediates from ballooning.
fn add_big(x: &BigRational, y_num: &BigInt, y_den: &BigInt) -> BigRational {
    let g = x.den.gcd(y_den);
    if g.is_one() {
        // Coprime denominators: the result is already in lowest terms.
        let num = &x.num * y_den + y_num * &x.den;
        if num.is_zero() {
            return BigRational::zero();
        }
        return BigRational {
            num,
            den: &x.den * y_den,
        };
    }
    let da = &x.den / &g;
    let db = y_den / &g;
    let t = &x.num * &db + y_num * &da;
    if t.is_zero() {
        return BigRational::zero();
    }
    let g2 = t.gcd(&g);
    BigRational {
        num: &t / &g2,
        den: &da * &(y_den / &g2),
    }
}

/// `x * y` over the big-integer path: cross-cancel `gcd(n1, d2)` and
/// `gcd(n2, d1)` *before* multiplying, so the products are formed from
/// already-reduced halves and need no final gcd. Requires both operands
/// non-zero.
fn mul_big(x: &BigRational, y_num: &BigInt, y_den: &BigInt) -> BigRational {
    let g1 = x.num.gcd(y_den);
    let g2 = y_num.gcd(&x.den);
    BigRational {
        num: &(&x.num / &g1) * &(y_num / &g2),
        den: &(&x.den / &g2) * &(y_den / &g1),
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if let Some((n1, d1, n2, d2)) = small_parts(self, rhs) {
            return from_small(n1 * d2 + n2 * d1, d1 * d2);
        }
        add_big(self, &rhs.num, &rhs.den)
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        if rhs.is_zero() {
            return self.clone();
        }
        if self.is_zero() {
            return -rhs;
        }
        if let Some((n1, d1, n2, d2)) = small_parts(self, rhs) {
            return from_small(n1 * d2 - n2 * d1, d1 * d2);
        }
        add_big(self, &-&rhs.num, &rhs.den)
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        if self.is_zero() || rhs.is_zero() {
            return BigRational::zero();
        }
        if let Some((n1, d1, n2, d2)) = small_parts(self, rhs) {
            return from_small(n1 * n2, d1 * d2);
        }
        mul_big(self, &rhs.num, &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "division by zero rational");
        if self.is_zero() {
            return BigRational::zero();
        }
        if let Some((n1, d1, n2, d2)) = small_parts(self, rhs) {
            let (num, den) = if n2 < 0 {
                (n1 * -d2, d1 * -n2)
            } else {
                (n1 * d2, d1 * n2)
            };
            return from_small(num, den);
        }
        // x / y = x * recip(y); the reciprocal's parts are already
        // coprime, so this is one mul_big with the roles swapped.
        if rhs.num.is_negative() {
            mul_big(self, &-&rhs.den, &rhs.num.abs())
        } else {
            mul_big(self, &rhs.den, &rhs.num)
        }
    }
}

macro_rules! forward_owned_binop_rat {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational { (&self).$method(&rhs) }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational { (&self).$method(rhs) }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational { self.$method(&rhs) }
        }
    )*};
}
forward_owned_binop_rat!(Add, add; Sub, sub; Mul, mul; Div, div);

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(mut self) -> BigRational {
        self.num = -self.num;
        self
    }
}

impl Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a BigRational> for BigRational {
    fn sum<I: Iterator<Item = &'a BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |a, b| &a + b)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl FromStr for BigRational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s
                    .parse()
                    .map_err(|_| ParseRationalError { kind: "numerator" })?;
                Ok(BigRational::from_integer(n))
            }
            Some((ns, ds)) => {
                let n: BigInt = ns
                    .parse()
                    .map_err(|_| ParseRationalError { kind: "numerator" })?;
                let d: BigInt = ds.parse().map_err(|_| ParseRationalError {
                    kind: "denominator",
                })?;
                if d.is_zero() {
                    return Err(ParseRationalError {
                        kind: "zero denominator",
                    });
                }
                Ok(BigRational::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rat(n: i64, d: i64) -> BigRational {
        BigRational::from_i64(n, d)
    }

    /// Pre-fast-path reference ops: cross-multiply, then fully normalize
    /// through `BigRational::new`'s single big gcd.
    fn add_reference(x: &BigRational, y: &BigRational) -> BigRational {
        BigRational::new(
            x.numer() * y.denom() + y.numer() * x.denom(),
            x.denom() * y.denom(),
        )
    }

    fn sub_reference(x: &BigRational, y: &BigRational) -> BigRational {
        BigRational::new(
            x.numer() * y.denom() - y.numer() * x.denom(),
            x.denom() * y.denom(),
        )
    }

    fn mul_reference(x: &BigRational, y: &BigRational) -> BigRational {
        BigRational::new(x.numer() * y.numer(), x.denom() * y.denom())
    }

    fn div_reference(x: &BigRational, y: &BigRational) -> BigRational {
        BigRational::new(x.numer() * y.denom(), x.denom() * y.numer())
    }

    /// The reduced-form invariant every constructor and operator must
    /// maintain: positive denominator, coprime parts, canonical zero.
    fn assert_normalized(x: &BigRational) {
        assert!(x.denom().is_positive(), "denominator not positive: {x:?}");
        if x.numer().is_zero() {
            assert!(x.denom().is_one(), "non-canonical zero: {x:?}");
        } else {
            assert!(
                x.numer().gcd(x.denom()).is_one(),
                "parts not coprime: {x:?}"
            );
        }
    }

    /// Rationals with multi-limb parts (numerators up to ~4096 bits),
    /// biased toward power-of-two factors and shared structure.
    fn arb_big_rat() -> impl Strategy<Value = BigRational> {
        (
            proptest::collection::vec(any::<u64>(), 1usize..17),
            proptest::collection::vec(any::<u64>(), 1usize..17),
            0usize..128,
            any::<bool>(),
        )
            .prop_map(|(ns, ds, shift, neg)| {
                let mut num = BigInt::zero();
                for l in ns {
                    num = (num << 64) + BigInt::from(l);
                }
                let mut den = BigInt::zero();
                for l in ds {
                    den = (den << 64) + BigInt::from(l);
                }
                den = den + BigInt::one();
                num = num << shift;
                if neg {
                    num = -num;
                }
                BigRational::new(num, den)
            })
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), BigRational::zero());
        assert!(rat(3, 1).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
        assert_eq!(-rat(1, 2), rat(-1, 2));
        assert_eq!(rat(-3, 7).abs(), rat(3, 7));
        assert_eq!(rat(2, 5).recip(), rat(5, 2));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == rat(1, 1));
    }

    #[test]
    fn floor_values() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2));
        assert_eq!(rat(-4, 2).floor(), BigInt::from(-2));
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 0.5, -0.25, 1.0 / 3.0, 1e-10, 12345.6789] {
            let r = BigRational::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v);
        }
        assert_eq!(BigRational::from_f64(f64::INFINITY), None);
    }

    #[test]
    fn to_f64_lopsided_tiny() {
        // Regression: 1/2^1000 is perfectly representable in f64, but the
        // old shared-shift conversion pushed the numerator to 0 and
        // returned 0.0 — silently flattening late-round exact Push-Sum
        // residual telemetry.
        let tiny = BigRational::new(BigInt::one(), &BigInt::one() << 1000);
        assert_eq!(tiny.to_f64(), 2f64.powi(-1000));
        assert_eq!((-&tiny).to_f64(), -2f64.powi(-1000));
        // Subnormal outputs survive too. (Spelled via from_bits because
        // 2f64.powi(-1070) itself underflows: it divides by 2^1070 = inf.)
        let sub = BigRational::new(BigInt::one(), &BigInt::one() << 1070);
        assert_eq!(sub.to_f64(), f64::from_bits(1 << 4)); // 2^-1070
        assert!(sub.to_f64() > 0.0);
        // Below f64's range the correct answer *is* zero...
        let below = BigRational::new(BigInt::one(), &BigInt::one() << 2000);
        assert_eq!(below.to_f64(), 0.0);
        // ...and a huge numerator overflows to infinity.
        let above = BigRational::from_integer(&BigInt::one() << 2000);
        assert_eq!(above.to_f64(), f64::INFINITY);
        assert_eq!((-&above).to_f64(), f64::NEG_INFINITY);
    }

    #[test]
    fn to_f64_is_correctly_rounded() {
        // Regression: the old conversion truncated the scaled quotient
        // (or divided two already-rounded f64s), so halfway and
        // near-halfway quotients could land on the wrong neighbour.
        // These pin round-to-nearest-even explicitly.
        //
        // 1/3 must be the nearest double, which (in exact arithmetic)
        // differs from 1/3 by less than half an ulp in either direction.
        let third = BigRational::from_i64(1, 3);
        let f = third.to_f64();
        let up = BigRational::from_f64(f.next_up()).unwrap();
        let down = BigRational::from_f64(f.next_down()).unwrap();
        let lifted = BigRational::from_f64(f).unwrap();
        let err = (&lifted - &third).abs();
        assert!(err <= (&up - &third).abs());
        assert!(err <= (&down - &third).abs());
        // Exact halfway between 1 and 1 + ulp ties to even (down, since
        // 1.0's mantissa is even): (2^53 + 1) / 2^53.
        let half_ulp =
            BigRational::new((&BigInt::one() << 53) + BigInt::one(), &BigInt::one() << 53);
        assert_eq!(half_ulp.to_f64(), 1.0);
        // One sliver above that halfway point rounds up.
        let above = BigRational::new(
            (&BigInt::one() << 106) + (&BigInt::one() << 53) + BigInt::one(),
            &BigInt::one() << 106,
        );
        assert_eq!(above.to_f64(), 1.0 + f64::EPSILON);
        // Halfway with an odd kept mantissa ties up to even:
        // (2^53 + 3) / 2^53 sits between 1 + ulp (odd) and 1 + 2·ulp.
        let odd_half = BigRational::new(
            (&BigInt::one() << 53) + BigInt::from(3),
            &BigInt::one() << 53,
        );
        assert_eq!(odd_half.to_f64(), 1.0 + 2.0 * f64::EPSILON);
        // Subnormal rounding: half the smallest subnormal ties to zero…
        let half_min = BigRational::new(BigInt::one(), &BigInt::one() << 1075);
        assert_eq!(half_min.to_f64(), 0.0);
        // …one sliver above it rounds to the smallest subnormal…
        let just_above = BigRational::new(
            (&BigInt::one() << 1075) + BigInt::one(),
            &BigInt::one() << 2150,
        );
        assert_eq!(just_above.to_f64(), f64::from_bits(1));
        // …and 3·2^-1075 (halfway between subnormals 1 and 2) ties to
        // the even neighbour 2·2^-1074.
        let three_halves = BigRational::new(BigInt::from(3), &BigInt::one() << 1075);
        assert_eq!(three_halves.to_f64(), f64::from_bits(2));
        // Negative values mirror exactly.
        assert_eq!((-&three_halves).to_f64(), -f64::from_bits(2));
    }

    #[test]
    fn to_f64_lopsided_huge() {
        // Huge over small: relative error bounded by the 64-bit truncation.
        let x = BigRational::new(&BigInt::one() << 1000, BigInt::from(3));
        let expect = 2f64.powi(1000) / 3.0;
        assert!((x.to_f64() / expect - 1.0).abs() < 1e-12);
        // Both parts huge but ratio ~1 — denominators blow up together in
        // late-round Push-Sum.
        let big = &BigInt::one() << 1000;
        let y = BigRational::new(&big + &BigInt::one(), big.clone());
        assert!((y.to_f64() - 1.0).abs() < 1e-12);
        let f = BigRational::new(&big * &BigInt::from(3u64), &big * &BigInt::from(4u64));
        assert_eq!(f.to_f64(), 0.75);
    }

    #[test]
    fn display_parse() {
        assert_eq!(rat(1, 3).to_string(), "1/3");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!("-5/10".parse::<BigRational>().unwrap(), rat(-1, 2));
        assert_eq!("17".parse::<BigRational>().unwrap(), rat(17, 1));
        assert!("1/0".parse::<BigRational>().is_err());
        assert!("a/2".parse::<BigRational>().is_err());
    }

    #[test]
    fn best_approximation_examples() {
        // pi ~ 355/113 with denominators up to 200.
        let pi = BigRational::from_f64(std::f64::consts::PI).unwrap();
        assert_eq!(pi.best_approximation(&BigInt::from(200)), rat(355, 113));
        // Already exact values pass through.
        assert_eq!(rat(1, 3).best_approximation(&BigInt::from(10)), rat(1, 3));
        // Integer budget 1 snaps to nearest integer.
        assert_eq!(rat(7, 5).best_approximation(&BigInt::from(1)), rat(1, 1));
    }

    #[test]
    fn best_approximation_is_optimal_exhaustive() {
        // Against brute force on the N = 12 grid.
        let n = 12i64;
        for num in -30..30i64 {
            for den in [37i64, 41, 97] {
                let x = rat(num, den);
                let best = x.best_approximation(&BigInt::from(n));
                let err = (&best - &x).abs();
                for p in -40..40 {
                    for q in 1..=n {
                        let cand = rat(p, q);
                        let cand_err = (&cand - &x).abs();
                        assert!(cand_err >= err, "{x}: candidate {cand} beats chosen {best}");
                    }
                }
            }
        }
    }

    /// Brute-force referee for `best_approximation`: scan *every*
    /// denominator `q <= n` (only the two integers bracketing `x*q` can
    /// be nearest for a given `q`), minimizing first the error, then the
    /// reduced denominator, then the numerator. The denominator rule is
    /// the documented tie-break; the numerator rule only disambiguates
    /// the half-integer-on-`N = 1` corner where both candidates have
    /// denominator 1.
    fn brute_force_best(x: &BigRational, n: i64) -> BigRational {
        let mut best: Option<(BigRational, BigRational)> = None;
        for q in 1..=n {
            let xq = x * &BigRational::from_integer(BigInt::from(q));
            let lo = xq.floor();
            for p in [lo.clone(), &lo + &BigInt::one()] {
                let cand = BigRational::new(p, BigInt::from(q));
                let err = (&cand - x).abs();
                let take = match &best {
                    None => true,
                    Some((b, be)) => match err.cmp(be) {
                        Ordering::Less => true,
                        Ordering::Greater => false,
                        Ordering::Equal => {
                            cand.denom() < b.denom()
                                || (cand.denom() == b.denom() && cand.numer() < b.numer())
                        }
                    },
                };
                if take {
                    best = Some((cand, err));
                }
            }
        }
        best.expect("n >= 1").0
    }

    #[test]
    fn best_approximation_tie_boundaries() {
        // Exact-tie inputs: x is the midpoint of two adjacent grid
        // fractions, so the "smaller denominator wins" rule decides.
        //
        // 1/4 on the N = 2 grid sits exactly between 0/1 and 1/2, and is
        // the half-coefficient semiconvergent case (a = 4, t = 2 = a/2).
        assert_eq!(rat(1, 4).best_approximation(&BigInt::from(2)), rat(0, 1));
        // 3/4 ties between 1/2 and 1/1 (here t < a/2: the semiconvergent
        // is rejected by the classical criterion, yet its distance ties).
        assert_eq!(rat(3, 4).best_approximation(&BigInt::from(2)), rat(1, 1));
        // 7/6 on N = 3 ties between 1/1 and 4/3.
        assert_eq!(rat(7, 6).best_approximation(&BigInt::from(3)), rat(1, 1));
        // Negative mirror: -1/4 ties between -1/2 and 0/1.
        assert_eq!(rat(-1, 4).best_approximation(&BigInt::from(2)), rat(0, 1));
        // 1/2 on the integer grid (N = 1): both neighbours 0/1 and 1/1
        // have denominator 1; the floor-side convergent is returned.
        assert_eq!(rat(1, 2).best_approximation(&BigInt::from(1)), rat(0, 1));
        assert_eq!(rat(-1, 2).best_approximation(&BigInt::from(1)), rat(-1, 1));
        // 1/2 on any grid with N >= 2 is exact (even and odd N alike).
        for n in 2..=5i64 {
            assert_eq!(rat(1, 2).best_approximation(&BigInt::from(n)), rat(1, 2));
        }
    }

    #[test]
    fn best_approximation_midpoint_ties_match_brute_force() {
        // Every exact midpoint of adjacent grid fractions in [-2, 2] is a
        // tie; the implementation must agree with the referee on all of
        // them (this is where a wrong tie-break would hide: midpoints
        // have denominator 2*q*q' > N, so the dense proptest below rarely
        // produces them).
        for n in 1..=10i64 {
            let mut grid: Vec<BigRational> = Vec::new();
            for q in 1..=n {
                for p in -(2 * q)..=(2 * q) {
                    grid.push(rat(p, q));
                }
            }
            grid.sort();
            grid.dedup();
            for w in grid.windows(2) {
                let mid = &(&w[0] + &w[1]) * &rat(1, 2);
                if mid.denom() <= &BigInt::from(n) {
                    continue;
                }
                let got = mid.best_approximation(&BigInt::from(n));
                let want = brute_force_best(&mid, n);
                assert_eq!(
                    got, want,
                    "midpoint of {} and {} on N = {n}: got {got}, referee {want}",
                    w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn ceil_round_pow() {
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(6, 2).ceil(), BigInt::from(3));
        assert_eq!(rat(5, 2).round(), BigInt::from(3));
        assert_eq!(rat(-5, 2).round(), BigInt::from(-3));
        assert_eq!(rat(7, 3).round(), BigInt::from(2));
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), rat(1, 1));
    }

    #[test]
    fn continued_fraction_examples() {
        let cf = rat(355, 113).continued_fraction();
        assert_eq!(cf, vec![BigInt::from(3), BigInt::from(7), BigInt::from(16)]);
        assert_eq!(rat(3, 1).continued_fraction(), vec![BigInt::from(3)]);
        // Negative values: floor-based first coefficient.
        let cf = rat(-7, 2).continued_fraction();
        assert_eq!(BigRational::from_continued_fraction(&cf), rat(-7, 2));
    }

    #[test]
    fn continued_fraction_negative_floor_edges() {
        // The first coefficient is the *floor*, so values just below an
        // integer flip it: -1/q has floor -1 for every q >= 1.
        for q in [1i64, 2, 3, 97] {
            let x = rat(-1, q);
            let cf = x.continued_fraction();
            assert_eq!(cf[0], BigInt::from(-1), "-1/{q}");
            assert!(cf[1..].iter().all(|a| a >= &BigInt::one()));
            assert_eq!(BigRational::from_continued_fraction(&cf), x);
        }
        // Exactly-integer negatives stay single-coefficient.
        assert_eq!(rat(-4, 2).continued_fraction(), vec![BigInt::from(-2)]);
        // Just above/below a negative integer.
        for x in [rat(-201, 100), rat(-199, 100), rat(-2, 1)] {
            let cf = x.continued_fraction();
            assert_eq!(BigRational::from_continued_fraction(&cf), x);
        }
    }

    #[test]
    fn div_integer_matches_general_division() {
        let xs = [
            rat(0, 1),
            rat(5, 3),
            rat(-7, 12),
            BigRational::new(&BigInt::one() << 200, BigInt::from(9)),
        ];
        for x in &xs {
            for k in [1u64, 2, 6, 97, u64::MAX] {
                let expect = x / &BigRational::from_integer(BigInt::from(k));
                let got = x.div_integer(k);
                assert_eq!(got, expect, "{x} / {k}");
                assert_normalized(&got);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_integer_zero_panics() {
        let _ = rat(1, 2).div_integer(0);
    }

    #[test]
    fn operator_edge_cases_match_reference() {
        let big = BigRational::new(
            &BigInt::one() << 2000,
            (&BigInt::one() << 1000) + BigInt::one(),
        );
        let cases = [
            (BigRational::zero(), big.clone()),
            (big.clone(), BigRational::zero()),
            (big.clone(), big.clone()),        // equal operands
            (big.clone(), -&big),              // cancellation to zero
            (big.clone(), BigRational::one()), // den == 1 on one side
            (BigRational::from_integer(7), big.clone()),
            (big.clone(), big.recip()),
        ];
        for (x, y) in &cases {
            assert_eq!(&(x + y), &add_reference(x, y), "{x} + {y}");
            assert_eq!(&(x - y), &sub_reference(x, y), "{x} - {y}");
            assert_eq!(&(x * y), &mul_reference(x, y), "{x} * {y}");
            if !y.is_zero() {
                assert_eq!(&(x / y), &div_reference(x, y), "{x} / {y}");
            }
            assert_normalized(&(x + y));
            assert_normalized(&(x * y));
        }
    }

    proptest! {
        #[test]
        fn continued_fraction_roundtrip(n in -400i64..400, d in 1i64..120) {
            let x = rat(n, d);
            let cf = x.continued_fraction();
            prop_assert_eq!(BigRational::from_continued_fraction(&cf), x);
            // Tail coefficients are >= 1.
            prop_assert!(cf[1..].iter().all(|a| a >= &BigInt::one()));
        }

        #[test]
        fn floor_ceil_round_consistency(n in -300i64..300, d in 1i64..60) {
            let x = rat(n, d);
            let fl = BigRational::from_integer(x.floor());
            let ce = BigRational::from_integer(x.ceil());
            prop_assert!(fl <= x && x <= ce);
            prop_assert!((&ce - &fl) <= BigRational::one());
            let ro = BigRational::from_integer(x.round());
            prop_assert!((&ro - &x).abs() <= BigRational::from_i64(1, 2));
        }

        #[test]
        fn add_commutes(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = rat(a, b);
            let y = rat(c, d);
            prop_assert_eq!(&x + &y, &y + &x);
        }

        #[test]
        fn mul_distributes(a in -50i64..50, b in 1i64..20, c in -50i64..50, d in 1i64..20, e in -50i64..50, f in 1i64..20) {
            let x = rat(a, b);
            let y = rat(c, d);
            let z = rat(e, f);
            prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        }

        #[test]
        fn best_approx_within_grid(num in -500i64..500, den in 1i64..500, n in 1i64..30) {
            let x = rat(num, den);
            let best = x.best_approximation(&BigInt::from(n));
            prop_assert!(best.denom() <= &BigInt::from(n));
            // Error is at most the distance to the floor integer.
            let floor = BigRational::from_integer(x.floor());
            prop_assert!((&best - &x).abs() <= (&floor - &x).abs() + BigRational::one());
        }

        /// Full differential check against the brute-force referee over
        /// *all* denominators up to N — minimal error first, smaller
        /// denominator on ties. Denominators up to 2000 exercise the
        /// semiconvergent cutoff (including `t == a/2`) far beyond the
        /// grid bound.
        #[test]
        fn best_approx_matches_brute_force(num in -4000i64..4000, den in 1i64..2000, n in 1i64..24) {
            let x = rat(num, den);
            let got = x.best_approximation(&BigInt::from(n));
            let want = brute_force_best(&x, n);
            prop_assert_eq!(got, want);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The fast-path operators (i128 small values, d1/d2 gcd trick,
        /// cross-cancellation) agree with the naive cross-multiply
        /// references on operands up to ~1000 bits per side.
        #[test]
        fn operators_match_reference(x in arb_big_rat(), y in arb_big_rat()) {
            let sum = &x + &y;
            prop_assert_eq!(&sum, &add_reference(&x, &y));
            assert_normalized(&sum);
            let diff = &x - &y;
            prop_assert_eq!(&diff, &sub_reference(&x, &y));
            assert_normalized(&diff);
            let prod = &x * &y;
            prop_assert_eq!(&prod, &mul_reference(&x, &y));
            assert_normalized(&prod);
            if !y.is_zero() {
                let quot = &x / &y;
                prop_assert_eq!(&quot, &div_reference(&x, &y));
                assert_normalized(&quot);
            }
            // Self-cancellation and self-division hit the equal-operand paths.
            prop_assert!((&x - &x).is_zero());
            if !x.is_zero() {
                prop_assert_eq!(&x / &x, BigRational::one());
            }
        }

        /// The i128 fast path and the big path agree on small operands.
        #[test]
        fn small_value_fast_path_matches(
            a in -10_000i64..10_000, b in 1i64..10_000,
            c in -10_000i64..10_000, d in 1i64..10_000,
        ) {
            let x = rat(a, b);
            let y = rat(c, d);
            // Force the big path by inflating with a common factor that
            // pushes the parts past i64 (the value is unchanged).
            let huge = &BigInt::one() << 80;
            let inflate = |r: &BigRational| BigRational {
                num: &r.num * &huge,
                den: &r.den * &huge,
            };
            prop_assert_eq!(&x + &y, &inflate(&x) + &inflate(&y));
            prop_assert_eq!(&x - &y, &inflate(&x) - &inflate(&y));
            prop_assert_eq!(&x * &y, &inflate(&x) * &inflate(&y));
            if c != 0 {
                prop_assert_eq!(&x / &y, &inflate(&x) / &inflate(&y));
            }
        }

        /// div_integer agrees with general division for arbitrary operands.
        #[test]
        fn div_integer_matches_reference(x in arb_big_rat(), k in 1u64..u64::MAX) {
            let expect = &x / &BigRational::from_integer(BigInt::from(k));
            let got = x.div_integer(k);
            prop_assert_eq!(&got, &expect);
            assert_normalized(&got);
        }

        /// to_f64 stays within 1 ulp of the cross-checked quotient for
        /// moderate operands and never returns junk for lopsided ones.
        #[test]
        fn to_f64_tracks_float_division(n in -1_000_000i64..1_000_000, d in 1i64..1_000_000, shift in 0u32..900) {
            let x = BigRational::new(BigInt::from(n), BigInt::from(d) << shift as usize);
            let expect = (n as f64) / (d as f64) / 2f64.powi(shift as i32);
            let got = x.to_f64();
            if expect == 0.0 {
                prop_assert_eq!(got, expect);
            } else {
                prop_assert!(((got - expect) / expect).abs() < 1e-12, "{} vs {}", got, expect);
            }
        }
    }
}
