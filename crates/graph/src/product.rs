//! The round-composition product of communication graphs.
//!
//! §2.1 (footnote 3) of the paper composes the graphs of consecutive
//! rounds: the product `G1 ∘ G2` has an edge `i -> j` exactly when some
//! relay `k` satisfies `i -> k` in `G1` and `k -> j` in `G2` — information
//! travelling one hop per round. The *dynamic diameter* is the smallest
//! window `D` over which every such product is complete.

use crate::Digraph;

/// The composition `g1 ∘ g2`: edge `i -> j` iff there is `k` with
/// `i -> k` in `g1` and `k -> j` in `g2`.
///
/// The result is a simple graph (multiplicities collapsed): the model only
/// cares whether information can flow.
///
/// # Panics
///
/// Panics if the vertex counts differ.
pub fn compose(g1: &Digraph, g2: &Digraph) -> Digraph {
    assert_eq!(g1.n(), g2.n(), "product of graphs on different vertex sets");
    let n = g1.n();
    let mut out = Digraph::new(n);
    let mut row = vec![false; n];
    for i in 0..n {
        for x in row.iter_mut() {
            *x = false;
        }
        for k in g1.out_neighbors(i) {
            for j in g2.out_neighbors(k) {
                row[j] = true;
            }
        }
        for (j, &reach) in row.iter().enumerate() {
            if reach {
                out.add_edge(i, j);
            }
        }
    }
    out
}

/// The composition of a non-empty sequence of graphs, left to right:
/// `gs[0] ∘ gs[1] ∘ ... ∘ gs[last]`.
///
/// # Panics
///
/// Panics if `gs` is empty or vertex counts differ.
pub fn compose_all(gs: &[Digraph]) -> Digraph {
    assert!(!gs.is_empty(), "empty graph sequence");
    let mut acc = gs[0].clone();
    for g in &gs[1..] {
        acc = compose(&acc, g);
    }
    acc
}

/// Whether `g` is the complete graph *with self-loops*: every ordered
/// pair (including `i = i`) is an edge.
pub fn is_complete_reflexive(g: &Digraph) -> bool {
    let n = g.n();
    let m = g.multiplicity_matrix();
    (0..n).all(|i| (0..n).all(|j| m[i][j] > 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_composition_doubles_reach() {
        let r = generators::directed_ring(5).with_self_loops();
        let r2 = compose(&r, &r);
        // After two rounds, vertex 0 reaches 0, 1, 2.
        let reach: Vec<usize> = r2.out_neighbors(0).collect();
        assert_eq!(reach, vec![0, 1, 2]);
    }

    #[test]
    fn ring_needs_n_minus_one_rounds() {
        let n = 6;
        let r = generators::directed_ring(n).with_self_loops();
        let mut acc = r.clone();
        let mut rounds = 1;
        while !is_complete_reflexive(&acc) {
            acc = compose(&acc, &r);
            rounds += 1;
        }
        assert_eq!(rounds, n - 1);
    }

    #[test]
    fn compose_all_matches_iterated() {
        let a = generators::directed_ring(4).with_self_loops();
        let b = generators::complete(4).with_self_loops();
        let left = compose_all(&[a.clone(), b.clone(), a.clone()]);
        let right = compose(&compose(&a, &b), &a);
        assert_eq!(left.multiplicity_matrix(), right.multiplicity_matrix());
    }

    #[test]
    fn composition_models_two_hop_relay() {
        // 0 -> 1 in g1, 1 -> 2 in g2 yields 0 -> 2.
        let g1 = Digraph::from_edges(3, [(0, 1)]);
        let g2 = Digraph::from_edges(3, [(1, 2)]);
        let p = compose(&g1, &g2);
        assert_eq!(p.multiplicity(0, 2), 1);
        assert_eq!(p.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different vertex sets")]
    fn compose_rejects_mismatched() {
        let _ = compose(&Digraph::new(2), &Digraph::new(3));
    }

    use proptest::prelude::*;

    fn arb_graph(n: usize) -> impl Strategy<Value = Digraph> {
        proptest::collection::vec((0..n, 0..n), 0..12)
            .prop_map(move |edges| Digraph::from_edges(n, edges))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Relation composition is associative (up to multiplicity
        /// collapse, which compose applies uniformly).
        #[test]
        fn compose_is_associative(
            a in arb_graph(5),
            b in arb_graph(5),
            c in arb_graph(5),
        ) {
            let left = compose(&compose(&a, &b), &c);
            let right = compose(&a, &compose(&b, &c));
            prop_assert_eq!(left.multiplicity_matrix(), right.multiplicity_matrix());
        }

        /// The reflexive identity graph is a two-sided unit on simple
        /// graphs.
        #[test]
        fn identity_graph_is_unit(a in arb_graph(4)) {
            let id = Digraph::new(4).with_self_loops();
            // Collapse a to its simple form first (compose outputs are
            // simple graphs).
            let simple = compose(&a, &id);
            prop_assert_eq!(
                compose(&id, &simple).multiplicity_matrix(),
                simple.multiplicity_matrix()
            );
            prop_assert_eq!(
                compose(&simple, &id).multiplicity_matrix(),
                simple.multiplicity_matrix()
            );
        }
    }
}
