//! Criterion bench: the full distributed minimum-base pipeline — view
//! growth plus candidate extraction plus kernel solve — per network size
//! (feeds Table 1's positive cells and F2), and the view machinery in
//! isolation (ablation A2: hash-consing makes equal deep views O(1) to
//! compare; without it the pipeline is exponential).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::frequency::CensusOutdegree;
use kya_algos::min_base::ViewState;
use kya_algos::views::{candidate_base, ClassMode, View};
use kya_graph::{generators, StaticGraph};
use kya_runtime::{Execution, Isotropic, RunConfig};
use std::time::Duration;

fn bench_census_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("census_outdegree_n_plus_d_rounds");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    for n in [6usize, 10, 14] {
        let g = generators::random_strongly_connected(n, n, 3);
        let values: Vec<u64> = (0..n).map(|i| (i % 3) as u64).collect();
        let rounds = kya_bench::stabilization_budget(&g);
        let net = StaticGraph::new(g.clone());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut exec =
                    Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
                exec.drive(&net, RunConfig::rounds(rounds));
                exec.outputs()[0].clone()
            })
        });
    }
    group.finish();
}

fn bench_candidate_extraction(c: &mut Criterion) {
    // Build a deep view once, then measure candidate extraction alone.
    let mut group = c.benchmark_group("candidate_base_extraction");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [8usize, 16] {
        let g = generators::random_strongly_connected(n, n, 7).with_self_loops();
        let values: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
        let mut views: Vec<View> = values.iter().map(|&v| View::leaf(v)).collect();
        for _ in 0..(2 * n) {
            views = (0..n)
                .map(|v| {
                    let children: Vec<(u64, View)> = g
                        .in_edges(v)
                        .map(|e| (0u64, views[g.edges()[e].src].clone()))
                        .collect();
                    View::node(values[v], children)
                })
                .collect();
        }
        let deep = views[0].clone();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| candidate_base(&deep, ClassMode::Broadcast))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_census_pipeline, bench_candidate_extraction);
criterion_main!(benches);
