//! A probed **million-agent** Push-Sum run on the flat SoA/CSR engine,
//! with the residual distribution rendered as a deterministic log2
//! histogram — the observability stack end to end.
//!
//! Run with `cargo run --release --example flat_profile`
//! (debug builds work but take minutes at n = 10^6).
//!
//! A [`CountingProbe`] rides the sharded hot path for free-ish: merged
//! per-round counters, a bit-exact sample digest per round (identical at
//! any thread count — conformance oracle `probe` pins that), and a
//! separate wall-clock phase breakdown that never touches the
//! deterministic stream. For the machine-readable artifact version of
//! this run, see `kya profile` and `BENCH_flat.json`.

use know_your_audience::algos::push_sum::{PushSum, PushSumState};
use know_your_audience::graph::generators;
use know_your_audience::runtime::telemetry::Log2Histogram;
use know_your_audience::runtime::{CountingProbe, FlatExecution, FlatRunConfig};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let rounds = 60u64;
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get().min(8));

    println!("building random strongly-connected digraph, n = {n} ...");
    let g = generators::random_strongly_connected(n, 2 * n, 1).with_self_loops();
    let values: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
    let target = values.iter().sum::<f64>() / n as f64;
    let states = PushSumState::averaging(&values);

    let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
    println!(
        "resident footprint: {:.1} B/agent ({} slots)",
        exec.resident_bytes() as f64 / n as f64,
        exec.plan().slots()
    );

    let mut probe = CountingProbe::new();
    let report = exec.drive_probed(
        FlatRunConfig::rounds(rounds)
            .threads(threads)
            .measure(target, 1e-9)
            .confirm(2),
        &mut probe,
    );
    let summary = probe.summary();
    let times = probe.timing();
    println!(
        "ran {} rounds at {threads} threads: {} messages routed, arena high water {:.1} MiB",
        summary.rounds,
        summary.messages_routed,
        summary.arena_high_water_bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "phase breakdown: route {} us, send {} us, transition {} us, merge {} us",
        times.route_us, times.send_us, times.transition_us, times.merge_us
    );
    match report.converged_at {
        Some(r) => println!("converged to the average at round {r} (eps 1e-9)"),
        None => println!("not yet within eps 1e-9 after {rounds} rounds"),
    }

    // The residual distribution: |output − target| bucketed by binary
    // exponent. Deterministic, so the histogram is diffable run to run.
    let residuals: Vec<f64> = exec.outputs().iter().map(|x| x - target).collect();
    let hist = Log2Histogram::from_values(&residuals);
    println!("\nresidual histogram (log2 buckets):");
    println!("  exact zeros: {}", hist.zeros());
    let max = hist.buckets().map(|(_, c)| c).max().unwrap_or(1);
    for (exp, count) in hist.buckets() {
        let bar = "#".repeat((count * 40 / max).max(1) as usize);
        println!("  2^{exp:>4}: {count:>8} {bar}");
    }
    println!("\nserialized: {}", serde::to_json_string(&hist));
}
