//! Bounded-bandwidth communication: b-bit message codecs and the
//! per-round byte ledger.
//!
//! The paper's four communication models all assume unbounded-size
//! messages; this module adds the orthogonal **bandwidth axis**: every
//! broadcast is capped at `b` bits per payload lane per round
//! (`b ∈ {1, 2, 4, 8}`), or left uncapped ([`BandwidthCap::Unlimited`],
//! the `b = ∞` rung, which must reproduce uncapped runs bitwise).
//!
//! The division of labour is deliberate:
//!
//! - **Algorithms enforce** the cap *structurally*: a quantized variant
//!   (`kya_algos::quantized`) only ever emits codewords below `2^b`, so
//!   no executor-side truncation — which would silently corrupt state —
//!   can occur. [`MessageCodec`] is the shared encode/decode primitive:
//!   `decode ∘ encode` is the identity on every valid codeword.
//! - **Executors meter** the cap: [`RunConfig::bandwidth`] /
//!   [`FlatRunConfig::bandwidth`](crate::FlatRunConfig::bandwidth)
//!   thread a [`ByteLedger`] through the drive loop, charging
//!   `edges × bits-per-edge` each round, so a sweep can report the
//!   exact number of bits a cap admits — identically for the boxed and
//!   the flat executor, at any thread count.
//!
//! The cap lives in [`RunConfig`] rather than in the algorithm because
//! bandwidth is a property of the *channel*, not of the automaton: the
//! same quantized algorithm can be metered under different ledgers, and
//! the `b = ∞` rung is a pure observer on an unmodified run.
//!
//! [`RunConfig`]: crate::RunConfig
//! [`RunConfig::bandwidth`]: crate::RunConfig::bandwidth

use kya_arith::{BigInt, BigRational};
use std::cell::Cell;

/// Maximum cap width: a codeword must stay exactly representable in an
/// f64 message lane (integers up to `2^53 - 1`), and 52 bits already
/// exceeds any quantization level the experiments sweep.
pub const MAX_CAP_BITS: u32 = 52;

/// A per-round bandwidth cap: `b` bits per payload lane per edge, or
/// unlimited (the `b = ∞` rung of the F7 sweep).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BandwidthCap {
    /// Payload lanes carry codewords below `2^bits`.
    Bits(u32),
    /// No cap: full f64 lanes (64 bits), the uncapped baseline.
    Unlimited,
}

impl BandwidthCap {
    /// Parse a cap from its spec-axis spelling: `"1"`, `"2"`, ...,
    /// `"b1"`, `"b8"`, `"inf"`, `"binf"`, `"unlimited"`.
    pub fn parse(s: &str) -> Option<BandwidthCap> {
        let s = s.strip_prefix('b').unwrap_or(s);
        match s {
            "inf" | "unlimited" => Some(BandwidthCap::Unlimited),
            _ => match s.parse::<u32>() {
                Ok(b) if (1..=MAX_CAP_BITS).contains(&b) => Some(BandwidthCap::Bits(b)),
                _ => None,
            },
        }
    }

    /// The canonical variant-axis label: `"b1"`, `"b8"`, `"binf"`.
    pub fn label(self) -> String {
        match self {
            BandwidthCap::Bits(b) => format!("b{b}"),
            BandwidthCap::Unlimited => "binf".into(),
        }
    }

    /// The cap width in bits, or `None` when unlimited.
    pub fn bits(self) -> Option<u32> {
        match self {
            BandwidthCap::Bits(b) => Some(b),
            BandwidthCap::Unlimited => None,
        }
    }

    /// Number of distinct codewords a capped lane can carry (`2^b`), or
    /// `None` when unlimited.
    pub fn levels(self) -> Option<u64> {
        self.bits().map(|b| 1u64 << b)
    }

    /// Bits the ledger charges per edge per round: `b` under a cap, the
    /// 64 bits of a raw f64 lane when unlimited.
    pub fn bits_per_edge(self) -> u64 {
        match self {
            BandwidthCap::Bits(b) => b as u64,
            BandwidthCap::Unlimited => 64,
        }
    }

    /// The codec enforcing this cap, or `None` when unlimited (run the
    /// plain algorithm: `b = ∞` must reproduce uncapped runs bitwise).
    pub fn codec(self) -> Option<MessageCodec> {
        self.bits().map(MessageCodec::new)
    }
}

impl std::fmt::Display for BandwidthCap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

impl std::str::FromStr for BandwidthCap {
    type Err = String;

    fn from_str(s: &str) -> Result<BandwidthCap, String> {
        BandwidthCap::parse(s)
            .ok_or_else(|| format!("unknown bandwidth cap `{s}` (1..={MAX_CAP_BITS} or inf)"))
    }
}

/// A deterministic `b`-bit codec: codewords are the integers below
/// `2^b`.
///
/// - [`encode`](MessageCodec::encode) **saturates**: any value above
///   the largest codeword clamps to it (deterministic, monotone — never
///   wraps, which would scramble token counts).
/// - [`decode`](MessageCodec::decode) masks to `b` bits, so
///   `decode(encode(w)) == w` for every valid codeword `w < 2^b` (the
///   round-trip identity pinned by proptests).
/// - [`snap`](MessageCodec::snap) projects an exact rational onto the
///   grid `ℚ_{2^b}` via
///   [`BigRational::best_approximation`] — the ℚ-measured quantization
///   envelope of the conformance `bandwidth` oracle and the F7 error
///   column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MessageCodec {
    bits: u32,
}

impl MessageCodec {
    /// A codec of `bits` bits per lane.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= MAX_CAP_BITS`.
    pub fn new(bits: u32) -> MessageCodec {
        assert!(
            (1..=MAX_CAP_BITS).contains(&bits),
            "codec width {bits} outside 1..={MAX_CAP_BITS}"
        );
        MessageCodec { bits }
    }

    /// The codec width in bits.
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The largest codeword, `2^b - 1`.
    pub fn max_codeword(self) -> u64 {
        (1u64 << self.bits) - 1
    }

    /// The quantization scale `2^b`: token counts per unit of mass, and
    /// the denominator bound of the [`snap`](MessageCodec::snap) grid.
    pub fn levels(self) -> u64 {
        1u64 << self.bits
    }

    /// Encode a value into a codeword: identity below `2^b`, saturating
    /// at `2^b - 1` above.
    pub fn encode(self, value: u64) -> u64 {
        value.min(self.max_codeword())
    }

    /// Decode a codeword: mask to `b` bits (identity on valid
    /// codewords).
    pub fn decode(self, word: u64) -> u64 {
        word & self.max_codeword()
    }

    /// Encode a magnitude at coarser granularity: drop the low `shift`
    /// bits first, then saturate. `decode_shifted` recovers a multiple
    /// of `2^shift` — the quantized-Metropolis value channel, where the
    /// token count outgrows `b` bits and only the top window travels.
    pub fn encode_shifted(self, value: u64, shift: u32) -> u64 {
        self.encode(value >> shift)
    }

    /// Inverse of [`encode_shifted`](MessageCodec::encode_shifted) up
    /// to the dropped low bits: codeword back to a `2^shift`-granular
    /// magnitude.
    pub fn decode_shifted(self, word: u64, shift: u32) -> u64 {
        self.decode(word) << shift
    }

    /// Snap an exact rational to the quantization grid `ℚ_{2^b}`: the
    /// nearest rational with denominator at most `2^b` (ties to the
    /// smaller denominator — [`BigRational::best_approximation`]).
    pub fn snap(self, x: &BigRational) -> BigRational {
        x.best_approximation(&BigInt::from(self.levels()))
    }

    /// Worst-case distance from any real in `[0, 1]` to the grid
    /// `ℚ_{2^b}`, as an exact rational: half a grid step, `1/2^(b+1)`.
    pub fn grid_radius(self) -> BigRational {
        BigRational::new(BigInt::one(), BigInt::from(self.levels()) * BigInt::from(2))
    }
}

/// The per-run bandwidth ledger: total bits admitted onto the channel,
/// charged once per executed round by the drive loops.
///
/// Interior-mutable (`Cell`) so a shared `&ByteLedger` can ride inside
/// [`RunConfig`](crate::RunConfig) /
/// [`FlatRunConfig`](crate::FlatRunConfig) without threading `&mut`
/// through the executor; all charging happens on the coordinating
/// thread, never inside worker shards. Deliberately **not** a
/// [`CellReport`](crate::CellReport) field: the report's NDJSON schema
/// is pinned byte-for-byte by the determinism CI jobs, and the ledger
/// is a per-run side channel, not a per-cell metric.
#[derive(Debug, Default)]
pub struct ByteLedger {
    bits: Cell<u64>,
    rounds: Cell<u64>,
}

impl ByteLedger {
    /// A fresh, empty ledger.
    pub fn new() -> ByteLedger {
        ByteLedger::default()
    }

    /// Charge one executed round: `edges` messages of `bits_per_edge`
    /// bits each.
    pub fn charge_round(&self, edges: u64, bits_per_edge: u64) {
        self.bits.set(self.bits.get() + edges * bits_per_edge);
        self.rounds.set(self.rounds.get() + 1);
    }

    /// Total bits charged so far.
    pub fn total_bits(&self) -> u64 {
        self.bits.get()
    }

    /// Total bytes charged so far (bits rounded up to whole bytes).
    pub fn total_bytes(&self) -> u64 {
        self.bits.get().div_ceil(8)
    }

    /// Number of rounds charged.
    pub fn rounds(&self) -> u64 {
        self.rounds.get()
    }

    /// Reset both counters to zero (reuse across runs in a sweep).
    pub fn reset(&self) {
        self.bits.set(0);
        self.rounds.set(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_parses_all_spellings() {
        assert_eq!(BandwidthCap::parse("1"), Some(BandwidthCap::Bits(1)));
        assert_eq!(BandwidthCap::parse("b8"), Some(BandwidthCap::Bits(8)));
        assert_eq!(BandwidthCap::parse("inf"), Some(BandwidthCap::Unlimited));
        assert_eq!(BandwidthCap::parse("binf"), Some(BandwidthCap::Unlimited));
        assert_eq!(
            BandwidthCap::parse("unlimited"),
            Some(BandwidthCap::Unlimited)
        );
        assert_eq!(BandwidthCap::parse("0"), None);
        assert_eq!(BandwidthCap::parse("53"), None);
        assert_eq!(BandwidthCap::parse("speedy"), None);
        for cap in ["b1", "b2", "b4", "b8", "binf"] {
            let parsed = BandwidthCap::parse(cap).unwrap();
            assert_eq!(parsed.label(), cap, "label round-trips");
        }
    }

    #[test]
    fn cap_accounting() {
        assert_eq!(BandwidthCap::Bits(4).bits_per_edge(), 4);
        assert_eq!(BandwidthCap::Unlimited.bits_per_edge(), 64);
        assert_eq!(BandwidthCap::Bits(8).levels(), Some(256));
        assert_eq!(BandwidthCap::Unlimited.levels(), None);
        assert!(BandwidthCap::Unlimited.codec().is_none());
        assert_eq!(BandwidthCap::Bits(2).codec(), Some(MessageCodec::new(2)));
    }

    #[test]
    fn codec_saturates_and_masks() {
        let c = MessageCodec::new(4);
        assert_eq!(c.max_codeword(), 15);
        assert_eq!(c.encode(9), 9);
        assert_eq!(c.encode(15), 15);
        assert_eq!(c.encode(16), 15, "saturates, never wraps");
        assert_eq!(c.encode(u64::MAX), 15);
        assert_eq!(c.decode(9), 9);
        for w in 0..16 {
            assert_eq!(c.decode(c.encode(w)), w, "round-trip identity");
        }
    }

    #[test]
    fn codec_shifted_windows() {
        let c = MessageCodec::new(4);
        // 0b1011_0110 >> 3 = 0b1_0110 saturates to 15; << 3 back.
        assert_eq!(c.encode_shifted(0b1011_0110, 3), 15);
        assert_eq!(c.encode_shifted(0b0110_0110, 3), 0b1100);
        assert_eq!(c.decode_shifted(0b1100, 3), 0b0110_0000);
    }

    #[test]
    fn codec_snap_uses_best_approximation() {
        let c = MessageCodec::new(2); // grid Q_4
        let x = BigRational::from_i64(333, 1000);
        assert_eq!(c.snap(&x), BigRational::from_i64(1, 3));
        assert_eq!(c.grid_radius(), BigRational::from_i64(1, 8));
    }

    #[test]
    fn ledger_charges_per_round() {
        let ledger = ByteLedger::new();
        ledger.charge_round(10, 4);
        ledger.charge_round(10, 4);
        assert_eq!(ledger.total_bits(), 80);
        assert_eq!(ledger.total_bytes(), 10);
        assert_eq!(ledger.rounds(), 2);
        ledger.charge_round(3, 1);
        assert_eq!(ledger.total_bits(), 83);
        assert_eq!(ledger.total_bytes(), 11, "bytes round up");
        ledger.reset();
        assert_eq!((ledger.total_bits(), ledger.rounds()), (0, 0));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn codec_rejects_zero_width() {
        let _ = MessageCodec::new(0);
    }
}
