//! Criterion bench: the quantized (b-bit) averaging twins against their
//! unquantized originals on the same graphs and rounds. The quantized
//! variants trade f64 multiplies for u64 token arithmetic plus the
//! residual-carry bookkeeping in `transition_with_outdegree`; this
//! bench measures what that costs per round, and what the cap width
//! (1 vs 8 bits — same arithmetic, different saturation behaviour)
//! changes, on both the boxed and flat executors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_algos::quantized::{QuantizedMetropolis, QuantizedPushSum};
use kya_graph::generators;
use kya_runtime::{Execution, FlatExecution, Isotropic, RunConfig};
use std::time::Duration;

const ROUNDS: u64 = 20;

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 7) % 13) as f64).collect()
}

fn bench_quantized_pushsum(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_pushsum_20_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [1_000usize, 10_000] {
        let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
        let values = values_for(n);
        let plain = PushSumState::averaging(&values);
        group.bench_with_input(BenchmarkId::new("plain_boxed", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Isotropic(PushSum), plain.clone());
                exec.drive(
                    &kya_graph::StaticGraph::new(g.clone()),
                    RunConfig::rounds(ROUNDS),
                );
                exec.outputs()[0]
            })
        });
        for bits in [1u32, 8] {
            let algo = QuantizedPushSum::new(bits);
            let states = algo.initial(&values);
            group.bench_with_input(BenchmarkId::new(format!("b{bits}_boxed"), n), &n, |b, _| {
                b.iter(|| {
                    let mut exec = Execution::new(Isotropic(algo), states.clone());
                    exec.drive(
                        &kya_graph::StaticGraph::new(g.clone()),
                        RunConfig::rounds(ROUNDS),
                    );
                    exec.outputs()[0]
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("b{bits}_flat_t4"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut exec = FlatExecution::new(algo, &g, PushSumState::columns(&states));
                        exec.run(ROUNDS, 4);
                        exec.outputs()[0]
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_quantized_metropolis(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantized_metropolis_20_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [1_000usize] {
        let g = generators::bidirectional_ring(n).with_self_loops();
        let values = values_for(n);
        for bits in [1u32, 8] {
            let algo = QuantizedMetropolis::new(bits, 13.0);
            let states = algo.initial(&values);
            group.bench_with_input(BenchmarkId::new(format!("b{bits}_boxed"), n), &n, |b, _| {
                b.iter(|| {
                    let mut exec = Execution::new(Isotropic(algo), states.clone());
                    exec.drive(
                        &kya_graph::StaticGraph::new(g.clone()),
                        RunConfig::rounds(ROUNDS),
                    );
                    exec.outputs()[0]
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("b{bits}_flat_t4"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let mut exec =
                            FlatExecution::new(algo, &g, QuantizedMetropolis::columns(&states));
                        exec.run(ROUNDS, 4);
                        exec.outputs()[0]
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_quantized_pushsum, bench_quantized_metropolis);
criterion_main!(benches);
