//! Observer call-order under churn: membership transitions and fault
//! injection are distinct channels. An agent parked by a churn script is
//! *masked* — its edges vanish from the round graph, so no `on_message`
//! **and no `on_message_dropped`** fires for it — whereas a message lost
//! to the fault plan (drop or bounce off a crashed recipient) always
//! fires `on_message_dropped`. These tests pin the distinction on the
//! sequential faulted path and pin the churned observer stream's
//! equality across the parallel executor's thread counts.

use know_your_audience::algos::push_sum::{PushSum, PushSumState, SelfHealingPushSum};
use know_your_audience::graph::{generators, StaticGraph};
use know_your_audience::runtime::churn::{ChurnMasked, ChurnPlan};
use know_your_audience::runtime::faults::{FaultPlan, FaultyExecution};
use know_your_audience::runtime::{Algorithm, Execution, Isotropic, Observer, RunConfig};
use proptest::prelude::*;

/// Records every observer hook as a rendered line, so streams can be
/// compared with one `assert_eq!` and filtered by prefix.
#[derive(Default)]
struct Recorder {
    events: Vec<String>,
}

impl<A: Algorithm> Observer<A> for Recorder
where
    A::State: std::fmt::Debug,
    A::Msg: std::fmt::Debug,
{
    fn on_round_start(&mut self, round: u64, states: &[A::State]) {
        self.events.push(format!("start {round} {states:?}"));
    }

    fn on_message(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        self.events
            .push(format!("msg {round} {src}->{dst} {msg:?}"));
    }

    fn on_message_dropped(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        self.events
            .push(format!("drop {round} {src}->{dst} {msg:?}"));
    }

    fn on_round_end(&mut self, round: u64, _algo: &A, states: &[A::State]) {
        self.events.push(format!("end {round} {states:?}"));
    }
}

/// Parse the `round` and `src->dst` of a rendered `msg`/`drop` line.
fn parse_event(line: &str) -> (u64, usize, usize) {
    let mut it = line.split_whitespace();
    let _tag = it.next().unwrap();
    let round: u64 = it.next().unwrap().parse().unwrap();
    let (src, dst) = it.next().unwrap().split_once("->").unwrap();
    (round, src.parse().unwrap(), dst.parse().unwrap())
}

const PARKED: usize = 2;
const LEAVE: u64 = 4;
const REJOIN: u64 = 12;

fn churned_stack(
    n: usize,
) -> (
    ChurnMasked<StaticGraph>,
    know_your_audience::runtime::churn::Membership,
) {
    let g = generators::random_strongly_connected(n, n, 9).with_self_loops();
    let membership = ChurnPlan::new(9).leave(PARKED, LEAVE..REJOIN).membership(n);
    (
        ChurnMasked::new(StaticGraph::new(g), membership.clone()),
        membership,
    )
}

/// A churned run with a **quiescent** fault plan fires no
/// `on_message_dropped` at all: parking an agent masks its edges out of
/// the round graph rather than dropping in-flight messages, and the
/// rejoin transition is equally silent. During the absence window the
/// parked agent's only observed deliveries are its own self-loop (which
/// the mask preserves so its state recirculates, frozen); real-link
/// traffic resumes on rejoin.
#[test]
fn membership_transitions_never_fire_on_message_dropped() {
    let n = 7;
    let (stack, membership) = churned_stack(n);
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let fresh = PushSumState::averaging(&values);
    let reinit = |v: usize, _parked: &PushSumState| fresh[v];
    let mut obs = Recorder::default();
    let mut exec = FaultyExecution::new(
        Isotropic(SelfHealingPushSum),
        fresh.clone(),
        FaultPlan::new(9),
    );
    exec.drive(
        &stack,
        RunConfig::rounds(20)
            .membership(&membership, &reinit)
            .observer(&mut obs),
    );
    assert!(
        obs.events.iter().all(|e| !e.starts_with("drop")),
        "churn transitions leaked into on_message_dropped"
    );
    let mut absent_real_deliveries = 0u64;
    let mut absent_self_loops = 0u64;
    let mut rejoined_real_link = false;
    for e in &obs.events {
        if !e.starts_with("msg") {
            continue;
        }
        let (round, src, dst) = parse_event(e);
        let absent = (LEAVE..REJOIN).contains(&round);
        let touches_parked = src == PARKED || dst == PARKED;
        if absent && touches_parked {
            if src == dst {
                absent_self_loops += 1;
            } else {
                absent_real_deliveries += 1;
            }
        }
        if round >= REJOIN && touches_parked && src != dst {
            rejoined_real_link = true;
        }
    }
    assert_eq!(
        absent_real_deliveries, 0,
        "masked agent still exchanged messages over real links while parked"
    );
    assert_eq!(
        absent_self_loops,
        REJOIN - LEAVE,
        "the parked agent's self-loop recirculates every absent round"
    );
    assert!(rejoined_real_link, "real-link traffic resumes after rejoin");
}

/// With a drop plan stacked on the same churn script, every
/// `on_message_dropped` is attributable to the fault plan: it fires only
/// inside the plan's horizon, and never for an edge the membership has
/// already masked away (a message that was never sent cannot be
/// dropped).
#[test]
fn dropped_events_come_only_from_the_fault_plan() {
    let n = 7;
    let horizon = 16u64;
    let (stack, membership) = churned_stack(n);
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let fresh = PushSumState::averaging(&values);
    let reinit = |v: usize, _parked: &PushSumState| fresh[v];
    let mut obs = Recorder::default();
    let mut exec = FaultyExecution::new(
        Isotropic(SelfHealingPushSum),
        fresh.clone(),
        FaultPlan::new(9).drop_links(0.4).until(horizon),
    );
    let report = exec.drive(
        &stack,
        RunConfig::rounds(24)
            .membership(&membership, &reinit)
            .observer(&mut obs),
    );
    assert!(report.events.dropped > 0, "drop plan actually fired");
    let drops: Vec<(u64, usize, usize)> = obs
        .events
        .iter()
        .filter(|e| e.starts_with("drop"))
        .map(|e| parse_event(e))
        .collect();
    assert_eq!(drops.len() as u64, report.events.dropped);
    for &(round, src, dst) in &drops {
        assert!(round <= horizon, "drop after the plan's horizon");
        let absent = (LEAVE..REJOIN).contains(&round);
        assert!(
            !(absent && (src == PARKED || dst == PARKED)),
            "dropped a message on a membership-masked edge at round {round}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The churned observer stream — rejoin re-injections included — is
    /// identical on the sequential and sharded executors at 1, 2, and 4
    /// threads: same hooks, same order, same arguments, same states.
    #[test]
    fn churned_observer_streams_agree_across_thread_counts(
        n in 4usize..12,
        extra in 0usize..16,
        seed in 0u64..500,
        rounds in 1u64..16,
    ) {
        let g = generators::random_strongly_connected(n, extra, seed).with_self_loops();
        let membership = ChurnPlan::new(seed)
            .leave(n - 1, 2..6)
            .leave(0, 3..8)
            .membership(n);
        let stack = ChurnMasked::new(StaticGraph::new(g), membership.clone());
        let values: Vec<f64> = (0..n).map(|i| ((i as u64 * 31 + seed) % 67) as f64).collect();
        let fresh = PushSumState::averaging(&values);
        let reinit = |v: usize, _parked: &PushSumState| fresh[v];

        let mut baseline: Option<(Vec<String>, String)> = None;
        for threads in [1usize, 2, 4] {
            let mut obs = Recorder::default();
            let mut exec = Execution::new(Isotropic(PushSum), fresh.clone());
            exec.drive(
                &stack,
                RunConfig::rounds(rounds)
                    .threads(threads)
                    .membership(&membership, &reinit)
                    .observer(&mut obs),
            );
            let states = format!("{:?}", exec.states());
            match &baseline {
                None => baseline = Some((obs.events, states)),
                Some((base_events, base_states)) => {
                    prop_assert_eq!(
                        base_events, &obs.events,
                        "observer streams diverge at {} threads", threads
                    );
                    prop_assert_eq!(base_states, &states);
                }
            }
        }
    }
}
