//! **F1** — Push-Sum convergence rate vs the Theorem 5.2 bound, as
//! three harness sweeps:
//!
//! - `f1a_rings`: sweep `n` on directed rings (`D = n - 1`);
//! - `f1b_layered`: sweep `D` at fixed `n = 24` (layered cycles, one
//!   group count per topology label);
//! - `f1c_eps`: sweep `ε = 10^-k` (the variant axis) on a random
//!   dynamic digraph.
//!
//! Cells early-exit once the outputs have stayed in the ε-ball for 500
//! consecutive rounds (`run_until_converged`); Push-Sum on these
//! networks never leaves the ball again, so `converged_at` matches the
//! full-budget answer at a fraction of the wall-clock.

use super::{dynamic_net, observed_convergence, Experiment};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::StaticGraph;
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, SpecError};
use kya_runtime::{Execution, Isotropic};

/// The F1 registry entry.
pub const EXPERIMENT: Experiment = Experiment {
    name: "f1",
    about: "Push-Sum rounds to epsilon-consensus (Theorem 5.2)",
    extra_flags: &["groups", "exps"],
    build,
    cell,
    render,
};

const BUDGET: u64 = 400_000;
const CONFIRM: u64 = 500;

fn values_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 37) % 101) as f64).collect()
}

fn build(args: &Args) -> Result<Vec<ExperimentSpec>, SpecError> {
    let a = ExperimentSpec::new("f1a_rings")
        .topologies(["ring:{n}"])
        .sizes([4, 8, 12, 16, 24, 32])
        .rounds(BUDGET)
        .eps(1e-6)
        .with_args(args)?;
    let groups = args.usize_list_flag("groups", &[2, 3, 4, 6, 8, 12])?;
    let b = ExperimentSpec::new("f1b_layered")
        .topologies(
            groups
                .iter()
                .filter(|&&g| g > 0 && 24 % g == 0)
                .map(|g| format!("layered:{g}x{}", 24 / g)),
        )
        .sizes([24])
        .rounds(BUDGET)
        .eps(1e-6)
        .with_args(args)?
        .sizes([24]);
    let exps = args.usize_list_flag("exps", &[2, 4, 6, 8, 10, 12])?;
    let c = ExperimentSpec::new("f1c_eps")
        .topologies(["dyn:directed:{n}:6:555"])
        .sizes([12])
        .variants(exps.iter().map(|e| e.to_string()))
        .rounds(BUDGET)
        .with_args(args)?
        .sizes([12]);
    Ok(vec![a, b, c])
}

fn cell(ctx: &CellCtx) -> CellOutcome {
    // Variant axis (f1c): the tolerance exponent; otherwise the spec's ε.
    let eps = match ctx.cell.variant.parse::<i32>() {
        Ok(exp) => 10f64.powi(-exp),
        Err(_) => ctx.eps(),
    };
    let run = |n: usize, net: &dyn kya_graph::DynamicGraph| {
        let values = values_for(n);
        let avg = values.iter().sum::<f64>() / n as f64;
        let exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(&values));
        observed_convergence(ctx, exec, net, avg, eps, CONFIRM)
    };
    let (converged, outcome) = match ctx.graph() {
        Ok(g) => run(g.n(), &StaticGraph::new((*g).clone())),
        Err(_) => {
            let net = dynamic_net(&ctx.cell.topology).expect("known dynamic label");
            run(ctx.cell.n, &*net)
        }
    };
    outcome.ok(converged).detail("eps", eps)
}

fn render(sink: &ResultSink) -> String {
    let mut out = String::new();
    let name = sink.records().first().map(|r| r.experiment.as_str());
    match name {
        Some("f1a_rings") => {
            out.push_str("F1(a). rings, eps = 1e-6: rounds vs n^2 D\n");
            out.push_str(&format!(
                "{:>10} {:>4} {:>10} {:>16}\n",
                "graph", "n", "rounds", "rounds/(n^2 D)"
            ));
            for r in sink.records() {
                let rounds = r.report.as_ref().and_then(|rep| rep.converged_at);
                let n = r.n as f64;
                let d = (r.n.max(1) - 1) as f64;
                out.push_str(&match rounds {
                    Some(k) => format!(
                        "{:>10} {:>4} {k:>10} {:>16.5}\n",
                        r.topology,
                        r.n,
                        k as f64 / (n * n * d.max(1.0))
                    ),
                    None => format!("{:>10} {:>4} {:>10}\n", r.topology, r.n, "timeout"),
                });
            }
        }
        Some("f1b_layered") => {
            out.push_str("F1(b). layered cycles at n = 24, eps = 1e-6: rounds vs D\n");
            out.push_str(&format!(
                "{:>14} {:>7} {:>10} {:>10}\n",
                "graph", "groups", "rounds", "rounds/D"
            ));
            for r in sink.records() {
                let rounds = r.report.as_ref().and_then(|rep| rep.converged_at);
                // layered:GxS
                let groups: f64 = r
                    .topology
                    .strip_prefix("layered:")
                    .and_then(|s| s.split('x').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1.0);
                out.push_str(&match rounds {
                    Some(k) => format!(
                        "{:>14} {groups:>7} {k:>10} {:>10.2}\n",
                        r.topology,
                        k as f64 / groups
                    ),
                    None => format!("{:>14} {groups:>7} {:>10}\n", r.topology, "timeout"),
                });
            }
        }
        _ => {
            out.push_str("F1(c). eps sweep on a random dynamic digraph (n = 12)\n");
            out.push_str(&format!(
                "{:>8} {:>10} {:>20}\n",
                "10^-k", "rounds", "rounds/log10(1/eps)"
            ));
            for r in sink.records() {
                let rounds = r.report.as_ref().and_then(|rep| rep.converged_at);
                let exp: f64 = r.variant.parse().unwrap_or(1.0);
                out.push_str(&match rounds {
                    Some(k) => {
                        format!("{:>8} {k:>10} {:>20.2}\n", r.variant, k as f64 / exp)
                    }
                    None => format!("{:>8} {:>10}\n", r.variant, "timeout"),
                });
            }
            out.push_str(
                "\nReading: rounds grow polynomially with n and D and linearly \
                 with log(1/eps) — the shape of the O(n^2 D log 1/eps) bound, \
                 with measured constants far below the worst case.\n",
            );
        }
    }
    out
}
