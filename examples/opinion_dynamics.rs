//! Opinion pooling on a time-varying social graph — the symmetric-
//! communication setting the paper motivates with the Hegselmann–Krause
//! model (§1).
//!
//! Run with `cargo run --example opinion_dynamics`.
//!
//! Agents hold opinions in [0, 100] and talk over a bidirectional,
//! changing topology. We compare the three doubly-stochastic averaging
//! rules of §5: Metropolis, Lazy Metropolis (both outdegree-aware) and
//! the fixed-weight 1/N rule, which needs only a bound on the population
//! size and works under pure broadcast.

use know_your_audience::algos::metropolis::{FixedWeight, LazyMetropolis, Metropolis};
use know_your_audience::graph::{DynamicGraph, RandomDynamicGraph};
use know_your_audience::runtime::metric::{ConvergenceTrace, EuclideanMetric};
use know_your_audience::runtime::{Algorithm, Broadcast, Execution, Isotropic};

fn run_consensus<A>(name: &str, algo: A, opinions: &[f64], net: &dyn DynamicGraph, rounds: u64)
where
    A: Algorithm<State = f64, Output = f64>,
{
    let target = opinions.iter().sum::<f64>() / opinions.len() as f64;
    let mut exec = Execution::new(algo, opinions.to_vec());
    let mut trace = ConvergenceTrace::new();
    let metric = EuclideanMetric;
    for _ in 0..rounds {
        let g = net.graph(exec.round() + 1);
        exec.step(&g);
        trace.record(&metric, &exec.outputs(), &target);
    }
    let to_01 = trace.rounds_to(0.1);
    let to_001 = trace.rounds_to(0.001);
    println!(
        "{name:16} -> rounds to |err| <= 0.1: {:>5}   <= 0.001: {:>5}   (final err {:.2e})",
        to_01.map_or("-".into(), |r| r.to_string()),
        to_001.map_or("-".into(), |r| r.to_string()),
        trace.distances().last().unwrap()
    );
}

fn main() {
    let n = 12;
    let opinions: Vec<f64> = (0..n).map(|i| (i * i % 97) as f64).collect();
    let target = opinions.iter().sum::<f64>() / n as f64;
    println!("{n} agents, initial opinions {opinions:?}");
    println!("consensus target (average): {target:.4}\n");

    let net = RandomDynamicGraph::symmetric(n, 4, 11);
    let rounds = 3000;
    run_consensus("Metropolis", Isotropic(Metropolis), &opinions, &net, rounds);
    run_consensus(
        "Lazy Metropolis",
        Isotropic(LazyMetropolis),
        &opinions,
        &net,
        rounds,
    );
    run_consensus(
        "FixedWeight 1/N",
        Broadcast(FixedWeight::new(n)),
        &opinions,
        &net,
        rounds,
    );
    run_consensus(
        "FixedWeight loose bound (1/4N)",
        Broadcast(FixedWeight::new(4 * n)),
        &opinions,
        &net,
        rounds,
    );

    println!(
        "\nNote: the 1/N rule is pure broadcast — it needs no audience \
         knowledge at all, only the population bound; looser bounds \
         converge more slowly (the paper's O(n^4) remark)."
    );
}
