//! Offline subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest its tests use: [`Strategy`] with
//! `prop_map`, integer-range / tuple / string-regex strategies,
//! [`collection::vec`], [`any`], [`ProptestConfig`], and the
//! [`proptest!`] / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message; minimization is manual.
//! - **Deterministic seeding.** Each test's RNG is seeded from a hash
//!   of its module path and name, so failures reproduce exactly across
//!   runs — there is no persistence file.
//! - String strategies implement only the regex subset the workspace
//!   uses: literals, `\x` escapes, `[a-z0-9]` classes, and the `?`,
//!   `{m}`, `{m,n}` quantifiers.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic RNG (splitmix64)
// ---------------------------------------------------------------------

/// Deterministic test RNG. Seeded per test from the test's name.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a raw value.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample below `bound` (widening multiply; `bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform sample in `[lo, hi]` over the full u128 span of a signed
    /// or unsigned 128-bit range.
    pub fn in_span_u128(&mut self, span: u128) -> u128 {
        if span == u128::MAX {
            (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            // Modulo is biased in general but the bias is < 2^-64 for
            // every span the tests use; acceptable for test generation.
            wide % (span + 1)
        }
    }
}

/// Build the RNG for a named test (used by the [`proptest!`] expansion).
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the test path: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------

/// Subset of proptest's run configuration: the case count.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128 - 1) as u128;
                let off = rng.in_span_u128(span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128;
                let off = rng.in_span_u128(span) as i128;
                (*self.start() as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// i128/u128 ranges need full-width span arithmetic.
impl Strategy for Range<i128> {
    type Value = i128;
    fn generate(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end.wrapping_sub(self.start) as u128) - 1;
        self.start.wrapping_add(rng.in_span_u128(span) as i128)
    }
}

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start - 1;
        self.start + rng.in_span_u128(span)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// Always-the-same-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// ---------------------------------------------------------------------
// String strategies (regex subset)
// ---------------------------------------------------------------------

enum RegexAtom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct RegexPiece {
    atom: RegexAtom,
    min: u32,
    max: u32,
}

fn parse_regex_subset(pattern: &str) -> Vec<RegexPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in regex `{pattern}`"));
                i += 1;
                RegexAtom::Literal(match c {
                    'n' => '\n',
                    't' => '\t',
                    c => c,
                })
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    i += 1;
                    if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                        let hi = chars[i + 1];
                        i += 2;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in regex `{pattern}`"
                );
                i += 1; // consume ']'
                RegexAtom::Class(ranges)
            }
            c if !matches!(c, '?' | '{' | '}' | '*' | '+' | '(' | ')' | '|' | '.') => {
                i += 1;
                RegexAtom::Literal(c)
            }
            c => panic!("unsupported regex construct `{c}` in `{pattern}` (offline proptest supports literals, escapes, classes, and ?/{{m,n}} quantifiers)"),
        };
        let (min, max) = match chars.get(i) {
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    None => {
                        let m: u32 = body.parse().expect("bad {m} quantifier");
                        (m, m)
                    }
                    Some((lo, hi)) => (
                        lo.parse().expect("bad {m,n} quantifier"),
                        hi.parse().expect("bad {m,n} quantifier"),
                    ),
                }
            }
            _ => (1, 1),
        };
        pieces.push(RegexPiece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_regex_subset(self);
        let mut out = String::new();
        for piece in &pieces {
            let count = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..count {
                match &piece.atom {
                    RegexAtom::Literal(c) => out.push(*c),
                    RegexAtom::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|&(lo, hi)| u64::from(hi as u32 - lo as u32) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for &(lo, hi) in ranges {
                            let size = u64::from(hi as u32 - lo as u32) + 1;
                            if pick < size {
                                out.push(
                                    char::from_u32(lo as u32 + pick as u32).expect("valid char"),
                                );
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a size range.
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose elements come from `element` and whose length is
    /// `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a property (maps to `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Assert inequality inside a property (maps to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skip the current case when `cond` is false. In this offline subset a
/// skipped case counts as passed (no retry budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests. Supports the upstream surface this workspace
/// uses: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::test_rng(__name);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&{ $strat }, &mut __rng);)+
                let __result: ::std::result::Result<(), ()> =
                    (move || -> ::std::result::Result<(), ()> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                debug_assert!(__result.is_ok(), "case {__case}");
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// The usual import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..2000 {
            let x = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&x));
            let y = (-20i64..20).generate(&mut rng);
            assert!((-20..20).contains(&y));
            let z = (-(1i128 << 100)..(1i128 << 100)).generate(&mut rng);
            assert!((-(1i128 << 100)..(1i128 << 100)).contains(&z));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::test_rng("regex");
        for _ in 0..500 {
            let s = "\\-?[1-9][0-9]{0,8}".generate(&mut rng);
            let body = s.strip_prefix('-').unwrap_or(&s);
            assert!(!body.is_empty() && body.len() <= 9, "{s}");
            assert!(!body.starts_with('0'));
            assert!(body.chars().all(|c| c.is_ascii_digit()), "{s}");
        }
    }

    #[test]
    fn vec_and_tuple_strategies_compose() {
        let mut rng = crate::test_rng("vec");
        let strat = collection::vec((0usize..5, 0usize..5), 0..12).prop_map(|v| v.len());
        for _ in 0..200 {
            assert!(strat.generate(&mut rng) < 12);
        }
        let fixed = collection::vec(-9i64..9, 25usize);
        assert_eq!(fixed.generate(&mut rng).len(), 25);
    }

    #[test]
    fn deterministic_per_name() {
        let a: Vec<u64> = (0..5).map(|_| crate::test_rng("same").next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|_| crate::test_rng("same").next_u64()).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(a in 0u64..100, b in 0u64..100) {
            prop_assume!(a != b);
            prop_assert!(a + b < 200);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
