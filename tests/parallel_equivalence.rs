//! `Execution::step` and `Execution::step_parallel` are one semantics
//! with two schedules: for every algorithm in `kya_algos` they must
//! produce identical per-round states **and** drive an [`Observer`]
//! through an identical event stream (same hooks, same order, same
//! arguments). The routing phase of the parallel step iterates agents
//! and ports in the sequential executor's order precisely so this
//! holds; this test pins it.

use kya_algos::frequency::{CensusOutdegree, CensusPorts, CensusSymmetric};
use kya_algos::gossip::SetGossip;
use kya_algos::metropolis::{FixedWeight, LazyMetropolis, Metropolis};
use kya_algos::min_base::{MinBaseBroadcast, MinBaseOutdegree, MinBasePorts, ViewState};
use kya_algos::push_sum::{PushSum, PushSumState, SelfHealingPushSum};
use kya_harness::parse_graph;
use kya_runtime::{Algorithm, Broadcast, Execution, Isotropic, Observer};

/// Records every observer hook as a rendered line, so two runs can be
/// compared with one `assert_eq!` regardless of state/message types.
#[derive(Default)]
struct Recorder {
    events: Vec<String>,
}

impl<A: Algorithm> Observer<A> for Recorder
where
    A::State: std::fmt::Debug,
    A::Msg: std::fmt::Debug,
{
    fn on_round_start(&mut self, round: u64, states: &[A::State]) {
        self.events.push(format!("start {round} {states:?}"));
    }

    fn on_message(&mut self, round: u64, src: usize, dst: usize, msg: &A::Msg) {
        self.events
            .push(format!("msg {round} {src}->{dst} {msg:?}"));
    }

    fn on_round_end(&mut self, round: u64, _algo: &A, states: &[A::State]) {
        self.events.push(format!("end {round} {states:?}"));
    }
}

const ROUNDS: usize = 5;

fn check<A, F>(make: F, label: &str)
where
    A: Algorithm + Sync,
    A::State: std::fmt::Debug + Send + Sync,
    A::Msg: std::fmt::Debug + Send + Sync,
    F: Fn() -> Execution<A>,
{
    // Bidirectional so the symmetric-model algorithms are in contract.
    let g = parse_graph("biring:6").expect("grammar").with_self_loops();
    let mut seq = make();
    let mut par = make();
    let mut seq_obs = Recorder::default();
    let mut par_obs = Recorder::default();
    for round in 0..ROUNDS {
        seq.step_observed(&g, &mut seq_obs);
        par.step_parallel_observed(&g, 3, &mut par_obs);
        assert_eq!(
            format!("{:?}", seq.states()),
            format!("{:?}", par.states()),
            "{label}: states diverge at round {round}"
        );
    }
    assert_eq!(
        seq_obs.events, par_obs.events,
        "{label}: observer event streams diverge"
    );
    // Sanity: the streams are non-trivial — every round fired its
    // bracketing hooks and at least one delivery per edge.
    let msgs = seq_obs
        .events
        .iter()
        .filter(|e| e.starts_with("msg"))
        .count();
    assert_eq!(
        msgs,
        ROUNDS * g.edge_count(),
        "{label}: one event per delivery"
    );
    assert_eq!(
        seq_obs
            .events
            .iter()
            .filter(|e| e.starts_with("start"))
            .count(),
        ROUNDS,
        "{label}"
    );
}

#[test]
fn every_algorithm_agrees_between_schedules() {
    let values: [u64; 6] = [3, 1, 4, 1, 5, 9];
    let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();

    check(
        || Execution::new(Broadcast(SetGossip), SetGossip::initial(&values)),
        "SetGossip",
    );
    check(
        || Execution::new(Broadcast(MinBaseBroadcast), ViewState::initial(&values)),
        "MinBaseBroadcast",
    );
    check(
        || Execution::new(Isotropic(MinBaseOutdegree), ViewState::initial(&values)),
        "MinBaseOutdegree",
    );
    check(
        || Execution::new(MinBasePorts, ViewState::initial(&values)),
        "MinBasePorts",
    );
    check(
        || Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values)),
        "CensusOutdegree",
    );
    check(
        || Execution::new(Broadcast(CensusSymmetric), ViewState::initial(&values)),
        "CensusSymmetric",
    );
    check(
        || Execution::new(CensusPorts, ViewState::initial(&values)),
        "CensusPorts",
    );
    check(
        || Execution::new(Isotropic(PushSum), PushSumState::averaging(&floats)),
        "PushSum",
    );
    check(
        || {
            Execution::new(
                Isotropic(SelfHealingPushSum),
                PushSumState::averaging(&floats),
            )
        },
        "SelfHealingPushSum",
    );
    check(
        || Execution::new(Isotropic(Metropolis), floats.clone()),
        "Metropolis",
    );
    check(
        || Execution::new(Isotropic(LazyMetropolis), floats.clone()),
        "LazyMetropolis",
    );
    check(
        || Execution::new(Broadcast(FixedWeight::new(6)), floats.clone()),
        "FixedWeight",
    );
}
