//! Graph and value specification parsing — re-exported from the
//! harness.
//!
//! The grammar moved into [`kya_harness`] when the parallel sweep
//! harness landed, so the CLI, the bench experiments, and sweep specs
//! all accept exactly the same labels (including the families the old
//! CLI parser lacked: `torus:N`, `layered:GxS`). This module remains as
//! the CLI-local name so `use spec::...` call sites keep working.

pub use kya_harness::{parse_graph, parse_values, SpecError};
