//! Property tests for `PeriodicGraph` round indexing.
//!
//! Rounds are numbered from 1 (§2.1), so the phase of round `t` is
//! `(t - 1) % period`: round 1 must be phase 0, and the schedule must be
//! periodic in `t`. These are exactly the two facts the executors rely on
//! when replaying a periodic adversary.

use kya_graph::{Digraph, DynamicGraph, PeriodicGraph};
use proptest::prelude::*;

/// Raw generator input: vertex count, period, and a flat pool of edge
/// pairs (reduced mod `n` and dealt round-robin across the phases — the
/// vendored proptest has no `prop_flat_map`, so sizes cannot feed the
/// element strategy directly).
type RawInput = (usize, usize, Vec<(usize, usize)>);

fn phases_strategy() -> impl Strategy<Value = RawInput> {
    (
        2usize..6,
        1usize..5,
        proptest::collection::vec((0usize..16, 0usize..16), 0..32),
    )
}

fn edge_lists(input: &RawInput) -> (usize, Vec<Vec<(usize, usize)>>) {
    let (n, period, ref pool) = *input;
    let mut lists = vec![Vec::new(); period];
    for (i, &(u, v)) in pool.iter().enumerate() {
        lists[i % period].push((u % n, v % n));
    }
    (n, lists)
}

fn build(n: usize, edge_lists: &[Vec<(usize, usize)>]) -> PeriodicGraph {
    let phases = edge_lists
        .iter()
        .map(|edges| {
            let mut g = Digraph::new(n);
            for &(u, v) in edges {
                g.add_edge(u, v);
            }
            g
        })
        .collect();
    PeriodicGraph::new(phases)
}

proptest! {
    /// `graph(t) == graph(t + period)` for every round `t >= 1`.
    #[test]
    fn schedule_is_periodic(input in phases_strategy(), offset in 0u64..32) {
        let (n, lists) = edge_lists(&input);
        let net = build(n, &lists);
        let period = net.period() as u64;
        let t = 1 + offset;
        prop_assert_eq!(net.graph(t), net.graph(t + period));
        prop_assert_eq!(net.graph_ref(t).as_ref(), net.graph_ref(t + period).as_ref());
    }

    /// Round 1 is phase 0 (with self-loops closed), and in general round
    /// `t` is phase `(t - 1) % period`.
    #[test]
    fn round_one_is_phase_zero(input in phases_strategy()) {
        let (n, lists) = edge_lists(&input);
        let net = build(n, &lists);
        for (i, edges) in lists.iter().enumerate() {
            let mut expected = Digraph::new(n);
            for &(u, v) in edges {
                expected.add_edge(u, v);
            }
            let expected = expected.with_self_loops();
            prop_assert_eq!(net.graph(1 + i as u64), expected);
        }
    }
}
