//! The round-by-round executor.

use crate::algorithm::Algorithm;
use crate::faults::FaultEvents;
use crate::metric::Metric;
use crate::report::CellReport;
use kya_graph::{Digraph, DynamicGraph};

/// An execution of an [`Algorithm`] on a network: the sequence of global
/// states `C^0, C^1, ...` of §2.2, advanced one communication-closed round
/// at a time.
///
/// The executor is model-agnostic: the communication-model discipline is
/// in the algorithm's type (see [`crate::Broadcast`] /
/// [`crate::Isotropic`]). Port assignment within a round uses the graph's
/// port labels when present (sorted by label) and edge insertion order
/// otherwise, so port-aware algorithms require port-colored static
/// graphs to be meaningful — exactly the paper's proviso (§2.2).
#[derive(Clone, Debug)]
pub struct Execution<A: Algorithm> {
    algo: A,
    states: Vec<A::State>,
    round: u64,
}

/// The result of running until outputs stabilize (discrete-metric
/// convergence, §2.3).
#[deprecated(
    since = "0.2.0",
    note = "use Execution::run_until with DiscreteMetric, which returns the unified CellReport"
)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StabilizationReport<O> {
    /// The common stabilized outputs, indexed by agent.
    pub outputs: Vec<O>,
    /// First round at the end of which the outputs held their final value
    /// (0 = already stable initially).
    pub stabilized_at: u64,
    /// Total rounds executed (stabilization was confirmed over the
    /// remaining window).
    pub rounds_run: u64,
}

impl<A: Algorithm> Execution<A> {
    /// Start an execution from the given initial states (one per agent).
    pub fn new(algo: A, initial_states: Vec<A::State>) -> Execution<A> {
        Execution {
            algo,
            states: initial_states,
            round: 0,
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current states, indexed by agent.
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// Current outputs, indexed by agent.
    pub fn outputs(&self) -> Vec<A::Output> {
        self.states.iter().map(|s| self.algo.output(s)).collect()
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// Execute one round on the given communication graph.
    ///
    /// The graph must have `n()` vertices and a self-loop at every vertex
    /// (§2.1); [`Digraph::with_self_loops`] provides the closure.
    ///
    /// # Panics
    ///
    /// Panics if the vertex count mismatches, a self-loop is missing, or
    /// the algorithm returns the wrong number of port messages.
    pub fn step(&mut self, graph: &Digraph) {
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        let n = graph.n();
        let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
            .map(|v| Vec::with_capacity(graph.indegree(v)))
            .collect();
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {}: vertex {v} lacks a self-loop",
                self.round
            );
            let outdeg = graph.outdegree(v);
            let msgs = self.algo.send(&self.states[v], outdeg);
            assert_eq!(
                msgs.len(),
                outdeg,
                "algorithm produced {} messages for outdegree {outdeg}",
                msgs.len()
            );
            // Port discipline: sort out-edges by (port, edge id).
            let mut ports: Vec<(Option<u32>, usize)> = graph
                .out_edges(v)
                .map(|e| (graph.edges()[e].port, e))
                .collect();
            ports.sort_unstable();
            for (msg, (_, e)) in msgs.into_iter().zip(ports) {
                inboxes[graph.edges()[e].dst].push(msg);
            }
        }
        for (v, inbox) in inboxes.into_iter().enumerate() {
            self.states[v] = self.algo.transition(&self.states[v], &inbox);
        }
    }

    /// Execute `rounds` rounds on a dynamic graph, starting from the round
    /// after the current one.
    pub fn run(&mut self, net: &dyn DynamicGraph, rounds: u64) {
        for _ in 0..rounds {
            let g = net.graph(self.round + 1);
            self.step(&g);
        }
    }

    /// Like [`Execution::step`], but computes sends and transitions in
    /// parallel across agents (`threads` crossbeam workers).
    ///
    /// Semantically identical to `step` — the round is communication
    /// closed, so per-agent work is embarrassingly parallel; per-agent
    /// inboxes keep the same deterministic delivery order. Useful for
    /// large-`n` simulations; for small networks the sequential `step`
    /// is faster.
    ///
    /// # Panics
    ///
    /// Same contract as [`Execution::step`]; additionally panics if
    /// `threads == 0`.
    pub fn step_parallel(&mut self, graph: &Digraph, threads: usize)
    where
        A: Sync,
        A::State: Send + Sync,
        A::Msg: Send + Sync,
    {
        assert!(threads > 0, "at least one worker thread");
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        let n = graph.n();
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {}: vertex {v} lacks a self-loop",
                self.round
            );
        }
        let algo = &self.algo;
        let states = &self.states;
        let round = self.round;

        // Phase 1: sends, sharded by agent.
        let sends: Vec<Vec<A::Msg>> = {
            let mut shards: Vec<Vec<Vec<A::Msg>>> = Vec::new();
            crossbeam::scope(|scope| {
                let mut handles = Vec::new();
                for t in 0..threads {
                    let handle = scope.spawn(move |_| {
                        let mut local = Vec::new();
                        let mut v = t;
                        while v < n {
                            let outdeg = graph.outdegree(v);
                            let msgs = algo.send(&states[v], outdeg);
                            assert_eq!(
                                msgs.len(),
                                outdeg,
                                "round {round}: wrong message count from agent {v}"
                            );
                            local.push((v, msgs));
                            v += threads;
                        }
                        local
                    });
                    handles.push(handle);
                }
                let mut collected: Vec<(usize, Vec<A::Msg>)> = Vec::with_capacity(n);
                for h in handles {
                    collected.extend(h.join().expect("send worker panicked"));
                }
                collected.sort_by_key(|(v, _)| *v);
                shards.push(collected.into_iter().map(|(_, m)| m).collect());
            })
            .expect("crossbeam scope");
            shards.pop().expect("one shard")
        };

        // Phase 2: route (sequential — cheap) with the same port order as
        // the sequential step.
        let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
            .map(|v| Vec::with_capacity(graph.indegree(v)))
            .collect();
        for (v, msgs) in sends.into_iter().enumerate() {
            let mut ports: Vec<(Option<u32>, usize)> = graph
                .out_edges(v)
                .map(|e| (graph.edges()[e].port, e))
                .collect();
            ports.sort_unstable();
            for (msg, (_, e)) in msgs.into_iter().zip(ports) {
                inboxes[graph.edges()[e].dst].push(msg);
            }
        }

        // Phase 3: transitions, sharded by agent.
        let inboxes_ref = &inboxes;
        let mut next: Vec<(usize, A::State)> = Vec::with_capacity(n);
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let handle = scope.spawn(move |_| {
                    let mut local = Vec::new();
                    let mut v = t;
                    while v < n {
                        local.push((v, algo.transition(&states[v], &inboxes_ref[v])));
                        v += threads;
                    }
                    local
                });
                handles.push(handle);
            }
            for h in handles {
                next.extend(h.join().expect("transition worker panicked"));
            }
        })
        .expect("crossbeam scope");
        next.sort_by_key(|(v, _)| *v);
        self.states = next.into_iter().map(|(_, s)| s).collect();
    }

    /// The measuring loop behind [`Execution::run_until`] and friends:
    /// step, record the worst-case distance, optionally break early once
    /// the outputs have stayed in the ε-ball for `confirm` rounds.
    fn run_measuring(
        &mut self,
        net: &dyn DynamicGraph,
        max_rounds: u64,
        dist: &dyn Fn(&[A::Output]) -> f64,
        eps: f64,
        confirm: Option<u64>,
    ) -> CellReport {
        let start = self.round;
        let mut distances = Vec::new();
        let mut entered: Option<u64> = None;
        while self.round - start < max_rounds {
            let g = net.graph(self.round + 1);
            self.step(&g);
            let d = dist(&self.outputs());
            distances.push(d);
            if let Some(confirm) = confirm {
                if d <= eps {
                    let at = *entered.get_or_insert(self.round);
                    if self.round - at >= confirm {
                        break;
                    }
                } else {
                    entered = None;
                }
            }
        }
        CellReport::from_trace(start, distances, eps, 0, FaultEvents::default(), None)
    }

    /// Run for up to `max_rounds` rounds, measuring the worst-case
    /// distance of the outputs from `target` each round, and report when
    /// the outputs entered the ε-ball *and stayed there* for the rest of
    /// the run (§2.3's convergence at tolerance `eps`).
    ///
    /// The full budget is always executed — convergence is judged
    /// post-hoc over the whole trace, so a transient dip into the ball
    /// does not count. Non-consuming: the execution can be stepped or
    /// measured again afterwards; a second call measures from the
    /// current round.
    pub fn run_until<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
    ) -> CellReport {
        self.run_measuring(
            net,
            max_rounds,
            &|outputs| crate::metric::max_distance(metric, outputs, target),
            eps,
            None,
        )
    }

    /// Like [`Execution::run_until`], but stop early once the outputs
    /// have stayed within `eps` of `target` for `confirm` consecutive
    /// rounds — the budget-saving variant for sweeps whose cells
    /// converge long before `max_rounds`.
    ///
    /// The stay-in-ball criterion is unchanged; only the observation
    /// window is truncated, so `converged_at` equals the full-budget
    /// answer whenever the algorithm does not leave the ball again after
    /// `confirm` rounds inside it.
    pub fn run_until_converged<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        target: &A::Output,
        eps: f64,
        max_rounds: u64,
        confirm: u64,
    ) -> CellReport {
        self.run_measuring(
            net,
            max_rounds,
            &|outputs| crate::metric::max_distance(metric, outputs, target),
            eps,
            Some(confirm),
        )
    }

    /// Like [`Execution::run_until`], but against per-agent targets:
    /// the measured distance of a round is `max_i δ(output_i,
    /// targets[i])`. This is the primitive behind
    /// [`crate::testing::check_self_stabilization`].
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != n()`.
    pub fn run_until_targets<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        metric: &M,
        targets: &[A::Output],
        eps: f64,
        max_rounds: u64,
    ) -> CellReport {
        assert_eq!(targets.len(), self.n(), "one target per agent");
        self.run_measuring(
            net,
            max_rounds,
            &|outputs| {
                outputs
                    .iter()
                    .zip(targets)
                    .map(|(o, t)| metric.distance(o, t))
                    .fold(0.0, f64::max)
            },
            eps,
            None,
        )
    }

    /// Run until the outputs have been constant for `window` consecutive
    /// rounds, or `max_rounds` rounds have elapsed.
    ///
    /// Returns `None` on timeout. Note that stabilization over a finite
    /// window is *empirical*: the model itself has no termination
    /// awareness (§2.3), so callers choose a window that the relevant
    /// theory (e.g. the `n + D` bound of §3.2) justifies.
    #[deprecated(
        since = "0.2.0",
        note = "use Execution::run_until with DiscreteMetric, which returns the unified CellReport"
    )]
    #[allow(deprecated)]
    pub fn run_until_stable(
        &mut self,
        net: &dyn DynamicGraph,
        max_rounds: u64,
        window: u64,
    ) -> Option<StabilizationReport<A::Output>> {
        let mut last = self.outputs();
        let mut stable_since = self.round;
        while self.round < max_rounds {
            let g = net.graph(self.round + 1);
            self.step(&g);
            let now = self.outputs();
            if now != last {
                last = now;
                stable_since = self.round;
            }
            if self.round - stable_since >= window {
                return Some(StabilizationReport {
                    outputs: last,
                    stabilized_at: stable_since,
                    rounds_run: self.round,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Broadcast, BroadcastAlgorithm};
    use kya_graph::{generators, StaticGraph};

    /// Gossip the set of seen values; output the set's maximum.
    #[derive(Clone)]
    struct SetGossip;
    impl BroadcastAlgorithm for SetGossip {
        type State = Vec<u32>; // sorted set
        type Msg = Vec<u32>;
        type Output = u32;
        fn message(&self, state: &Vec<u32>) -> Vec<u32> {
            state.clone()
        }
        fn transition(&self, state: &Vec<u32>, inbox: &[Vec<u32>]) -> Vec<u32> {
            let mut merged = state.clone();
            for m in inbox {
                merged.extend_from_slice(m);
            }
            merged.sort_unstable();
            merged.dedup();
            merged
        }
        fn output(&self, state: &Vec<u32>) -> u32 {
            *state.last().expect("non-empty set")
        }
    }

    #[test]
    fn gossip_floods_in_diameter_rounds() {
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = [3, 9, 2, 9, 1, 4].iter().map(|&v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        exec.run(&net, 5);
        assert!(exec.outputs().iter().all(|&x| x == 9));
        // All agents hold the full set.
        assert!(exec.states().iter().all(|s| s == &vec![1, 2, 3, 4, 9]));
    }

    #[test]
    fn run_until_measures_convergence() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        let report = exec.run_until(&net, &DiscreteMetric, &5u32, 0.0, 20);
        // The max floods the ring in diameter = 5 rounds.
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.convergence_rounds, Some(5));
        assert_eq!(report.rounds_run, 20, "full budget is executed");
        assert_eq!(report.final_distance, 0.0);
        assert_eq!(exec.round(), 20, "non-consuming: execution advanced");
    }

    #[test]
    fn run_until_converged_stops_early() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        let report = exec.run_until_converged(&net, &DiscreteMetric, &5u32, 0.0, 10_000, 3);
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.rounds_run, 8, "5 to converge + 3 to confirm");
        assert_eq!(exec.round(), 8);
    }

    #[test]
    fn run_until_resumes_from_current_round() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        exec.run(&net, 2);
        let report = exec.run_until(&net, &DiscreteMetric, &5u32, 0.0, 10);
        // Rounds are absolute: convergence still lands at round 5, but
        // only 3 of this call's rounds were needed.
        assert_eq!(report.converged_at, Some(5));
        assert_eq!(report.convergence_rounds, Some(3));
        assert_eq!(report.rounds_run, 10);
    }

    #[test]
    fn run_until_targets_checks_per_agent() {
        use crate::metric::DiscreteMetric;
        // Frozen states: each agent keeps its own value, so per-agent
        // targets equal to the initial values are hit at round 1.
        struct Keep;
        impl BroadcastAlgorithm for Keep {
            type State = u32;
            type Msg = ();
            type Output = u32;
            fn message(&self, _: &u32) {}
            fn transition(&self, s: &u32, _: &[()]) -> u32 {
                *s
            }
            fn output(&self, s: &u32) -> u32 {
                *s
            }
        }
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(Keep), vec![7, 8, 9]);
        let targets = [7u32, 8, 9];
        let report = exec.run_until_targets(&net, &DiscreteMetric, &targets, 0.0, 5);
        assert_eq!(report.converged_at, Some(1));
        // A wrong per-agent target never converges.
        let mut exec = Execution::new(Broadcast(Keep), vec![7, 8, 9]);
        let report = exec.run_until_targets(&net, &DiscreteMetric, &[7, 8, 0], 0.0, 5);
        assert_eq!(report.converged_at, None);
    }

    #[test]
    #[should_panic(expected = "one target per agent")]
    fn run_until_targets_rejects_wrong_arity() {
        use crate::metric::DiscreteMetric;
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2], vec![3]]);
        let _ = exec.run_until_targets(&net, &DiscreteMetric, &[1u32], 0.0, 5);
    }

    #[test]
    #[allow(deprecated)] // the compatibility shim must keep working one release
    fn stabilization_detection() {
        let net = StaticGraph::new(generators::directed_ring(6));
        let inits: Vec<Vec<u32>> = (0..6).map(|v| vec![v]).collect();
        let mut exec = Execution::new(Broadcast(SetGossip), inits);
        let report = exec
            .run_until_stable(&net, 100, 10)
            .expect("gossip stabilizes");
        // Information needs diameter = 5 rounds to flood the ring.
        assert_eq!(report.stabilized_at, 5);
        assert!(report.outputs.iter().all(|&x| x == 5));
    }

    #[test]
    #[allow(deprecated)] // the compatibility shim must keep working one release
    fn stabilization_timeout() {
        /// An algorithm that never stabilizes: counts rounds mod 2.
        struct Blinker;
        impl BroadcastAlgorithm for Blinker {
            type State = u8;
            type Msg = ();
            type Output = u8;
            fn message(&self, _: &u8) {}
            fn transition(&self, state: &u8, _: &[()]) -> u8 {
                1 - state
            }
            fn output(&self, state: &u8) -> u8 {
                *state
            }
        }
        let net = StaticGraph::new(generators::directed_ring(3));
        let mut exec = Execution::new(Broadcast(Blinker), vec![0, 0, 0]);
        assert!(exec.run_until_stable(&net, 20, 5).is_none());
        assert_eq!(exec.round(), 20);
    }

    #[test]
    #[should_panic(expected = "lacks a self-loop")]
    fn missing_self_loop_rejected() {
        let g = generators::directed_ring(3); // no self-loops
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2], vec![3]]);
        exec.step(&g);
    }

    #[test]
    #[should_panic(expected = "graph size")]
    fn size_mismatch_rejected() {
        let g = generators::directed_ring(4).with_self_loops();
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1]]);
        exec.step(&g);
    }

    #[test]
    fn parallel_step_matches_sequential() {
        let g = generators::random_strongly_connected(12, 10, 3).with_self_loops();
        let inits: Vec<Vec<u32>> = (0..12).map(|v| vec![v % 4]).collect();
        let mut seq = Execution::new(Broadcast(SetGossip), inits.clone());
        let mut par = Execution::new(Broadcast(SetGossip), inits);
        for _ in 0..8 {
            seq.step(&g);
            par.step_parallel(&g, 4);
            assert_eq!(seq.states(), par.states());
            assert_eq!(seq.round(), par.round());
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn parallel_step_rejects_zero_threads() {
        let g = generators::directed_ring(2).with_self_loops();
        let mut exec = Execution::new(Broadcast(SetGossip), vec![vec![1], vec![2]]);
        exec.step_parallel(&g, 0);
    }

    #[test]
    fn deterministic_replay() {
        let net = StaticGraph::new(generators::random_strongly_connected(8, 6, 11));
        let inits: Vec<Vec<u32>> = (0..8).map(|v| vec![v * 7 % 5]).collect();
        let mut a = Execution::new(Broadcast(SetGossip), inits.clone());
        let mut b = Execution::new(Broadcast(SetGossip), inits);
        a.run(&net, 10);
        b.run(&net, 10);
        assert_eq!(a.states(), b.states());
    }
}
