//! Tier-1 conformance entry: the small differential matrix must pass,
//! and its NDJSON stream must be byte-identical at every worker count
//! (what the CI `conformance` job diffs via `kya check`).

use kya_conformance::{all_ok, failure_count, run, to_ndjson, Matrix};
use serde::Serialize;

#[test]
fn small_matrix_passes_and_is_worker_invariant() {
    let sequential = run(Matrix::Small, 1);
    assert!(
        all_ok(&sequential),
        "{} conformance cell(s) failed:\n{}",
        failure_count(&sequential),
        sequential
            .iter()
            .flat_map(|(_, sink)| sink.failures())
            .map(|r| r.to_value().to_json())
            .collect::<Vec<_>>()
            .join("\n")
    );

    let parallel = run(Matrix::Small, 2);
    assert_eq!(
        to_ndjson(&sequential),
        to_ndjson(&parallel),
        "conformance NDJSON must be byte-identical across worker counts"
    );
}
