//! Criterion bench: the exact-arithmetic hot path.
//!
//! The `BigRational` referee is what caps the network sizes the exact
//! demonstrations can reach, so this bench measures it directly:
//!
//! - `exact_pushsum_*`: full exact Push-Sum runs (200 rounds) on the
//!   cycle and the star, n ∈ {8, 32, 128} — the workload whose
//!   rounds/sec figures are tracked in EXPERIMENTS.md;
//! - `bigint_*`: the two kernels the rational ops bottom out in
//!   (multi-limb division and gcd) on operands of a few thousand bits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::push_sum::{PushSumExact, PushSumExactState};
use kya_arith::{gcd, BigInt};
use kya_graph::{generators, StaticGraph};
use kya_runtime::{Execution, Isotropic, RunConfig};
use std::time::Duration;

const ROUNDS: u64 = 200;

fn exact_run(net: &StaticGraph, n: usize) -> Vec<kya_arith::BigRational> {
    let values: Vec<i64> = (0..n).map(|i| (i * i % 97) as i64).collect();
    let mut exec = Execution::new(
        Isotropic(PushSumExact),
        PushSumExactState::averaging(&values),
    );
    exec.drive(net, RunConfig::rounds(ROUNDS));
    exec.outputs()
}

fn bench_exact_pushsum(c: &mut Criterion) {
    for (family, make) in [
        (
            "exact_pushsum_cycle",
            generators::directed_ring as fn(usize) -> _,
        ),
        ("exact_pushsum_star", generators::star as fn(usize) -> _),
    ] {
        let mut group = c.benchmark_group(family);
        group
            .measurement_time(Duration::from_secs(5))
            .sample_size(10);
        for n in [8usize, 32, 128] {
            let net = StaticGraph::new(make(n));
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| exact_run(&net, n))
            });
        }
        group.finish();
    }
}

/// Deterministic pseudo-random big integer of `limbs` 64-bit limbs
/// (xorshift — no rand dependency needed in a bench fixture).
fn pseudo_big(limbs: usize, mut seed: u64) -> BigInt {
    let mut acc = BigInt::zero();
    for _ in 0..limbs {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        acc = (acc << 64) + BigInt::from(seed | 1);
    }
    acc
}

fn bench_bigint_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigint_kernels");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for limbs in [8usize, 32] {
        let a = pseudo_big(2 * limbs, 0xDEAD_BEEF);
        let b = pseudo_big(limbs, 0xC0FF_EE11);
        group.bench_with_input(
            BenchmarkId::new("div_rem", limbs * 64),
            &limbs,
            |bench, _| bench.iter(|| a.div_rem(&b)),
        );
        group.bench_with_input(BenchmarkId::new("gcd", limbs * 64), &limbs, |bench, _| {
            bench.iter(|| gcd(&a, &b))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_pushsum, bench_bigint_kernels);
criterion_main!(benches);
