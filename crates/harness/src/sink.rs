//! Stable-schema result records and the sinks that collect them.
//!
//! Every cell produces one [`CellRecord`] with a fixed field order, so
//! the NDJSON/JSON renderings are byte-stable across runs and worker
//! counts — the property the CI determinism job diffs for.

use crate::runner::CellOutcome;
use crate::spec::{CellSpec, ExperimentSpec};
use kya_runtime::CellReport;
use serde::{Serialize, Value};

/// One cell's result: the resolved axis values plus the outcome.
///
/// Serializes to a JSON object with a fixed key order (`experiment`,
/// `cell`, `topology`, `n`, `seed`, `algorithm`, `variant`, `plan`,
/// `cell_seed`, `ok`, `report`, `details`); absent verdicts and reports
/// serialize as `null` so every record has every key.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// The experiment name.
    pub experiment: String,
    /// The cell index in enumeration order.
    pub cell: usize,
    /// The resolved topology label.
    pub topology: String,
    /// The size-axis value.
    pub n: usize,
    /// The seed-axis value.
    pub seed: u64,
    /// The algorithm-axis label.
    pub algorithm: String,
    /// The variant-axis label.
    pub variant: String,
    /// The fault-plan label (e.g. `quiescent`, `p0.3+c2`).
    pub plan: String,
    /// The derived per-cell seed (replays the cell exactly).
    pub cell_seed: u64,
    /// Pass/fail verdict, when the cell is a certification.
    pub ok: Option<bool>,
    /// Measurement report, when the cell produced one.
    pub report: Option<CellReport>,
    /// Experiment-specific detail fields, in insertion order.
    pub details: Vec<(String, Value)>,
}

impl CellRecord {
    /// Assemble the record for `cell` from its outcome.
    pub fn new(spec: &ExperimentSpec, cell: &CellSpec, outcome: CellOutcome) -> CellRecord {
        CellRecord {
            experiment: spec.name().to_string(),
            cell: cell.index,
            topology: cell.topology.clone(),
            n: cell.n,
            seed: cell.seed,
            algorithm: cell.algorithm.clone(),
            variant: cell.variant.clone(),
            plan: cell.plan.label(),
            cell_seed: cell.cell_seed,
            ok: outcome.ok,
            report: outcome.report,
            details: outcome.details,
        }
    }

    /// Look up a detail value by key.
    pub fn detail(&self, key: &str) -> Option<&Value> {
        self.details.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

impl Serialize for CellRecord {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "experiment".to_string(),
                Value::Str(self.experiment.clone()),
            ),
            ("cell".to_string(), Value::UInt(self.cell as u64)),
            ("topology".to_string(), Value::Str(self.topology.clone())),
            ("n".to_string(), Value::UInt(self.n as u64)),
            ("seed".to_string(), Value::UInt(self.seed)),
            ("algorithm".to_string(), Value::Str(self.algorithm.clone())),
            ("variant".to_string(), Value::Str(self.variant.clone())),
            ("plan".to_string(), Value::Str(self.plan.clone())),
            ("cell_seed".to_string(), Value::UInt(self.cell_seed)),
            ("ok".to_string(), self.ok.map_or(Value::Null, Value::Bool)),
            (
                "report".to_string(),
                self.report.as_ref().map_or(Value::Null, |r| r.to_value()),
            ),
            ("details".to_string(), Value::Map(self.details.clone())),
        ])
    }
}

/// An in-memory collection of records in cell order, with stable
/// renderings.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultSink {
    records: Vec<CellRecord>,
}

impl ResultSink {
    /// An empty sink.
    pub fn new() -> ResultSink {
        ResultSink::default()
    }

    /// Append a record.
    pub fn push(&mut self, record: CellRecord) {
        self.records.push(record);
    }

    /// The collected records, in cell order.
    pub fn records(&self) -> &[CellRecord] {
        &self.records
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records were collected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Whether no record carries a failing verdict (records without a
    /// verdict count as passing).
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.ok != Some(false))
    }

    /// Records with a failing verdict.
    pub fn failures(&self) -> Vec<&CellRecord> {
        self.records
            .iter()
            .filter(|r| r.ok == Some(false))
            .collect()
    }

    /// One compact JSON object per line, in cell order — the format the
    /// CI determinism job diffs between worker counts.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_value().to_json());
            out.push('\n');
        }
        out
    }

    /// A single JSON document: `{"experiment": ..., "cells": [...]}`.
    pub fn to_json(&self) -> String {
        let experiment = self
            .records
            .first()
            .map(|r| r.experiment.clone())
            .unwrap_or_default();
        Value::Map(vec![
            ("experiment".to_string(), Value::Str(experiment)),
            ("cells".to_string(), Value::UInt(self.records.len() as u64)),
            (
                "records".to_string(),
                Value::Seq(self.records.iter().map(|r| r.to_value()).collect()),
            ),
        ])
        .to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CellOutcome;
    use crate::spec::ExperimentSpec;

    fn record() -> CellRecord {
        let spec = ExperimentSpec::new("t").topologies(["ring:{n}"]).sizes([4]);
        let cell = &spec.cells()[0];
        CellRecord::new(
            &spec,
            cell,
            CellOutcome::new().ok(true).detail("rounds_to_eps", 17u64),
        )
    }

    #[test]
    fn record_serializes_with_fixed_key_order() {
        let json = serde::to_json_string(&record());
        let exp = json.find("\"experiment\"").unwrap();
        let cell = json.find("\"cell\"").unwrap();
        let ok = json.find("\"ok\"").unwrap();
        let details = json.find("\"details\"").unwrap();
        assert!(exp < cell && cell < ok && ok < details, "{json}");
        assert!(json.contains("\"report\":null"), "{json}");
        assert!(json.contains("\"rounds_to_eps\":17"), "{json}");
    }

    #[test]
    fn sink_renders_ndjson_one_line_per_record() {
        let mut sink = ResultSink::new();
        sink.push(record());
        sink.push(record());
        let nd = sink.to_ndjson();
        assert_eq!(nd.lines().count(), 2);
        assert!(nd.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
    }

    #[test]
    fn all_ok_ignores_verdictless_records() {
        let mut sink = ResultSink::new();
        sink.push(record());
        let mut bad = record();
        bad.ok = None;
        sink.push(bad);
        assert!(sink.all_ok());
        assert!(sink.failures().is_empty());
        let mut bad = record();
        bad.ok = Some(false);
        sink.push(bad);
        assert!(!sink.all_ok());
        assert_eq!(sink.failures().len(), 1);
    }

    #[test]
    fn json_document_wraps_records() {
        let mut sink = ResultSink::new();
        sink.push(record());
        let doc = sink.to_json();
        assert!(doc.starts_with("{\"experiment\":\"t\""), "{doc}");
        assert!(doc.contains("\"cells\":1"), "{doc}");
    }
}
