//! Algorithm traits, one per communication model.
//!
//! §2.2 of the paper stratifies sending functions by what they may
//! observe:
//!
//! | model                 | sending function            | trait |
//! |-----------------------|-----------------------------|-------|
//! | simple broadcast      | `σ: Q -> M`                 | [`BroadcastAlgorithm`] |
//! | outdegree awareness   | `σ: Q x ℕ -> M`             | [`IsotropicAlgorithm`] |
//! | output port awareness | `σ: Q x ℕ -> M^k`           | [`Algorithm`] |
//! | symmetric             | broadcast on bidirectional nets | [`BroadcastAlgorithm`] + class restriction |
//!
//! The wrappers [`Broadcast`] and [`Isotropic`] embed the weaker models
//! into the general one, mirroring the paper's inclusions; the executor
//! only ever sees an [`Algorithm`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four communication models of the paper (§2.2).
///
/// The model is a property of the *network class plus sending-function
/// type*, not of the executor: symmetric communications is simple
/// broadcast restricted to bidirectional networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CommunicationModel {
    /// Blind broadcast: the message depends on the state only.
    SimpleBroadcast,
    /// The sender knows its current outdegree; the message may depend on
    /// it but is the same on every link (isotropic).
    OutdegreeAware,
    /// Simple broadcast over networks whose links are all bidirectional.
    Symmetric,
    /// The sender addresses each labelled output port individually
    /// (meaningful for static networks only).
    OutputPortAware,
}

impl CommunicationModel {
    /// All four models, in the order of the paper's Table 1 columns.
    pub const ALL: [CommunicationModel; 4] = [
        CommunicationModel::SimpleBroadcast,
        CommunicationModel::OutdegreeAware,
        CommunicationModel::Symmetric,
        CommunicationModel::OutputPortAware,
    ];
}

impl fmt::Display for CommunicationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommunicationModel::SimpleBroadcast => "simple broadcast",
            CommunicationModel::OutdegreeAware => "outdegree awareness",
            CommunicationModel::Symmetric => "symmetric communications",
            CommunicationModel::OutputPortAware => "output port awareness",
        };
        f.write_str(s)
    }
}

/// An anonymous-network algorithm in the most general (output port aware)
/// form: `A = (Q, M, σ, δ)` plus an output projection (§2.2–2.3).
///
/// Determinism and anonymity are structural: the executor calls these
/// methods with nothing but local data, and every agent runs the *same*
/// `Algorithm` value.
///
/// # Contract
///
/// - [`Algorithm::send`] must return exactly `outdegree` messages; message
///   `k` is emitted on output port `k`.
/// - [`Algorithm::transition`] must treat `inbox` as a **multiset**: its
///   result may not depend on the order of the slice. (The executor
///   preserves a deterministic order so runs are reproducible, but any
///   order-sensitivity would be an anonymity violation; tests can check
///   this with shuffled deliveries.)
pub trait Algorithm {
    /// Local state (`Q`).
    type State: Clone + fmt::Debug;
    /// Message alphabet (`M`).
    type Msg: Clone + fmt::Debug;
    /// Output value extracted from the state (the `x_i` of §2.3).
    type Output: Clone + PartialEq + fmt::Debug;

    /// The messages to send, one per output port (`σ(q, d⁻)`).
    ///
    /// `outdegree` counts every outgoing link of the current round,
    /// including the self-loop, and is always at least 1.
    fn send(&self, state: &Self::State, outdegree: usize) -> Vec<Self::Msg>;

    /// The state after receiving `inbox` (`δ(q, multiset)`).
    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State;

    /// [`Algorithm::transition`], additionally told the agent's own
    /// outdegree for the round being folded.
    ///
    /// An output-port-aware automaton already observed `outdegree` when
    /// its round-`t` sending function ran; splitting `σ`/`δ` into two
    /// callbacks artificially lost that information at transition time.
    /// Executors always call this variant with the current round
    /// graph's outdegree. The default ignores it and forwards to
    /// [`Algorithm::transition`], so existing algorithms are
    /// unaffected; quantized algorithms with a residual carry
    /// (`kya_algos::quantized`) override it to recompute the shares
    /// they just sent.
    fn transition_with_outdegree(
        &self,
        state: &Self::State,
        outdegree: usize,
        inbox: &[Self::Msg],
    ) -> Self::State {
        let _ = outdegree;
        self.transition(state, inbox)
    }

    /// The agent's current output.
    fn output(&self, state: &Self::State) -> Self::Output;
}

/// An algorithm for the **outdegree awareness** model: the same message on
/// every link, but the message may depend on the outdegree.
pub trait IsotropicAlgorithm {
    /// Local state.
    type State: Clone + fmt::Debug;
    /// Message alphabet.
    type Msg: Clone + fmt::Debug;
    /// Output value.
    type Output: Clone + PartialEq + fmt::Debug;

    /// The message broadcast to all `outdegree` recipients.
    fn message(&self, state: &Self::State, outdegree: usize) -> Self::Msg;

    /// The state after receiving `inbox` (a multiset; see
    /// [`Algorithm::transition`]).
    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State;

    /// Transition additionally told the round's outdegree (see
    /// [`Algorithm::transition_with_outdegree`]): legitimate in this
    /// model because the sending function `σ: Q x ℕ -> M` already
    /// observes it. Defaults to ignoring the outdegree.
    fn transition_with_outdegree(
        &self,
        state: &Self::State,
        outdegree: usize,
        inbox: &[Self::Msg],
    ) -> Self::State {
        let _ = outdegree;
        self.transition(state, inbox)
    }

    /// The agent's current output.
    fn output(&self, state: &Self::State) -> Self::Output;
}

/// An algorithm for the **simple broadcast** model: the message depends on
/// the local state alone. This is also the sending discipline of the
/// symmetric model (§2.2).
pub trait BroadcastAlgorithm {
    /// Local state.
    type State: Clone + fmt::Debug;
    /// Message alphabet.
    type Msg: Clone + fmt::Debug;
    /// Output value.
    type Output: Clone + PartialEq + fmt::Debug;

    /// The message broadcast blindly to every recipient.
    fn message(&self, state: &Self::State) -> Self::Msg;

    /// The state after receiving `inbox` (a multiset; see
    /// [`Algorithm::transition`]).
    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State;

    /// The agent's current output.
    fn output(&self, state: &Self::State) -> Self::Output;
}

/// Adapter embedding an [`IsotropicAlgorithm`] into the general model:
/// the same message is replicated on every port (§2.2's isotropy
/// condition `σ(q, k)[ℓ] = σ(q, k)[ℓ']`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Isotropic<A>(pub A);

impl<A: IsotropicAlgorithm> Algorithm for Isotropic<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn send(&self, state: &Self::State, outdegree: usize) -> Vec<Self::Msg> {
        vec![self.0.message(state, outdegree); outdegree]
    }

    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State {
        self.0.transition(state, inbox)
    }

    fn transition_with_outdegree(
        &self,
        state: &Self::State,
        outdegree: usize,
        inbox: &[Self::Msg],
    ) -> Self::State {
        self.0.transition_with_outdegree(state, outdegree, inbox)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.0.output(state)
    }
}

/// Adapter embedding a [`BroadcastAlgorithm`] into the general model: the
/// graph-invariance condition `σ(q, k)[ℓ] = σ(q, 1)[1]` of §2.2.
/// `Broadcast` deliberately keeps the default
/// [`Algorithm::transition_with_outdegree`]: a simple-broadcast
/// automaton must not observe its outdegree at any point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Broadcast<A>(pub A);

impl<A: BroadcastAlgorithm> Algorithm for Broadcast<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn send(&self, state: &Self::State, outdegree: usize) -> Vec<Self::Msg> {
        vec![self.0.message(state); outdegree]
    }

    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State {
        self.0.transition(state, inbox)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.0.output(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl BroadcastAlgorithm for Echo {
        type State = i32;
        type Msg = i32;
        type Output = i32;
        fn message(&self, state: &i32) -> i32 {
            *state
        }
        fn transition(&self, state: &i32, _inbox: &[i32]) -> i32 {
            *state
        }
        fn output(&self, state: &i32) -> i32 {
            *state
        }
    }

    struct DegreeTagger;
    impl IsotropicAlgorithm for DegreeTagger {
        type State = usize;
        type Msg = usize;
        type Output = usize;
        fn message(&self, _state: &usize, outdegree: usize) -> usize {
            outdegree
        }
        fn transition(&self, state: &usize, _inbox: &[usize]) -> usize {
            *state
        }
        fn output(&self, state: &usize) -> usize {
            *state
        }
    }

    #[test]
    fn broadcast_replicates_message() {
        let a = Broadcast(Echo);
        assert_eq!(a.send(&7, 3), vec![7, 7, 7]);
        assert_eq!(a.output(&7), 7);
        assert_eq!(a.transition(&7, &[1, 2]), 7);
    }

    #[test]
    fn isotropic_sees_outdegree() {
        let a = Isotropic(DegreeTagger);
        assert_eq!(a.send(&0, 4), vec![4, 4, 4, 4]);
    }

    #[test]
    fn model_display_and_order() {
        assert_eq!(
            CommunicationModel::ALL.map(|m| m.to_string()),
            [
                "simple broadcast",
                "outdegree awareness",
                "symmetric communications",
                "output port awareness"
            ]
        );
    }
}
