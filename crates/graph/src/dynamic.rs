//! Dynamic graphs and the dynamic diameter.
//!
//! A dynamic graph (§2.1) is an infinite sequence `G(1), G(2), ...` of
//! digraphs on a fixed vertex set, each containing every self-loop. The
//! *dynamic diameter* is the smallest `D` such that every window
//! `G(t) ∘ ... ∘ G(t+D-1)` is the complete (reflexive) graph: any agent's
//! information reaches every agent within any `D` consecutive rounds.

use crate::product::{compose, is_complete_reflexive};
use crate::{generators, Digraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;

/// A round-indexed communication topology.
///
/// Implementations must be deterministic functions of the round number so
/// that executions are reproducible (randomized adversaries fix a seed at
/// construction). Rounds are numbered from `1`, matching the paper.
///
/// Graphs returned by [`DynamicGraph::graph`] must contain a self-loop at
/// every vertex; use [`Digraph::with_self_loops`] when implementing.
pub trait DynamicGraph {
    /// Number of agents (constant over time).
    fn n(&self) -> usize;

    /// The communication graph of round `t >= 1`, owned.
    ///
    /// Executors should prefer [`DynamicGraph::graph_ref`], which lets
    /// static and periodic networks lend their phase graph instead of
    /// cloning the full adjacency every round.
    fn graph(&self, t: u64) -> Digraph;

    /// The communication graph of round `t >= 1`, borrowed when the
    /// implementation stores it (static and periodic networks) and owned
    /// otherwise.
    ///
    /// The default forwards to [`DynamicGraph::graph`]; implementations
    /// that keep their round graphs materialized should override it with
    /// `Cow::Borrowed` — the executors call this every round, and the
    /// clone of a large adjacency is pure overhead.
    fn graph_ref(&self, t: u64) -> Cow<'_, Digraph> {
        Cow::Owned(self.graph(t))
    }

    /// An upper bound on the dynamic diameter, if the adversary knows one
    /// by construction.
    fn diameter_hint(&self) -> Option<usize> {
        None
    }
}

/// Boxed dynamic graphs forward to their contents, so the adversary
/// wrappers (which are generic over `G: DynamicGraph`) can stack on top
/// of a `Box<dyn DynamicGraph>` produced by a topology parser.
impl<G: DynamicGraph + ?Sized> DynamicGraph for Box<G> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn graph(&self, t: u64) -> Digraph {
        (**self).graph(t)
    }

    fn graph_ref(&self, t: u64) -> Cow<'_, Digraph> {
        (**self).graph_ref(t)
    }

    fn diameter_hint(&self) -> Option<usize> {
        (**self).diameter_hint()
    }
}

/// A static network: the same graph every round.
///
/// ```
/// use kya_graph::{generators, DynamicGraph, StaticGraph};
/// let net = StaticGraph::new(generators::directed_ring(4));
/// assert_eq!(net.n(), 4);
/// assert!(net.graph(1).has_self_loop(0));
/// ```
#[derive(Clone, Debug)]
pub struct StaticGraph {
    g: Digraph,
}

impl StaticGraph {
    /// Wrap a digraph as a constant dynamic graph (self-loops are added).
    pub fn new(g: Digraph) -> StaticGraph {
        StaticGraph {
            g: g.with_self_loops(),
        }
    }

    /// The underlying static graph (with self-loops).
    pub fn underlying(&self) -> &Digraph {
        &self.g
    }
}

impl DynamicGraph for StaticGraph {
    fn n(&self) -> usize {
        self.g.n()
    }

    fn graph(&self, _t: u64) -> Digraph {
        self.g.clone()
    }

    fn graph_ref(&self, _t: u64) -> Cow<'_, Digraph> {
        Cow::Borrowed(&self.g)
    }

    fn diameter_hint(&self) -> Option<usize> {
        crate::connectivity::diameter(&self.g)
    }
}

/// A periodic dynamic graph cycling through a fixed list of graphs.
#[derive(Clone, Debug)]
pub struct PeriodicGraph {
    phases: Vec<Digraph>,
}

impl PeriodicGraph {
    /// Cycle through `phases` (self-loops are added to each phase).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or the vertex counts differ.
    pub fn new(phases: Vec<Digraph>) -> PeriodicGraph {
        assert!(
            !phases.is_empty(),
            "periodic graph needs at least one phase"
        );
        let n = phases[0].n();
        assert!(
            phases.iter().all(|g| g.n() == n),
            "phases on different vertex sets"
        );
        PeriodicGraph {
            phases: phases.into_iter().map(|g| g.with_self_loops()).collect(),
        }
    }

    /// Number of phases in the period.
    pub fn period(&self) -> usize {
        self.phases.len()
    }

    /// The phase index of round `t`: round 1 is phase 0, and
    /// `graph(t) == graph(t + period)` for every `t >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `t == 0` — rounds are numbered from 1 (§2.1), and a
    /// round-0 query would silently alias phase `period - 1` through the
    /// `(t - 1) % period` wrap-around.
    fn phase_index(&self, t: u64) -> usize {
        assert!(t >= 1, "rounds are numbered from 1");
        ((t - 1) % self.phases.len() as u64) as usize
    }
}

impl DynamicGraph for PeriodicGraph {
    fn n(&self) -> usize {
        self.phases[0].n()
    }

    /// # Panics
    ///
    /// Panics if `t == 0`; see [`PeriodicGraph::phase_index`].
    fn graph(&self, t: u64) -> Digraph {
        self.phases[self.phase_index(t)].clone()
    }

    fn graph_ref(&self, t: u64) -> Cow<'_, Digraph> {
        Cow::Borrowed(&self.phases[self.phase_index(t)])
    }
}

/// A randomized adversary: each round is an independent random strongly
/// connected digraph (Hamiltonian cycle + extra edges), deterministic
/// given the seed and round number.
///
/// Every round being strongly connected, the dynamic diameter is at most
/// `n - 1`.
#[derive(Clone, Debug)]
pub struct RandomDynamicGraph {
    n: usize,
    extra_edges: usize,
    seed: u64,
    symmetric: bool,
}

impl RandomDynamicGraph {
    /// Random strongly connected digraphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn directed(n: usize, extra_edges: usize, seed: u64) -> RandomDynamicGraph {
        assert!(n > 0, "dynamic graph needs at least one vertex");
        RandomDynamicGraph {
            n,
            extra_edges,
            seed,
            symmetric: false,
        }
    }

    /// Random connected bidirectional graphs on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn symmetric(n: usize, extra_pairs: usize, seed: u64) -> RandomDynamicGraph {
        assert!(n > 0, "dynamic graph needs at least one vertex");
        RandomDynamicGraph {
            n,
            extra_edges: extra_pairs,
            seed,
            symmetric: true,
        }
    }
}

impl DynamicGraph for RandomDynamicGraph {
    fn n(&self) -> usize {
        self.n
    }

    fn graph(&self, t: u64) -> Digraph {
        let mut mix = StdRng::seed_from_u64(self.seed ^ t.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let round_seed: u64 = mix.gen();
        let g = if self.symmetric {
            generators::random_bidirectional_connected(self.n, self.extra_edges, round_seed)
        } else {
            generators::random_strongly_connected(self.n, self.extra_edges, round_seed)
        };
        g.with_self_loops()
    }

    fn diameter_hint(&self) -> Option<usize> {
        Some(self.n.saturating_sub(1).max(1))
    }
}

/// A population-protocol-style adversary (§2 footnote 2 of the paper):
/// each round is a random *matching* — disjoint bidirectional pairs —
/// so every vertex has degree zero or one. This is the dynamic,
/// symmetric network class population protocols live in. Random
/// matchings make any pair interact infinitely often with probability 1,
/// and over any window of `O(n log n)` rounds the composed graph is
/// complete with high probability, so the dynamic diameter is finite in
/// practice (though not worst-case bounded — the paper's §6 discusses
/// exactly this weaker connectivity regime).
#[derive(Clone, Debug)]
pub struct PairwiseMatching {
    n: usize,
    seed: u64,
    pairs_per_round: usize,
}

impl PairwiseMatching {
    /// Random matchings on `n` vertices with up to `pairs` disjoint pairs
    /// per round (capped at `n / 2`), deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `pairs == 0`.
    pub fn new(n: usize, pairs: usize, seed: u64) -> PairwiseMatching {
        assert!(n > 0, "population needs at least one agent");
        assert!(pairs > 0, "at least one interaction per round");
        PairwiseMatching {
            n,
            seed,
            pairs_per_round: pairs.min(n / 2),
        }
    }
}

impl DynamicGraph for PairwiseMatching {
    fn n(&self) -> usize {
        self.n
    }

    fn graph(&self, t: u64) -> Digraph {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(self.seed ^ t.wrapping_mul(0xd134_2543_de82_ef95));
        let mut order: Vec<usize> = (0..self.n).collect();
        order.shuffle(&mut rng);
        let mut g = Digraph::new(self.n);
        for pair in order.chunks_exact(2).take(self.pairs_per_round) {
            g.add_edge(pair[0], pair[1]);
            g.add_edge(pair[1], pair[0]);
        }
        g.with_self_loops()
    }
}

/// A pluggable fairness condition for [`PairingScheduler`]: given the
/// population size, the round number, and the scheduler seed, produce the
/// disjoint pairs that interact this round.
///
/// Implementations must be pure functions of `(n, t, seed)` so schedules
/// are reproducible, and must return *disjoint* pairs of distinct agents
/// (a matching). The two canonical conditions from the population-protocol
/// literature (Angluin et al.) are provided: [`UniformRandom`] (each round
/// an independent uniformly random matching — fair with probability 1) and
/// [`RoundRobinCover`] (a deterministic round-robin tournament covering
/// every pair within a bounded window — fair by construction).
pub trait Fairness {
    /// The disjoint interaction pairs of round `t >= 1`.
    fn pairs(&self, n: usize, t: u64, seed: u64) -> Vec<(usize, usize)>;

    /// A short label naming the condition (used in topology labels).
    fn label(&self) -> &'static str;
}

/// Uniformly random matchings: each round, shuffle the agents and pair
/// them off greedily, keeping up to `pairs` interactions. Every pair of
/// agents interacts infinitely often with probability 1 — the standard
/// probabilistic fairness of population protocols.
#[derive(Clone, Copy, Debug)]
pub struct UniformRandom {
    pairs: usize,
}

impl UniformRandom {
    /// Up to `pairs` disjoint interactions per round.
    ///
    /// # Panics
    ///
    /// Panics if `pairs == 0`.
    pub fn new(pairs: usize) -> UniformRandom {
        assert!(pairs > 0, "at least one interaction per round");
        UniformRandom { pairs }
    }
}

impl Fairness for UniformRandom {
    fn pairs(&self, n: usize, t: u64, seed: u64) -> Vec<(usize, usize)> {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed ^ t.wrapping_mul(0xa0761d6478bd642f));
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        order
            .chunks_exact(2)
            .take(self.pairs.min(n / 2))
            .map(|p| (p[0], p[1]))
            .collect()
    }

    fn label(&self) -> &'static str {
        "uniform"
    }
}

/// Deterministic round-robin tournament fairness (the circle method):
/// with `m = n` rounded up to even, round `t` plays the `((t-1) mod
/// (m-1))`-th tournament round, so **every** pair of agents interacts at
/// least once in any window of `m - 1` consecutive rounds. For odd `n`
/// the ghost player's opponent sits the round out. This is the strongest
/// (bounded) fairness condition: the composed interaction graph over any
/// `m - 1` rounds is complete.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundRobinCover;

impl Fairness for RoundRobinCover {
    fn pairs(&self, n: usize, t: u64, _seed: u64) -> Vec<(usize, usize)> {
        if n < 2 {
            return Vec::new();
        }
        // Circle method: fix player m-1, rotate the rest. Pairs of round
        // r (0-indexed): (m-1, r) and ((r+i) mod (m-1), (r+m-1-i) mod
        // (m-1)) for i in 1..m/2. Agents >= n are the ghost for odd n.
        let m = n + n % 2;
        let r = ((t - 1) % (m as u64 - 1)) as usize;
        let mut out = Vec::with_capacity(m / 2);
        if m - 1 < n {
            out.push((m - 1, r));
        }
        for i in 1..m / 2 {
            let a = (r + i) % (m - 1);
            let b = (r + m - 1 - i) % (m - 1);
            if a < n && b < n {
                out.push((a, b));
            }
        }
        out
    }

    fn label(&self) -> &'static str {
        "cover"
    }
}

/// An Angluin-style population-protocol scheduler: each round a matching
/// of pairwise interactions chosen by a pluggable [`Fairness`] condition.
///
/// This generalizes [`PairwiseMatching`] (which is the uniform-random
/// special case with its own legacy salt): the fairness condition decides
/// *which* pairs meet, and the scheduler materializes each interaction as
/// a bidirectional edge (population-protocol interactions are symmetric
/// exchanges in our communication-model reading). Composes freely with
/// the masking adversaries — `FaultyNetwork`, churn masking, and
/// `AsyncStarts` all wrap any `DynamicGraph`, this one included.
#[derive(Clone, Debug)]
pub struct PairingScheduler<F> {
    n: usize,
    fairness: F,
    seed: u64,
}

impl<F: Fairness> PairingScheduler<F> {
    /// Schedule pairwise interactions over `n` agents under `fairness`,
    /// deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, fairness: F, seed: u64) -> PairingScheduler<F> {
        assert!(n > 0, "population needs at least one agent");
        PairingScheduler { n, fairness, seed }
    }

    /// The fairness condition in use.
    pub fn fairness(&self) -> &F {
        &self.fairness
    }
}

impl<F: Fairness> DynamicGraph for PairingScheduler<F> {
    fn n(&self) -> usize {
        self.n
    }

    fn graph(&self, t: u64) -> Digraph {
        let mut g = Digraph::new(self.n);
        for (a, b) in self.fairness.pairs(self.n, t, self.seed) {
            debug_assert!(a != b && a < self.n && b < self.n);
            g.add_edge(a, b);
            g.add_edge(b, a);
        }
        g.with_self_loops()
    }
}

/// The weak-connectivity regime of the paper's §6: a network that is
/// *never permanently split* yet has **no finite dynamic diameter** —
/// communication happens only at scheduled rounds, with idle (self-loop
/// only) rounds in between whose gaps grow without bound.
///
/// At the `k`-th scheduled round the graph is a random connected
/// topology; everywhere else it is edgeless (self-loops only). With the
/// default geometric schedule (`gap(k) = base_gap * 2^k`), every pair of
/// agents still communicates infinitely often, but no window length `D`
/// ever guarantees full mixing — exactly the class where the paper asks
/// which computability results survive (Moreau's theorem covers the
/// symmetric algorithms; the outdegree-aware case is open).
#[derive(Clone, Debug)]
pub struct SparselyConnected<G> {
    inner: G,
    schedule: Vec<u64>,
}

impl<G: DynamicGraph> SparselyConnected<G> {
    /// Communicate (using `inner`'s round-`t` graph) only at rounds
    /// `t_1 < t_2 < ...` with geometrically growing gaps:
    /// `t_{k+1} = t_k + base_gap * 2^k`, starting at round 1, until
    /// `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `base_gap == 0`.
    pub fn geometric(inner: G, base_gap: u64, horizon: u64) -> SparselyConnected<G> {
        assert!(base_gap >= 1, "gaps must be positive");
        let mut schedule = Vec::new();
        let mut t = 1u64;
        let mut gap = base_gap;
        while t <= horizon {
            schedule.push(t);
            t = t.saturating_add(gap);
            gap = gap.saturating_mul(2);
        }
        SparselyConnected { inner, schedule }
    }

    /// The scheduled communication rounds.
    pub fn schedule(&self) -> &[u64] {
        &self.schedule
    }
}

impl<G: DynamicGraph> DynamicGraph for SparselyConnected<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn graph(&self, t: u64) -> Digraph {
        if self.schedule.binary_search(&t).is_ok() {
            self.inner.graph(t)
        } else {
            Digraph::new(self.inner.n()).with_self_loops()
        }
    }
}

/// Measure the dynamic diameter over the window `[1, t_max]`: the smallest
/// `D <= d_max` such that for every `t` with `t + D - 1 <= t_max`, the
/// product `G(t) ∘ ... ∘ G(t+D-1)` is complete-reflexive. Returns `None`
/// if no such `D` exists within the bounds.
///
/// For a [`StaticGraph`] this equals the static diameter (checked by
/// tests), and for genuinely dynamic adversaries it is the empirical
/// counterpart of the paper's dynamic diameter.
pub fn measured_dynamic_diameter(
    net: &dyn DynamicGraph,
    t_max: u64,
    d_max: usize,
) -> Option<usize> {
    'outer: for d in 1..=d_max {
        let mut t = 1u64;
        while t + d as u64 - 1 <= t_max {
            let mut acc = net.graph_ref(t).into_owned();
            for s in 1..d {
                acc = compose(&acc, &net.graph_ref(t + s as u64));
            }
            if !is_complete_reflexive(&acc) {
                continue 'outer;
            }
            t += 1;
        }
        return Some(d);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_graph_diameter_matches() {
        let net = StaticGraph::new(generators::directed_ring(5));
        assert_eq!(net.diameter_hint(), Some(4));
        assert_eq!(measured_dynamic_diameter(&net, 10, 10), Some(4));
    }

    #[test]
    fn periodic_alternation() {
        // Alternate between two halves of a ring; union over 2 rounds is
        // the whole ring, so the dynamic diameter is finite but larger
        // than either phase alone allows.
        let n = 4;
        let mut even = Digraph::new(n);
        let mut odd = Digraph::new(n);
        for i in 0..n {
            let j = (i + 1) % n;
            if i % 2 == 0 {
                even.add_edge(i, j);
            } else {
                odd.add_edge(i, j);
            }
        }
        let net = PeriodicGraph::new(vec![even, odd]);
        assert_eq!(net.period(), 2);
        let d = measured_dynamic_diameter(&net, 20, 20).expect("finite dynamic diameter");
        assert!(d >= 4, "alternation cannot beat the full ring, got {d}");
    }

    #[test]
    fn periodic_graph_indexing() {
        let a = generators::directed_ring(3);
        let b = generators::complete(3);
        let net = PeriodicGraph::new(vec![a.clone(), b.clone()]);
        // Round 1 -> phase 0, round 2 -> phase 1, round 3 -> phase 0.
        assert_eq!(net.graph(1).edge_count(), net.graph(3).edge_count());
        assert!(net.graph(2).edge_count() > net.graph(1).edge_count());
    }

    #[test]
    #[should_panic(expected = "rounds are numbered from 1")]
    fn periodic_graph_rejects_round_zero() {
        let net = PeriodicGraph::new(vec![generators::directed_ring(3)]);
        let _ = net.graph(0);
    }

    #[test]
    fn graph_ref_matches_graph() {
        let ring = generators::directed_ring(5);
        let statics = StaticGraph::new(ring.clone());
        let periodic = PeriodicGraph::new(vec![ring, generators::complete(5)]);
        let random = RandomDynamicGraph::directed(5, 2, 9);
        let nets: [&dyn DynamicGraph; 3] = [&statics, &periodic, &random];
        for net in nets {
            for t in 1..=6 {
                assert_eq!(net.graph_ref(t).as_ref(), &net.graph(t), "round {t}");
            }
        }
        // The borrowing accessors actually borrow.
        assert!(matches!(statics.graph_ref(3), Cow::Borrowed(_)));
        assert!(matches!(periodic.graph_ref(3), Cow::Borrowed(_)));
    }

    #[test]
    fn pairwise_matching_is_degree_at_most_one() {
        let pop = PairwiseMatching::new(7, 3, 5);
        for t in 1..=10 {
            let g = pop.graph(t);
            assert!(g.is_bidirectional());
            for v in 0..7 {
                // Self-loop plus at most one partner.
                assert!(g.outdegree(v) <= 2, "round {t} vertex {v}");
                assert!(g.has_self_loop(v));
            }
        }
        // Deterministic.
        assert_eq!(
            pop.graph(4).edges(),
            PairwiseMatching::new(7, 3, 5).graph(4).edges()
        );
    }

    #[test]
    fn pairwise_matching_mixes_eventually() {
        // Over enough rounds the composed graph becomes complete: the
        // empirical dynamic diameter is finite.
        let pop = PairwiseMatching::new(6, 3, 11);
        let d = measured_dynamic_diameter(&pop, 120, 80).expect("mixes");
        assert!(
            d >= 3,
            "matchings cannot mix in fewer rounds than pairs allow"
        );
    }

    #[test]
    fn uniform_pairing_is_a_matching_and_deterministic() {
        let net = PairingScheduler::new(9, UniformRandom::new(4), 77);
        for t in 1..=12 {
            let g = net.graph(t);
            assert!(g.is_bidirectional());
            for v in 0..9 {
                assert!(g.has_self_loop(v));
                assert!(g.outdegree(v) <= 2, "round {t} vertex {v} degree");
            }
        }
        let again = PairingScheduler::new(9, UniformRandom::new(4), 77);
        assert_eq!(net.graph(5).edges(), again.graph(5).edges());
        // A different seed reshuffles.
        let other = PairingScheduler::new(9, UniformRandom::new(4), 78);
        assert!((1..=20).any(|t| net.graph(t).edges() != other.graph(t).edges()));
    }

    #[test]
    fn round_robin_cover_hits_every_pair_within_the_window() {
        for n in [2usize, 3, 4, 5, 6, 7, 8] {
            let m = n + n % 2;
            let net = PairingScheduler::new(n, RoundRobinCover, 0);
            let mut seen = vec![vec![false; n]; n];
            for t in 1..m as u64 {
                let g = net.graph(t);
                assert!(g.is_bidirectional());
                for v in 0..n {
                    assert!(g.outdegree(v) <= 2, "matching per round");
                }
                for (a, b) in RoundRobinCover.pairs(n, t, 0) {
                    assert_ne!(a, b);
                    seen[a][b] = true;
                    seen[b][a] = true;
                }
            }
            for (a, row) in seen.iter().enumerate() {
                for (b, &hit) in row.iter().enumerate() {
                    assert!(a == b || hit, "n={n}: pair ({a},{b}) missed");
                }
            }
            // The schedule is periodic with period m - 1.
            assert_eq!(
                net.graph(1).edges(),
                net.graph(m as u64).edges(),
                "n={n}: period m-1"
            );
        }
    }

    #[test]
    fn pairing_scheduler_mixes_under_both_fairness_conditions() {
        let uniform = PairingScheduler::new(6, UniformRandom::new(3), 11);
        assert!(measured_dynamic_diameter(&uniform, 120, 80).is_some());
        let cover = PairingScheduler::new(6, RoundRobinCover, 0);
        let d = measured_dynamic_diameter(&cover, 40, 30).expect("cover mixes");
        assert!(d >= 3, "pairwise interactions cannot mix instantly");
    }

    #[test]
    fn sparse_connectivity_has_unbounded_gaps() {
        let inner = RandomDynamicGraph::symmetric(5, 2, 3);
        let sparse = SparselyConnected::geometric(inner, 2, 1000);
        let sched = sparse.schedule().to_vec();
        assert_eq!(&sched[..4], &[1, 3, 7, 15]);
        // Idle rounds are self-loop only.
        let idle = sparse.graph(2);
        assert_eq!(idle.edge_count(), 5);
        assert!((0..5).all(|v| idle.has_self_loop(v)));
        // Scheduled rounds carry the inner topology.
        assert!(sparse.graph(3).edge_count() > 5);
        // No finite dynamic diameter within any growing window: the gap
        // between consecutive communications eventually exceeds any D.
        let gaps: Vec<u64> = sched.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.windows(2).all(|w| w[1] >= w[0]));
        assert!(*gaps.last().unwrap() > 64);
    }

    #[test]
    fn random_dynamic_is_deterministic_and_connected() {
        let net = RandomDynamicGraph::directed(8, 4, 42);
        assert_eq!(net.graph(7).edges(), net.graph(7).edges());
        for t in 1..=5 {
            assert!(crate::connectivity::is_strongly_connected(&net.graph(t)));
        }
        let d = measured_dynamic_diameter(&net, 12, 8).expect("connected every round");
        assert!(d <= 7);
        let sym = RandomDynamicGraph::symmetric(6, 2, 7);
        for t in 1..=5 {
            assert!(sym.graph(t).is_bidirectional());
        }
    }
}
