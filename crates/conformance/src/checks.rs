//! The differential oracles, one per check kind.
//!
//! Every oracle is a pure function of the harness [`CellCtx`]: the cell
//! names a topology, an algorithm, and a derived seed, and the oracle
//! returns a pass/fail [`CellOutcome`] whose details are deterministic —
//! so the whole matrix serializes to byte-identical NDJSON at any
//! `--workers N`, which the CI job diffs.

use crate::fingerprint::Fingerprint;
use crate::nets::{build_net, lift_ring};
use kya_algos::certified::{
    CertifiedFrequencyState, CertifiedPushSum, CertifiedPushSumFrequency, CertifiedPushSumState,
    EscalationStats, LazyFrequencyState, LazyPushSumExact, LazyPushSumFrequencyExact,
    LazyPushSumState,
};
use kya_algos::gossip::SetGossip;
use kya_algos::lifting::check_lifting;
use kya_algos::metropolis::Metropolis;
use kya_algos::min_base::{DepthCapped, MinBaseBroadcast, ViewState};
use kya_algos::push_sum::{
    total_mass, FrequencyState, PushSum, PushSumExact, PushSumExactState, PushSumFrequency,
    PushSumFrequencyExact, PushSumState, SelfHealingPushSum,
};
use kya_algos::quantized::{QuantizedMetropolis, QuantizedPushSum};
use kya_arith::{BigInt, BigRational};
use kya_graph::{Digraph, DynamicGraph, StaticGraph};
use kya_harness::{parse_graph, CellCtx, CellOutcome, ChurnSpec};
use kya_runtime::churn::ChurnMasked;
use kya_runtime::faults::{FaultPlan, FaultyExecution, FaultyNetwork, Lossy};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::telemetry::{CountingObserver, NullObserver, Observer};
use kya_runtime::{
    Algorithm, Backend, BandwidthCap, Broadcast, ByteLedger, CountingProbe, Execution,
    FlatAlgorithm, FlatExecution, FlatRunConfig, Isotropic, MessageCodec, RunConfig,
};
use std::cell::{Cell, RefCell};

/// The oracle kinds, in the fixed order `kya check` runs them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// (b) Byte-identical state streams across all execution paths.
    Paths,
    /// (a) Every f64 output lies in a machine-checked interval enclosure
    /// of the algorithm (directed rounding), escalating to lazy exact ℚ
    /// replay when an enclosure cannot certify — no heuristic tolerance.
    Backend,
    /// (c) Vertex-relabeling equivariance.
    Relabel,
    /// (c) Mass conservation under graph- and message-level faults.
    Mass,
    /// (c) Lift/base indistinguishability along a ring fibration.
    Lift,
    /// (c) Mass conservation, frozen absence, and stabilization under
    /// the combined pairing + churn + faults stack.
    Churn,
    /// (b) Flat (SoA/CSR) executor bitwise identical to the boxed
    /// executor at 1, 2 and 4 threads.
    Flat,
    /// (b) Probed flat runs: the deterministic probe stream (merged
    /// shard counters + strided sample digests) byte-identical at 1, 2
    /// and 4 threads, and the counters equal to the routing plan's
    /// ground truth.
    Probe,
    /// (c) Bounded-bandwidth laws of the quantized variants: every
    /// payload a `b`-bit cell broadcasts is a codeword (audited message
    /// by message), token mass is conserved exactly in ℚ, the f64
    /// trajectory coincides bitwise with the exact token ratios and
    /// stays within the `ℚ_{2^b}` grid envelope, flat ≡ boxed bitwise
    /// at 1/2/4 threads with identical byte ledgers, and the `b = ∞`
    /// rung reproduces the uncapped run bitwise.
    Bandwidth,
}

impl CheckKind {
    /// The check's CLI name, as accepted by `kya check --only`.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::Paths => "paths",
            CheckKind::Backend => "backend",
            CheckKind::Relabel => "relabel",
            CheckKind::Mass => "mass",
            CheckKind::Lift => "lift",
            CheckKind::Churn => "churn",
            CheckKind::Flat => "flat",
            CheckKind::Probe => "probe",
            CheckKind::Bandwidth => "bandwidth",
        }
    }

    /// Parse a CLI check name (the inverse of [`CheckKind::name`]).
    pub fn parse(s: &str) -> Option<CheckKind> {
        [
            CheckKind::Paths,
            CheckKind::Backend,
            CheckKind::Relabel,
            CheckKind::Mass,
            CheckKind::Lift,
            CheckKind::Churn,
            CheckKind::Flat,
            CheckKind::Probe,
            CheckKind::Bandwidth,
        ]
        .into_iter()
        .find(|k| k.name() == s)
    }

    /// Dispatch a cell to its oracle.
    pub fn run(self, ctx: &CellCtx) -> CellOutcome {
        match self {
            CheckKind::Paths => check_paths(ctx),
            CheckKind::Backend => check_backend(ctx),
            CheckKind::Relabel => check_relabel(ctx),
            CheckKind::Mass => check_mass(ctx),
            CheckKind::Lift => check_lift(ctx),
            CheckKind::Churn => check_churn(ctx),
            CheckKind::Flat => check_flat(ctx),
            CheckKind::Probe => check_probe(ctx),
            CheckKind::Bandwidth => check_bandwidth(ctx),
        }
    }
}

/// Heuristic rounding tolerance for the *non-backend* f64 oracles
/// (relabel equivariance, self-healing mass): every round performs an
/// `O(n)`-term f64 accumulation, each operation contributing at most one
/// ulp of relative error on magnitudes bounded by `scale`, and
/// first-order error compounds linearly in the round count —
/// `tol = c · rounds · n · ε_mach · scale` with safety factor `c = 8`,
/// floored at `32 · ε_mach · scale` so a degenerate cell (`rounds == 0`
/// or `n == 0`) still tolerates the handful of roundings its setup and
/// measurement perform instead of demanding bitwise equality by
/// accident.
///
/// The backend oracle no longer uses this model at all: it certifies
/// each f64 output against a machine-checked [`kya_arith::Enclosure`]
/// (see [`CheckKind::Backend`]).
pub fn f64_tolerance(rounds: u64, n: usize, scale: f64) -> f64 {
    let scale = scale.max(1.0);
    let linear = 8.0 * rounds as f64 * n as f64 * f64::EPSILON * scale;
    linear.max(32.0 * f64::EPSILON * scale)
}

/// `splitmix64` finalizer — the same mixer the harness uses for cell
/// seeds, reused to derive deterministic per-cell input values.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small input values in `1..=9` (repeats on purpose — the frequency
/// solvers need collisions to be interesting).
fn vals_u64(seed: u64, n: usize) -> Vec<u64> {
    (0..n).map(|i| 1 + mix(seed ^ (i as u64 + 1)) % 9).collect()
}

/// Full-precision f64 inputs in `(0, 1)`: every mantissa bit is live, so
/// any reordering of a 3-term-or-longer sum almost surely changes the
/// rounding — what the paths oracle needs to catch delivery-order bugs.
fn vals_f64(seed: u64, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (mix(seed ^ (i as u64 + 0x9e37)) >> 11) as f64 / (1u64 << 53) as f64 + 0.25)
        .collect()
}

fn fail(msg: impl Into<String>) -> CellOutcome {
    CellOutcome::new().ok(false).detail("error", msg.into())
}

// ---------------------------------------------------------------------
// (b) Path agreement
// ---------------------------------------------------------------------

/// Run the five entry points side by side and demand bit-identical
/// global states after every round: `step` (the reference), the
/// destination-sharded `step_parallel`, `step_observed`, the sequential-
/// routing `step_parallel_observed`, and `FaultyExecution` under a
/// quiescent plan. f64 `Debug` is shortest-roundtrip, so equal renderings
/// mean equal bit patterns.
fn paths_agree<A>(
    algo: A,
    inits: Vec<A::State>,
    net: &dyn DynamicGraph,
    rounds: u64,
) -> Result<u64, String>
where
    A: Algorithm + Clone + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let mut seq = Execution::new(algo.clone(), inits.clone());
    let mut par = Execution::new(algo.clone(), inits.clone());
    let mut obs = Execution::new(algo.clone(), inits.clone());
    let mut par_obs = Execution::new(algo.clone(), inits.clone());
    let mut faulty = FaultyExecution::new(Lossy(algo), inits, FaultPlan::new(0));
    let mut counter = CountingObserver::new();
    let mut fp = Fingerprint::new();
    for t in 1..=rounds {
        let g = net.graph_ref(t);
        seq.step(&g);
        par.step_parallel(&g, 3);
        obs.step_observed(&g, &mut counter);
        par_obs.step_parallel_observed(&g, 2, &mut NullObserver);
        faulty.step(&g);
        let canon = format!("{:?}", seq.states());
        let others = [
            ("step_parallel", format!("{:?}", par.states())),
            ("step_observed", format!("{:?}", obs.states())),
            ("step_parallel_observed", format!("{:?}", par_obs.states())),
            ("faulty_quiescent", format!("{:?}", faulty.states())),
        ];
        for (name, rendered) in others {
            if rendered != canon {
                return Err(format!(
                    "round {t}: `{name}` diverged bitwise from sequential `step`"
                ));
            }
        }
        fp.absorb(seq.states());
    }
    Ok(fp.digest())
}

fn check_paths(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let net = match build_net(&cell.topology) {
        Ok(net) => net,
        Err(e) => return fail(e.0),
    };
    let n = net.n();
    let rounds = ctx.rounds();
    let seed = cell.cell_seed;
    let vals = vals_u64(seed, n);
    let res = match cell.algorithm.as_str() {
        "pushsum" => paths_agree(
            Isotropic(PushSum),
            PushSumState::averaging(&vals_f64(seed, n)),
            net.as_ref(),
            rounds,
        ),
        "metropolis" => paths_agree(
            Isotropic(Metropolis),
            vals_f64(seed, n),
            net.as_ref(),
            rounds,
        ),
        "gossip" => paths_agree(
            Broadcast(SetGossip),
            SetGossip::initial(&vals),
            net.as_ref(),
            rounds,
        ),
        "pushsum-freq" => paths_agree(
            Isotropic(PushSumFrequency::frequency()),
            FrequencyState::initial(&vals),
            net.as_ref(),
            rounds,
        ),
        "pushsum-leader" => {
            let leaders: Vec<bool> = (0..n).map(|v| v == 0).collect();
            paths_agree(
                Isotropic(PushSumFrequency::with_leaders(1)),
                FrequencyState::initial_with_leaders(&vals, &leaders),
                net.as_ref(),
                rounds,
            )
        }
        "minbase" => paths_agree(
            DepthCapped::new(Broadcast(MinBaseBroadcast), 3),
            ViewState::initial(&vals),
            net.as_ref(),
            rounds.min(8), // views grow with depth; 8 rounds saturate the cap
        ),
        other => return fail(format!("unknown paths algorithm `{other}`")),
    };
    match res {
        Ok(digest) => CellOutcome::new()
            .ok(true)
            .detail("digest", format!("{digest:016x}")),
        Err(e) => fail(e),
    }
}

// ---------------------------------------------------------------------
// (b') Flat engine vs boxed executor
// ---------------------------------------------------------------------

/// Run the boxed sequential executor (the canon) against the flat
/// SoA/CSR executor at 1, 2 and 4 threads and demand bit-identical
/// states after every round. `lanes` projects a boxed state onto its
/// flat state lanes; f64 `to_bits` equality is the comparison, so this
/// is exactly the "flat-vs-boxed" differential oracle of the flat
/// engine's determinism contract.
fn flat_agree<A, F, L>(
    algo: A,
    flat: F,
    inits: Vec<A::State>,
    lanes: L,
    g: &Digraph,
    rounds: u64,
) -> Result<u64, String>
where
    A: Algorithm,
    F: FlatAlgorithm + Clone,
    L: Fn(&A::State) -> Vec<f64>,
{
    let columns: Vec<Vec<f64>> = (0..F::STATE_LANES)
        .map(|l| inits.iter().map(|s| lanes(s)[l]).collect())
        .collect();
    let mut boxed = Execution::new(algo, inits);
    let mut flats: Vec<(usize, FlatExecution<F>)> = [1usize, 2, 4]
        .iter()
        .map(|&t| (t, FlatExecution::new(flat.clone(), g, columns.clone())))
        .collect();
    let mut fp = Fingerprint::new();
    for t in 1..=rounds {
        boxed.step(g);
        for (threads, exec) in &mut flats {
            exec.step_threads(*threads);
            for (v, state) in boxed.states().iter().enumerate() {
                let canon = lanes(state);
                for (l, c) in canon.iter().enumerate().take(F::STATE_LANES) {
                    if c.to_bits() != exec.lane(l)[v].to_bits() {
                        return Err(format!(
                            "round {t}: flat engine at {threads} thread(s) diverged \
                             bitwise from boxed `step` at agent {v} lane {l}"
                        ));
                    }
                }
            }
        }
        fp.absorb(boxed.states());
    }
    Ok(fp.digest())
}

fn check_flat(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    // The flat engine runs on static graphs; close the self-loops once,
    // the same closure `StaticGraph::new` applies for the boxed path.
    // `instar` is the conformance-local worst case (see `nets::instar`);
    // everything else parses through the shared harness families.
    let open = if cell.topology == format!("instar:{}", cell.n) {
        Ok(crate::nets::instar(cell.n))
    } else {
        parse_graph(&cell.topology)
    };
    let g = match open {
        Ok(g) => g.with_self_loops(),
        Err(e) => return fail(e.0),
    };
    let n = g.n();
    let rounds = ctx.rounds();
    let seed = cell.cell_seed;
    let res = match cell.algorithm.as_str() {
        "pushsum" => flat_agree(
            Isotropic(PushSum),
            PushSum,
            PushSumState::averaging(&vals_f64(seed, n)),
            |s: &PushSumState| vec![s.y, s.z],
            &g,
            rounds,
        ),
        "metropolis" => flat_agree(
            Isotropic(Metropolis),
            Metropolis,
            vals_f64(seed, n),
            |s: &f64| vec![*s],
            &g,
            rounds,
        ),
        other => return fail(format!("unknown flat algorithm `{other}`")),
    };
    match res {
        Ok(digest) => CellOutcome::new()
            .ok(true)
            .detail("digest", format!("{digest:016x}")),
        Err(e) => fail(e),
    }
}

/// Run the same probed flat execution at 1, 2 and 4 threads and demand
/// the [`CountingProbe`] NDJSON streams — merged per-round counters plus
/// the bit-exact strided sample digests — are **byte-identical**, then
/// check the counters against the routing plan's ground truth: every
/// round delivers exactly `plan.slots()` messages and touches exactly
/// `slots × MSG_LANES × 8` arena bytes. Returns the fingerprint of the
/// (shared) stream.
fn probe_streams_agree<F: FlatAlgorithm + Clone>(
    flat: F,
    columns: Vec<Vec<f64>>,
    g: &Digraph,
    rounds: u64,
) -> Result<u64, String> {
    let mut baseline: Option<String> = None;
    for t in [1usize, 2, 4] {
        let mut exec = FlatExecution::new(flat.clone(), g, columns.clone());
        let mut probe = CountingProbe::new();
        exec.run_probed(rounds, t, &mut probe);
        let slots = exec.plan().slots() as u64;
        let s = probe.summary();
        if s.rounds != rounds {
            return Err(format!(
                "probe at {t} thread(s) saw {} rounds, expected {rounds}",
                s.rounds
            ));
        }
        if s.messages_routed != rounds * slots {
            return Err(format!(
                "probe at {t} thread(s) counted {} routed messages, \
                 plan ground truth is {}",
                s.messages_routed,
                rounds * slots
            ));
        }
        let arena = slots * (F::MSG_LANES * std::mem::size_of::<f64>()) as u64;
        for e in probe.events() {
            if e.messages_routed != slots || e.arena_bytes != arena {
                return Err(format!(
                    "round {}: probe at {t} thread(s) reported {} messages / \
                     {} arena bytes, plan ground truth is {slots} / {arena}",
                    e.round, e.messages_routed, e.arena_bytes
                ));
            }
        }
        let stream = probe.to_ndjson();
        match &baseline {
            None => baseline = Some(stream),
            Some(b) if *b != stream => {
                return Err(format!(
                    "probe stream at {t} thread(s) differs bytewise from 1 thread"
                ));
            }
            Some(_) => {}
        }
    }
    let mut fp = Fingerprint::new();
    fp.absorb(baseline.unwrap_or_default().as_bytes());
    Ok(fp.digest())
}

fn check_probe(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let open = if cell.topology == format!("instar:{}", cell.n) {
        Ok(crate::nets::instar(cell.n))
    } else {
        parse_graph(&cell.topology)
    };
    let g = match open {
        Ok(g) => g.with_self_loops(),
        Err(e) => return fail(e.0),
    };
    let n = g.n();
    let rounds = ctx.rounds();
    let seed = cell.cell_seed;
    let res = match cell.algorithm.as_str() {
        "pushsum" => probe_streams_agree(
            PushSum,
            PushSumState::columns(&PushSumState::averaging(&vals_f64(seed, n))),
            &g,
            rounds,
        ),
        "metropolis" => probe_streams_agree(Metropolis, vec![vals_f64(seed, n)], &g, rounds),
        other => return fail(format!("unknown probe algorithm `{other}`")),
    };
    match res {
        Ok(digest) => CellOutcome::new()
            .ok(true)
            .detail("digest", format!("{digest:016x}")),
        Err(e) => fail(e),
    }
}

// ---------------------------------------------------------------------
// (b'') Bounded bandwidth — quantized variants under b-bit caps
// ---------------------------------------------------------------------

/// Observer auditing the structural cap: every payload lane of every
/// broadcast message must be a valid codeword (a nonnegative integer at
/// most `2^b - 1`). Records the first violation instead of panicking so
/// the cell fails with a deterministic NDJSON detail.
struct CapAudit {
    max: f64,
    payload_lanes: usize,
    violation: Option<String>,
}

impl CapAudit {
    fn new(codec: MessageCodec, payload_lanes: usize) -> CapAudit {
        CapAudit {
            max: codec.max_codeword() as f64,
            payload_lanes,
            violation: None,
        }
    }
}

impl<A: Algorithm<Msg = (f64, f64)>> Observer<A> for CapAudit {
    fn on_message(&mut self, round: u64, src: usize, _dst: usize, msg: &(f64, f64)) {
        let lanes = [msg.0, msg.1];
        for (l, &w) in lanes.iter().enumerate().take(self.payload_lanes) {
            let is_codeword = w >= 0.0 && w.fract() == 0.0 && w <= self.max;
            if !is_codeword && self.violation.is_none() {
                self.violation = Some(format!(
                    "round {round}: agent {src} lane {l} payload {w} is not a \
                     codeword (max {})",
                    self.max
                ));
            }
        }
    }
}

/// The `b = ∞` arm: the `bandwidth` rung with [`BandwidthCap::Unlimited`]
/// must be a pure observer — the metered run is bitwise identical to the
/// plain run (f64 `Debug` is shortest-roundtrip) and the ledger charges
/// the full 64 bits per edge per round.
fn unlimited_rung_is_pure<A>(
    algo: A,
    inits: Vec<A::State>,
    g: &Digraph,
    rounds: u64,
) -> Result<u64, String>
where
    A: Algorithm + Clone + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let net = StaticGraph::new(g.clone());
    let mut plain = Execution::new(algo.clone(), inits.clone());
    plain.drive(&net, RunConfig::rounds(rounds));
    let ledger = ByteLedger::new();
    let mut metered = Execution::new(algo, inits);
    metered.drive(
        &net,
        RunConfig::rounds(rounds).bandwidth(BandwidthCap::Unlimited, &ledger),
    );
    if format!("{:?}", plain.states()) != format!("{:?}", metered.states()) {
        return Err("b = inf rung changed the trajectory (must be a pure observer)".into());
    }
    let expected = rounds * g.edge_count() as u64 * 64;
    if ledger.total_bits() != expected {
        return Err(format!(
            "b = inf ledger charged {} bits, expected {expected}",
            ledger.total_bits()
        ));
    }
    let mut fp = Fingerprint::new();
    fp.absorb(plain.states());
    Ok(fp.digest())
}

/// The shared capped-arm laws, after the algorithm-specific boxed run:
/// exact ℚ token-mass conservation, the f64 output bitwise equal to the
/// correctly-rounded exact token ratio, the ratio within the `ℚ_{2^b}`
/// grid envelope of [`MessageCodec::snap`], and ledger totals equal to
/// `rounds × edges × b` on both executors.
#[allow(clippy::too_many_arguments)] // one flat law list, named inline
fn capped_laws(
    codec: MessageCodec,
    ratios: &[(u64, u64)],
    outputs: &[f64],
    mass_before: BigRational,
    mass_after: BigRational,
    boxed_ledger: &ByteLedger,
    flat_ledger: &ByteLedger,
    edges: u64,
    rounds: u64,
) -> Result<BigRational, String> {
    if mass_after != mass_before {
        return Err(format!(
            "exact token mass drifted: {mass_before} -> {mass_after}"
        ));
    }
    let expected = rounds * edges * codec.bits() as u64;
    if boxed_ledger.total_bits() != expected {
        return Err(format!(
            "boxed ledger charged {} bits, expected {expected}",
            boxed_ledger.total_bits()
        ));
    }
    if flat_ledger.total_bits() != boxed_ledger.total_bits() {
        return Err(format!(
            "flat ledger ({} bits) disagrees with boxed ledger ({} bits)",
            flat_ledger.total_bits(),
            boxed_ledger.total_bits()
        ));
    }
    let exact: Vec<BigRational> = ratios
        .iter()
        .map(|&(num, den)| BigRational::new(BigInt::from(num), BigInt::from(den)))
        .collect();
    let mean = {
        let num: BigRational = exact.iter().sum();
        &num / &BigRational::from_integer(exact.len() as i64)
    };
    let mut max_err = BigRational::zero();
    for (v, (r, &o)) in exact.iter().zip(outputs).enumerate() {
        if r.to_f64().to_bits() != o.to_bits() {
            return Err(format!(
                "agent {v}: f64 output {o:e} escapes the exact ℚ trajectory {r}"
            ));
        }
        let snapped = codec.snap(r);
        if (r - &snapped).abs() > codec.grid_radius() {
            return Err(format!(
                "agent {v}: best_approximation left ratio {r} at distance > 1/2^{} \
                 from the ℚ_{{2^{}}} grid",
                codec.bits() + 1,
                codec.bits()
            ));
        }
        let err = (r - &mean).abs();
        if err > max_err {
            max_err = err;
        }
    }
    Ok(max_err)
}

/// The bandwidth oracle family. Per cell (`qpushsum` / `qmetropolis` ×
/// cap `b1`..`binf`):
///
/// - **structural cap** — a [`CapAudit`] observer rides the boxed run
///   and verifies every broadcast payload lane is a codeword below
///   `2^b` (degree lanes are structural metadata, not payload — see
///   DESIGN.md decision 12);
/// - **exact conservation** — total token mass over all agents,
///   measured in exact ℚ, is invariant over the whole run;
/// - **ℚ envelope** — each agent's f64 output equals the correctly
///   rounded exact token ratio bitwise, and the ratio is within half a
///   grid step of its [`MessageCodec::snap`] projection onto
///   `ℚ_{2^b}` (the `best_approximation` grid);
/// - **flat ≡ boxed** — bitwise state agreement at 1, 2 and 4 threads
///   ([`flat_agree`]), with byte-identical ledgers from both executors;
/// - **`b = ∞`** — the unquantized algorithm under an
///   [`BandwidthCap::Unlimited`] rung is bitwise identical to the
///   uncapped baseline ([`unlimited_rung_is_pure`]).
fn check_bandwidth(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let g = match parse_graph(&cell.topology) {
        Ok(g) => g.with_self_loops(),
        Err(e) => return fail(e.0),
    };
    let n = g.n();
    let edges = g.edge_count() as u64;
    let rounds = ctx.rounds();
    let seed = cell.cell_seed;
    let values = vals_f64(seed, n);
    let Some(cap) = BandwidthCap::parse(&cell.variant) else {
        return fail(format!("unknown bandwidth variant `{}`", cell.variant));
    };
    match (cell.algorithm.as_str(), cap.codec()) {
        ("qpushsum", None) => {
            match unlimited_rung_is_pure(
                Isotropic(PushSum),
                PushSumState::averaging(&values),
                &g,
                rounds,
            ) {
                Ok(digest) => CellOutcome::new()
                    .ok(true)
                    .detail("digest", format!("{digest:016x}")),
                Err(e) => fail(e),
            }
        }
        ("qmetropolis", None) => {
            match unlimited_rung_is_pure(Isotropic(Metropolis), values, &g, rounds) {
                Ok(digest) => CellOutcome::new()
                    .ok(true)
                    .detail("digest", format!("{digest:016x}")),
                Err(e) => fail(e),
            }
        }
        ("qpushsum", Some(codec)) => {
            let algo = QuantizedPushSum::new(codec.bits());
            let inits = algo.initial(&values);
            let (y0, z0) = QuantizedPushSum::total_tokens(&inits);
            let ledger = ByteLedger::new();
            let mut audit = CapAudit::new(codec, 2);
            let mut boxed = Execution::new(Isotropic(algo), inits.clone());
            boxed.drive(
                &StaticGraph::new(g.clone()),
                RunConfig::rounds(rounds)
                    .observer(&mut audit)
                    .bandwidth(cap, &ledger),
            );
            if let Some(v) = audit.violation {
                return fail(v);
            }
            let digest = match flat_agree(
                Isotropic(algo),
                algo,
                inits.clone(),
                |s: &PushSumState| vec![s.y, s.z],
                &g,
                rounds,
            ) {
                Ok(d) => d,
                Err(e) => return fail(e),
            };
            let flat_ledger = ByteLedger::new();
            let mut flat = FlatExecution::new(algo, &g, PushSumState::columns(&inits));
            flat.drive(FlatRunConfig::rounds(rounds).bandwidth(cap, &flat_ledger));
            let (y1, z1) = QuantizedPushSum::total_tokens(boxed.states());
            let scale = BigInt::from(codec.levels());
            let ratios: Vec<(u64, u64)> = boxed
                .states()
                .iter()
                .map(|s| (s.y as u64, s.z as u64))
                .collect();
            // The conserved quantity is the token pair; fold both sums
            // into one ℚ mass `Σy / 2^b` (z is checked via the ratios).
            if z1 != z0 {
                return fail(format!("z tokens drifted: {z0} -> {z1}"));
            }
            match capped_laws(
                codec,
                &ratios,
                &boxed.outputs(),
                BigRational::new(BigInt::from(y0), scale.clone()),
                BigRational::new(BigInt::from(y1), scale),
                &ledger,
                &flat_ledger,
                edges,
                rounds,
            ) {
                Ok(qerr) => CellOutcome::new()
                    .ok(true)
                    .detail("digest", format!("{digest:016x}"))
                    .detail("bits", ledger.total_bits())
                    .detail("qerr", qerr.to_string()),
                Err(e) => fail(e),
            }
        }
        ("qmetropolis", Some(codec)) => {
            let algo = QuantizedMetropolis::new(codec.bits(), 1.25);
            let inits = algo.initial(&values);
            let t0 = QuantizedMetropolis::total_tokens(&inits);
            let ledger = ByteLedger::new();
            // Lane 1 is the degree tag — structural metadata, audited
            // lanes are the value payload only.
            let mut audit = CapAudit::new(codec, 1);
            let mut boxed = Execution::new(Isotropic(algo), inits.clone());
            boxed.drive(
                &StaticGraph::new(g.clone()),
                RunConfig::rounds(rounds)
                    .observer(&mut audit)
                    .bandwidth(cap, &ledger),
            );
            if let Some(v) = audit.violation {
                return fail(v);
            }
            let digest = match flat_agree(
                Isotropic(algo),
                algo,
                inits.clone(),
                |s: &f64| vec![*s],
                &g,
                rounds,
            ) {
                Ok(d) => d,
                Err(e) => return fail(e),
            };
            let flat_ledger = ByteLedger::new();
            let mut flat = FlatExecution::new(algo, &g, QuantizedMetropolis::columns(&inits));
            flat.drive(FlatRunConfig::rounds(rounds).bandwidth(cap, &flat_ledger));
            let t1 = QuantizedMetropolis::total_tokens(boxed.states());
            let scale = BigInt::from(codec.levels());
            let ratios: Vec<(u64, u64)> = boxed
                .states()
                .iter()
                .map(|&x| (x as u64, codec.levels()))
                .collect();
            match capped_laws(
                codec,
                &ratios,
                &boxed.outputs(),
                BigRational::new(BigInt::from(t0), scale.clone()),
                BigRational::new(BigInt::from(t1), scale),
                &ledger,
                &flat_ledger,
                edges,
                rounds,
            ) {
                Ok(qerr) => CellOutcome::new()
                    .ok(true)
                    .detail("digest", format!("{digest:016x}"))
                    .detail("bits", ledger.total_bits())
                    .detail("qerr", qerr.to_string()),
                Err(e) => fail(e),
            }
        }
        (other, _) => fail(format!("unknown bandwidth algorithm `{other}`")),
    }
}

// ---------------------------------------------------------------------
// (a) Backend agreement — certified enclosures, no tolerance
// ---------------------------------------------------------------------

/// The certified backend oracle. Per cell it runs the f64 algorithm and
/// its certified twin ([`CertifiedPushSum`] / [`CertifiedPushSumFrequency`])
/// side by side and demands every f64 output lie **inside** its
/// machine-checked enclosure — a sound bound on every round-to-nearest
/// trajectory (see `kya_arith::interval`), so there is no tolerance knob
/// to tune and nothing for a genuine divergence to hide under.
///
/// When an enclosure cannot certify its comparison (unbounded interval:
/// a weight that could not be proven positive), the cell *escalates*: it
/// replays on the lazily-normalized exact twin ([`LazyPushSumExact`] /
/// [`LazyPushSumFrequencyExact`]), audits that the exact ground truth
/// also lies in the enclosure, and fails the uncertifiable f64 output —
/// exactly the case the retired `f64_tolerance` comparison used to mask.
/// The `exact` variant forces the escalated path on every cell (the cost
/// baseline) and additionally pins the lazy replay bit-identical to the
/// eager exact backend.
///
/// Certification and escalation counts land in the NDJSON details, so
/// CI can watch the escalation rate (see `tests/escalation_guard.rs`).
fn check_backend(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let net = match build_net(&cell.topology) {
        Ok(net) => net,
        Err(e) => return fail(e.0),
    };
    let n = net.n();
    let rounds = ctx.rounds();
    let vals = vals_u64(cell.cell_seed, n);
    let backend = match cell.variant.as_str() {
        // The bare axis means the default backend under test.
        "" => Backend::Certified,
        v => match Backend::parse(v) {
            Some(Backend::F64) | None => {
                return fail(format!("unknown backend variant `{v}`"));
            }
            Some(b) => b,
        },
    };
    match cell.algorithm.as_str() {
        "pushsum" => {
            let floats: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            let mut approx = Execution::new(Isotropic(PushSum), PushSumState::averaging(&floats));
            let mut cert = Execution::new(
                Isotropic(CertifiedPushSum),
                CertifiedPushSumState::averaging(&floats),
            );
            approx.drive(net.as_ref(), RunConfig::rounds(rounds));
            cert.drive(net.as_ref(), RunConfig::rounds(rounds));
            let enc = cert.outputs();
            let approx_out = approx.outputs();
            let mut stats = EscalationStats::default();
            let mut max_width = 0.0f64;
            for (v, (&f, e)) in approx_out.iter().zip(&enc).enumerate() {
                stats.record(e.is_bounded());
                if !e.contains(f) {
                    return fail(format!(
                        "agent {v}: f64 output {f:e} escapes its certified enclosure \
                         [{:e}, {:e}]",
                        e.lo(),
                        e.hi()
                    ));
                }
                if e.is_bounded() {
                    max_width = max_width.max(e.width());
                }
            }
            if backend == Backend::Exact || stats.escalations > 0 {
                let mut lazy = Execution::new(
                    Isotropic(LazyPushSumExact),
                    LazyPushSumState::averaging(&floats),
                );
                lazy.drive(net.as_ref(), RunConfig::rounds(rounds));
                let ground = lazy.outputs();
                let ints: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
                let mut eager =
                    Execution::new(Isotropic(PushSumExact), PushSumExactState::averaging(&ints));
                eager.drive(net.as_ref(), RunConfig::rounds(rounds));
                if ground != eager.outputs() {
                    return fail("lazy exact replay diverged from the eager exact backend");
                }
                for (v, (q, e)) in ground.iter().zip(&enc).enumerate() {
                    if !e.contains_rational(q) {
                        return fail(format!(
                            "agent {v}: exact output escapes its enclosure — unsound interval"
                        ));
                    }
                    if !e.is_bounded() {
                        return fail(format!(
                            "agent {v}: f64 output {:e} is uncertifiable (unbounded \
                             enclosure; exact ground truth {:e})",
                            approx_out[v],
                            q.to_f64()
                        ));
                    }
                }
            }
            CellOutcome::new()
                .ok(true)
                .detail("backend", backend.as_str().to_string())
                .detail("certifications", stats.certifications)
                .detail("escalations", stats.escalations)
                .detail("max_width", format!("{max_width:e}"))
        }
        "frequency" => {
            let mut approx = Execution::new(
                Isotropic(PushSumFrequency::frequency()),
                FrequencyState::initial(&vals),
            );
            let mut cert = Execution::new(
                Isotropic(CertifiedPushSumFrequency),
                CertifiedFrequencyState::initial(&vals),
            );
            approx.drive(net.as_ref(), RunConfig::rounds(rounds));
            cert.drive(net.as_ref(), RunConfig::rounds(rounds));
            let enc = cert.outputs();
            let approx_out = approx.outputs();
            let mut stats = EscalationStats::default();
            let mut max_width = 0.0f64;
            for (v, (a, em)) in approx_out.iter().zip(&enc).enumerate() {
                if a.keys().ne(em.keys()) {
                    return fail(format!(
                        "agent {v}: key sets differ: f64 {:?} vs certified {:?}",
                        a.keys().collect::<Vec<_>>(),
                        em.keys().collect::<Vec<_>>()
                    ));
                }
                for (val, e) in em {
                    stats.record(e.is_bounded());
                    let f = a[val];
                    if !e.contains(f) {
                        return fail(format!(
                            "agent {v} value {val}: f64 frequency {f:e} escapes its \
                             enclosure [{:e}, {:e}]",
                            e.lo(),
                            e.hi()
                        ));
                    }
                    if e.is_bounded() {
                        max_width = max_width.max(e.width());
                    }
                }
            }
            if backend == Backend::Exact || stats.escalations > 0 {
                let mut lazy = Execution::new(
                    Isotropic(LazyPushSumFrequencyExact),
                    LazyFrequencyState::initial(&vals),
                );
                lazy.drive(net.as_ref(), RunConfig::rounds(rounds));
                let ground = lazy.outputs();
                let mut eager = Execution::new(
                    Isotropic(PushSumFrequencyExact),
                    kya_algos::push_sum::ExactFrequencyState::initial(&vals),
                );
                eager.drive(net.as_ref(), RunConfig::rounds(rounds));
                if ground != eager.outputs() {
                    return fail(
                        "lazy exact frequency replay diverged from the eager exact backend",
                    );
                }
                for (v, (qm, em)) in ground.iter().zip(&enc).enumerate() {
                    for (val, q) in qm {
                        let Some(e) = em.get(val) else {
                            return fail(format!(
                                "agent {v}: exact value {val} missing from the certified run"
                            ));
                        };
                        if !e.contains_rational(q) {
                            return fail(format!(
                                "agent {v} value {val}: exact frequency escapes its \
                                 enclosure — unsound interval"
                            ));
                        }
                    }
                    for (val, e) in em {
                        if !e.is_bounded() {
                            return fail(format!(
                                "agent {v} value {val}: f64 frequency is uncertifiable \
                                 (weight sign unresolved by the enclosure)"
                            ));
                        }
                    }
                }
            }
            CellOutcome::new()
                .ok(true)
                .detail("backend", backend.as_str().to_string())
                .detail("certifications", stats.certifications)
                .detail("escalations", stats.escalations)
                .detail("max_width", format!("{max_width:e}"))
        }
        other => fail(format!("unknown backend algorithm `{other}`")),
    }
}

// ---------------------------------------------------------------------
// (c) Relabeling equivariance
// ---------------------------------------------------------------------

/// A seeded Fisher–Yates permutation of `0..n`.
fn permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (mix(seed ^ (i as u64) << 17) % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Run `algo` on `g` and on `g.relabel(perm)` (inputs carried along the
/// permutation) and compare final states fibrewise with `agree`.
fn relabel_agree<A, F>(
    algo: A,
    inits: Vec<A::State>,
    g: &Digraph,
    perm: &[usize],
    rounds: u64,
    agree: F,
) -> Result<(), String>
where
    A: Algorithm + Clone + Sync,
    A::State: Send + Sync,
    A::Msg: Send + Sync,
    F: Fn(&A::State, &A::State) -> bool,
{
    let mut permuted_inits = inits.clone();
    for (v, &p) in perm.iter().enumerate() {
        permuted_inits[p] = inits[v].clone();
    }
    let mut original = Execution::new(algo.clone(), inits);
    let mut relabeled = Execution::new(algo, permuted_inits);
    original.drive(&StaticGraph::new(g.clone()), RunConfig::rounds(rounds));
    relabeled.drive(
        &StaticGraph::new(g.relabel(perm)),
        RunConfig::rounds(rounds),
    );
    for (v, &p) in perm.iter().enumerate() {
        if !agree(&original.states()[v], &relabeled.states()[p]) {
            return Err(format!(
                "vertex {v} (relabeled {p}) differs after {rounds} rounds"
            ));
        }
    }
    Ok(())
}

fn check_relabel(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    // Relabeling is defined on static graphs; parse the loop-less graph
    // so both copies get their self-loop closure the same way.
    let g = match parse_graph(&cell.topology) {
        Ok(g) => g,
        Err(e) => return fail(e.0),
    };
    let n = g.n();
    let rounds = ctx.rounds();
    let perm = permutation(cell.cell_seed, n);
    let vals = vals_u64(cell.cell_seed, n);
    let res = match cell.algorithm.as_str() {
        // Order-insensitive state: relabeling must commute *exactly*.
        "gossip" => relabel_agree(
            Broadcast(SetGossip),
            SetGossip::initial(&vals),
            &g,
            &perm,
            rounds,
            |a, b| a == b,
        ),
        // Exact arithmetic: multiset-invariant transitions, so exact
        // equality holds even though delivery orders differ.
        "pushsum-exact" => relabel_agree(
            Isotropic(PushSumExact),
            PushSumExactState::averaging(&vals.iter().map(|&v| v as i64).collect::<Vec<_>>()),
            &g,
            &perm,
            rounds,
            |a, b| a == b,
        ),
        // f64: relabeling permutes inbox orders, so agreement only up to
        // the accumulated-rounding tolerance.
        "pushsum" => {
            let tol = f64_tolerance(rounds, n, 9.0);
            relabel_agree(
                Isotropic(PushSum),
                PushSumState::averaging(&vals.iter().map(|&v| v as f64).collect::<Vec<_>>()),
                &g,
                &perm,
                rounds,
                move |a, b| (a.y - b.y).abs() <= tol && (a.z - b.z).abs() <= tol,
            )
        }
        other => return fail(format!("unknown relabel algorithm `{other}`")),
    };
    match res {
        Ok(()) => CellOutcome::new().ok(true),
        Err(e) => fail(e),
    }
}

// ---------------------------------------------------------------------
// (c) Mass conservation under faults
// ---------------------------------------------------------------------

fn check_mass(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let g = match parse_graph(&cell.topology) {
        Ok(g) => g,
        Err(e) => return fail(e.0),
    };
    let n = g.n();
    let rounds = ctx.rounds();
    let vals = vals_u64(cell.cell_seed, n);
    let plan = ctx.fault_plan();
    match cell.algorithm.as_str() {
        // Graph-level faults (FaultyNetwork): links vanish from the
        // round graph, but every share the sender splits still lands
        // somewhere — mass is conserved *exactly*, checked in exact
        // arithmetic.
        "exact-graph-faults" => {
            let ints: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
            let inits = PushSumExactState::averaging(&ints);
            let y0: BigRational = inits.iter().map(|s| &s.y).sum();
            let z0: BigRational = inits.iter().map(|s| &s.z).sum();
            let net = FaultyNetwork::new(StaticGraph::new(g), plan);
            let mut exec = Execution::new(Isotropic(PushSumExact), inits);
            exec.drive(&net, RunConfig::rounds(rounds));
            let y: BigRational = exec.states().iter().map(|s| &s.y).sum();
            let z: BigRational = exec.states().iter().map(|s| &s.z).sum();
            if y != y0 || z != z0 {
                return fail(format!(
                    "exact mass drifted under graph faults: y {y0} -> {y}, z {z0} -> {z}"
                ));
            }
            CellOutcome::new().ok(true)
        }
        // Message-level faults (FaultyExecution): dropped shares bounce
        // back to the sender and SelfHealingPushSum reabsorbs them, so
        // f64 mass is conserved up to accumulated rounding.
        "healing-message-faults" => {
            let floats: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            let mut exec = FaultyExecution::new(
                Isotropic(SelfHealingPushSum),
                PushSumState::averaging(&floats),
                plan,
            );
            exec.drive(&StaticGraph::new(g), RunConfig::rounds(rounds));
            let (_, z) = total_mass(exec.states());
            let deficit = (n as f64 - z).abs();
            let tol = f64_tolerance(rounds, n, 9.0);
            if deficit > tol {
                return fail(format!(
                    "self-healing z mass deficit {deficit:e} > tol {tol:e}"
                ));
            }
            CellOutcome::new()
                .ok(true)
                .detail("z_deficit", format!("{deficit:e}"))
        }
        other => fail(format!("unknown mass algorithm `{other}`")),
    }
}

// ---------------------------------------------------------------------
// (c) Lift/base indistinguishability
// ---------------------------------------------------------------------

fn check_lift(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let n = cell.n;
    if n < 4 || !n.is_multiple_of(2) {
        return fail(format!("liftring needs an even n >= 4, got {n}"));
    }
    let (gc, bc, phic) = lift_ring(n);
    let base_vals = vals_u64(cell.cell_seed, n / 2);
    let rounds = ctx.rounds();
    let res = match cell.algorithm.as_str() {
        "gossip" => check_lifting(
            &Broadcast(SetGossip),
            &gc,
            &bc,
            &phic,
            SetGossip::initial(&base_vals),
            rounds,
        ),
        "pushsum-exact" => check_lifting(
            &Isotropic(PushSumExact),
            &gc,
            &bc,
            &phic,
            PushSumExactState::averaging(&base_vals.iter().map(|&v| v as i64).collect::<Vec<_>>()),
            rounds,
        ),
        other => return fail(format!("unknown lift algorithm `{other}`")),
    };
    match res {
        Ok(()) => CellOutcome::new().ok(true),
        Err(v) => fail(v.to_string()),
    }
}

// ---------------------------------------------------------------------
// (c) Churn under the combined adversary stack
// ---------------------------------------------------------------------

/// The churn oracle family, on the full pairing ∘ churn ∘ faults stack:
///
/// - `exact-mass` — exact-backend mass conservation *modulo the explicit
///   reinjection ledger*: under `Carry` total `(Σy, Σz)` over all agent
///   slots (present or parked) is exactly conserved; under `Reset` it
///   drifts by exactly the sum of declared `fresh − parked` deltas,
///   which the reinit closure records as it fires.
/// - `healing-mass` — message-level faults with `SelfHealingPushSum`:
///   the f64 `z` mass matches `n` plus the reset ledger within the
///   derived tolerance, and the attached [`CellReport`] performs the
///   quiescence/stabilization detection (convergence only counts
///   strictly after the last fault *or churn* transition).
/// - `frozen-absence` — an absent agent (self-loop only) is bit-frozen:
///   its f64 state is byte-identical, round over round, for the whole
///   absence window, even under graph-level faults.
///
/// Every arm's details (fingerprint digests, deficits, counts) land in
/// the NDJSON record, so the CI byte-diff across `--workers` values
/// certifies they are worker-invariant.
///
/// [`CellReport`]: kya_runtime::CellReport
fn check_churn(ctx: &CellCtx) -> CellOutcome {
    let cell = ctx.cell;
    let net = match build_net(&cell.topology) {
        Ok(net) => net,
        Err(e) => return fail(e.0),
    };
    let n = net.n();
    let rounds = ctx.rounds();
    let spec = match ChurnSpec::parse(&cell.variant) {
        Ok(spec) => spec,
        Err(e) => return fail(e.0),
    };
    let membership = spec.build(cell.cell_seed).membership(n);
    let plan = ctx.fault_plan();
    let vals = vals_u64(cell.cell_seed, n);
    match cell.algorithm.as_str() {
        "exact-mass" => {
            let ints: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
            let fresh = PushSumExactState::averaging(&ints);
            let inits = fresh.clone();
            let y0: BigRational = inits.iter().map(|s| &s.y).sum();
            let z0: BigRational = inits.iter().map(|s| &s.z).sum();
            let stack = FaultyNetwork::new(ChurnMasked::new(net, membership.clone()), plan);
            let ledger = RefCell::new((BigRational::zero(), BigRational::zero()));
            let reinit = |v: usize, parked: &PushSumExactState| {
                let f = fresh[v].clone();
                let mut l = ledger.borrow_mut();
                l.0 = &l.0 + &(&f.y - &parked.y);
                l.1 = &l.1 + &(&f.z - &parked.z);
                f
            };
            let mut exec = Execution::new(Isotropic(PushSumExact), inits);
            exec.drive(
                &stack,
                RunConfig::rounds(rounds).membership(&membership, &reinit),
            );
            let y: BigRational = exec.states().iter().map(|s| &s.y).sum();
            let z: BigRational = exec.states().iter().map(|s| &s.z).sum();
            let (ly, lz) = ledger.into_inner();
            let (ey, ez) = (&y0 + &ly, &z0 + &lz);
            if y != ey || z != ez {
                return fail(format!(
                    "exact mass drifted beyond the reinjection ledger: \
                     y expected {ey} got {y}, z expected {ez} got {z}"
                ));
            }
            let mut fp = Fingerprint::new();
            fp.absorb(exec.states());
            CellOutcome::new()
                .ok(true)
                .detail("digest", format!("{:016x}", fp.digest()))
        }
        "healing-mass" => {
            let floats: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            let mean = floats.iter().sum::<f64>() / n as f64;
            let fresh = PushSumState::averaging(&floats);
            let stack = ChurnMasked::new(net, membership.clone());
            let ledger_z = Cell::new(0.0f64);
            let reinit = |v: usize, parked: &PushSumState| {
                let f = fresh[v];
                ledger_z.set(ledger_z.get() + (f.z - parked.z));
                f
            };
            let mut exec = FaultyExecution::new(Isotropic(SelfHealingPushSum), fresh.clone(), plan);
            let report = exec.drive(
                &stack,
                RunConfig::rounds(rounds)
                    .membership(&membership, &reinit)
                    .measure(&EuclideanMetric, &mean, ctx.eps()),
            );
            let (_, z) = total_mass(exec.states());
            let expected = n as f64 + ledger_z.get();
            let deficit = (z - expected).abs();
            let tol = f64_tolerance(rounds, n, 9.0);
            if deficit > tol {
                return fail(format!(
                    "self-healing z mass deficit {deficit:e} > tol {tol:e} \
                     (reset ledger {:e})",
                    ledger_z.get()
                ));
            }
            CellOutcome::new()
                .ok(true)
                .detail("z_deficit", format!("{deficit:e}"))
                .report(report.without_trace())
        }
        "frozen-absence" => {
            let floats: Vec<f64> = vals.iter().map(|&v| v as f64).collect();
            let fresh = PushSumState::averaging(&floats);
            let stack = FaultyNetwork::new(ChurnMasked::new(net, membership.clone()), plan);
            let reinit = |v: usize, _parked: &PushSumState| fresh[v];
            let mut exec = Execution::new(Isotropic(PushSum), fresh.clone());
            // `Debug` for f64 is shortest-roundtrip, so equal renderings
            // mean bit-identical parked states.
            let mut parked: Vec<Option<String>> = vec![None; n];
            let mut frozen_agent_rounds = 0u64;
            for t in 1..=rounds {
                for v in exec.apply_rejoins(&membership, &reinit) {
                    parked[v] = None;
                }
                for (v, slot) in parked.iter_mut().enumerate() {
                    if !membership.is_member(v, t) && slot.is_none() {
                        *slot = Some(format!("{:?}", exec.states()[v]));
                    }
                }
                let g = stack.graph_ref(t);
                exec.step(&g);
                for (v, slot) in parked.iter().enumerate() {
                    if !membership.is_member(v, t) {
                        let now = format!("{:?}", exec.states()[v]);
                        if slot.as_deref() != Some(now.as_str()) {
                            return fail(format!(
                                "round {t}: absent agent {v} drifted from its parked state \
                                 ({} -> {now})",
                                slot.clone().unwrap_or_default()
                            ));
                        }
                        frozen_agent_rounds += 1;
                    }
                }
            }
            CellOutcome::new()
                .ok(true)
                .detail("frozen_agent_rounds", frozen_agent_rounds)
        }
        other => fail(format!("unknown churn algorithm `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_tolerance_is_floored_above_zero() {
        // Regression: `f64_tolerance(0, n, scale)` used to return 0.0,
        // turning every zero-round oracle comparison into an accidental
        // demand for bitwise equality.
        assert!(f64_tolerance(0, 8, 9.0) > 0.0);
        assert!(f64_tolerance(20, 0, 9.0) > 0.0);
        assert!(f64_tolerance(0, 0, 0.0) > 0.0);
        // The floor is a small multiple of machine epsilon at the scale.
        assert_eq!(f64_tolerance(0, 8, 1.0), 32.0 * f64::EPSILON);
        assert_eq!(f64_tolerance(0, 8, 4.0), 128.0 * f64::EPSILON);
        // Away from the degenerate corner the linear model is unchanged.
        assert_eq!(
            f64_tolerance(20, 8, 9.0),
            8.0 * 20.0 * 8.0 * f64::EPSILON * 9.0
        );
        // Monotone in each argument.
        assert!(f64_tolerance(40, 8, 9.0) > f64_tolerance(20, 8, 9.0));
        assert!(f64_tolerance(20, 16, 9.0) > f64_tolerance(20, 8, 9.0));
    }
}
