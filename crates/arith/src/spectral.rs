//! Perron–Frobenius toolkit for non-negative matrices.
//!
//! §4.2 of the paper proves that the fibre-count matrix `M` (whose diagonal
//! may be negative) has a rank-one kernel by shifting it to the
//! non-negative irreducible matrix `P = M + αI` and applying
//! Perron–Frobenius. This module provides the numerical counterparts used
//! by tests and benchmarks to cross-check the exact kernel computation:
//! irreducibility, the spectral radius, and the Perron vector via power
//! iteration.

use std::collections::VecDeque;

/// A dense `f64` square matrix stored row-major.
///
/// ```
/// use kya_arith::spectral::FMatrix;
/// let p = FMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// assert!(p.is_irreducible());
/// let (radius, _v) = p.perron(1e-12, 10_000).expect("converges");
/// assert!((radius - 1.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FMatrix {
    n: usize,
    data: Vec<f64>,
}

impl FMatrix {
    /// An `n x n` zero matrix.
    pub fn zeros(n: usize) -> FMatrix {
        FMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> FMatrix {
        let mut m = FMatrix::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not form a square matrix.
    pub fn from_rows(rows: &[&[f64]]) -> FMatrix {
        let n = rows.len();
        assert!(rows.iter().all(|r| r.len() == n), "matrix not square");
        let mut m = FMatrix::zeros(n);
        for (i, row) in rows.iter().enumerate() {
            m.data[i * n..(i + 1) * n].copy_from_slice(row);
        }
        m
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "dimension mismatch");
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self[(i, j)] * v[j]).sum())
            .collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mul(&self, rhs: &FMatrix) -> FMatrix {
        assert_eq!(self.n, rhs.n, "dimension mismatch");
        let mut out = FMatrix::zeros(self.n);
        for i in 0..self.n {
            for k in 0..self.n {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..self.n {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Whether all entries are non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.data.iter().all(|&x| x >= 0.0)
    }

    /// Whether the associated digraph (edge `j -> i` iff `A[i][j] > 0`,
    /// following the paper's §5.2 convention) is strongly connected.
    pub fn is_irreducible(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        // Strong connectivity == every vertex reachable from 0 in the graph
        // and in its transpose.
        let reach = |transpose: bool| -> usize {
            let mut seen = vec![false; self.n];
            let mut queue = VecDeque::from([0usize]);
            seen[0] = true;
            let mut count = 1;
            while let Some(u) = queue.pop_front() {
                for v in 0..self.n {
                    let w = if transpose {
                        self[(u, v)]
                    } else {
                        self[(v, u)]
                    };
                    if w > 0.0 && !seen[v] {
                        seen[v] = true;
                        count += 1;
                        queue.push_back(v);
                    }
                }
            }
            count
        };
        reach(false) == self.n && reach(true) == self.n
    }

    /// Spectral radius and Perron vector of a non-negative matrix via
    /// shifted power iteration.
    ///
    /// Returns `None` if the iteration does not reach `tol` within
    /// `max_iter` steps (e.g. for reducible matrices with tied dominant
    /// eigenvalues).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has a negative entry.
    pub fn perron(&self, tol: f64, max_iter: usize) -> Option<(f64, Vec<f64>)> {
        assert!(
            self.is_nonnegative(),
            "perron requires a non-negative matrix"
        );
        if self.n == 0 {
            return None;
        }
        // Shift by I to make the dominant eigenvalue unique in modulus for
        // irreducible matrices (primitivity).
        let mut v = vec![1.0 / self.n as f64; self.n];
        let mut lambda = 0.0f64;
        for _ in 0..max_iter {
            let mut w = self.mul_vec(&v);
            for i in 0..self.n {
                w[i] += v[i]; // (A + I) v
            }
            let norm: f64 = w.iter().map(|x| x.abs()).sum();
            if norm == 0.0 {
                return Some((0.0, v));
            }
            for x in &mut w {
                *x /= norm;
            }
            let new_lambda = norm - 1.0;
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum::<f64>()
                + (new_lambda - lambda).abs();
            v = w;
            lambda = new_lambda;
            if delta < tol {
                return Some((lambda, v));
            }
        }
        None
    }
}

impl std::ops::Index<(usize, usize)> for FMatrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for FMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_perron() {
        let id = FMatrix::identity(4);
        let (r, v) = id.perron(1e-12, 1000).unwrap();
        assert!((r - 1.0).abs() < 1e-9);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn irreducibility() {
        // 2-cycle: irreducible.
        let c = FMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(c.is_irreducible());
        // Upper triangular: reducible.
        let t = FMatrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(!t.is_irreducible());
        assert!(!FMatrix::zeros(0).is_irreducible());
    }

    #[test]
    fn perron_of_known_matrix() {
        // [[2, 1], [1, 2]] has spectral radius 3, Perron vector (1, 1).
        let m = FMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (r, v) = m.perron(1e-13, 100_000).unwrap();
        assert!((r - 3.0).abs() < 1e-8, "radius {r}");
        assert!((v[0] - v[1]).abs() < 1e-8);
    }

    #[test]
    fn shifted_fibre_matrix_has_zero_eigenvalue() {
        // The paper's M for a base with fibre counts (1, 2, 3):
        // M z = 0 with z = (1,2,3). P = M + alpha*I is non-negative;
        // its spectral radius must be exactly alpha (Theorem of §4.2).
        let m_rows: [[f64; 3]; 3] = [[-8.0, 1.0, 2.0], [2.0, -4.0, 2.0], [6.0, 3.0, -4.0]];
        let alpha = 9.0;
        let mut p = FMatrix::zeros(3);
        for i in 0..3 {
            for j in 0..3 {
                p[(i, j)] = m_rows[i][j] + if i == j { alpha } else { 0.0 };
            }
        }
        assert!(p.is_nonnegative());
        assert!(p.is_irreducible());
        let (r, v) = p.perron(1e-13, 200_000).unwrap();
        assert!((r - alpha).abs() < 1e-6, "rho(P) = {r}, expected {alpha}");
        // Perron vector proportional to (1, 2, 3).
        let scale = v[0];
        assert!((v[1] / scale - 2.0).abs() < 1e-5);
        assert!((v[2] / scale - 3.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn perron_rejects_negative() {
        let m = FMatrix::from_rows(&[&[-1.0]]);
        let _ = m.perron(1e-9, 10);
    }

    #[test]
    fn matrix_product() {
        let a = FMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = FMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let ab = a.mul(&b);
        assert_eq!(ab, FMatrix::from_rows(&[&[2.0, 1.0], &[4.0, 3.0]]));
    }
}
