//! Output metrics and convergence (§2.3).
//!
//! Computability in the paper is parameterized by a metric `δ` on the
//! output space: with the **discrete** metric, outputs must eventually
//! equal the target exactly (finite-time computation, though agents need
//! not detect it); with the **Euclidean** metric, outputs need only
//! converge asymptotically (the standard notion in distributed control).

use std::fmt;

/// A metric on an output space `X`.
pub trait Metric<X: ?Sized> {
    /// The distance `δ(a, b) >= 0`.
    fn distance(&self, a: &X, b: &X) -> f64;
}

/// The discrete metric `δ0`: `0` if equal, `1` otherwise. The finest
/// topology — convergence in `δ0` means exact stabilization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiscreteMetric;

impl<X: PartialEq> Metric<X> for DiscreteMetric {
    fn distance(&self, a: &X, b: &X) -> f64 {
        if a == b {
            0.0
        } else {
            1.0
        }
    }
}

/// The Euclidean metric on `f64` and on `Vec<f64>` / `[f64]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EuclideanMetric;

impl Metric<f64> for EuclideanMetric {
    fn distance(&self, a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }
}

impl Metric<[f64]> for EuclideanMetric {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dimension mismatch");
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl Metric<Vec<f64>> for EuclideanMetric {
    fn distance(&self, a: &Vec<f64>, b: &Vec<f64>) -> f64 {
        Metric::<[f64]>::distance(self, a.as_slice(), b.as_slice())
    }
}

/// Whether every output is within `eps` of `target` under `metric` — the
/// pointwise convergence criterion of §2.3 at tolerance `eps`.
pub fn all_within<X, M: Metric<X>>(metric: &M, outputs: &[X], target: &X, eps: f64) -> bool {
    outputs.iter().all(|o| metric.distance(o, target) <= eps)
}

/// The worst-case distance of any output from `target`.
///
/// Returns `0.0` for empty input. A non-finite per-output distance (a
/// NaN or infinite output — e.g. Push-Sum's `y / z` after `z` underflows
/// to 0.0) yields `f64::INFINITY`: `f64::max` silently *drops* NaN
/// (`f64::max(0.0, NaN) == 0.0`), which used to let a diverged agent
/// vanish from the maximum and report spurious convergence.
pub fn max_distance<X, M: Metric<X>>(metric: &M, outputs: &[X], target: &X) -> f64 {
    outputs
        .iter()
        .map(|o| {
            let d = metric.distance(o, target);
            if d.is_finite() {
                d
            } else {
                f64::INFINITY
            }
        })
        .fold(0.0, f64::max)
}

/// A convergence trace: per-round worst-case distance to the target,
/// useful for plotting rate experiments (Theorem 5.2's `O(n²D log 1/ε)`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConvergenceTrace {
    distances: Vec<f64>,
}

impl ConvergenceTrace {
    /// An empty trace.
    pub fn new() -> ConvergenceTrace {
        ConvergenceTrace::default()
    }

    /// Record the worst-case distance of a round.
    pub fn record<X, M: Metric<X>>(&mut self, metric: &M, outputs: &[X], target: &X) {
        self.distances.push(max_distance(metric, outputs, target));
    }

    /// Per-round worst-case distances.
    pub fn distances(&self) -> &[f64] {
        &self.distances
    }

    /// The first recorded round (0-based) whose distance drops to `eps`
    /// *and stays there* for the rest of the trace.
    pub fn rounds_to(&self, eps: f64) -> Option<usize> {
        let mut candidate = None;
        for (i, &d) in self.distances.iter().enumerate() {
            if d <= eps {
                candidate.get_or_insert(i);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

impl fmt::Display for ConvergenceTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace[{} rounds]", self.distances.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discrete_metric() {
        let m = DiscreteMetric;
        assert_eq!(m.distance(&1, &1), 0.0);
        assert_eq!(m.distance(&1, &2), 1.0);
        assert!(all_within(&m, &[5, 5, 5], &5, 0.0));
        assert!(!all_within(&m, &[5, 4], &5, 0.5));
    }

    #[test]
    fn euclidean_metric() {
        let m = EuclideanMetric;
        assert_eq!(m.distance(&1.0, &4.0), 3.0);
        assert_eq!(m.distance(&vec![0.0, 0.0], &vec![3.0, 4.0]), 5.0);
        assert_eq!(max_distance(&m, &[1.0, 2.0, 3.5], &2.0), 1.5);
        assert_eq!(max_distance::<f64, _>(&m, &[], &0.0), 0.0);
    }

    #[test]
    fn max_distance_does_not_drop_nan() {
        let m = EuclideanMetric;
        // A NaN output must dominate the max, not vanish from it.
        assert_eq!(max_distance(&m, &[1.0, f64::NAN], &0.0), f64::INFINITY);
        assert_eq!(max_distance(&m, &[f64::NAN, 1.0], &0.0), f64::INFINITY);
        assert_eq!(max_distance(&m, &[1.0, f64::INFINITY], &0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn euclidean_rejects_mismatched_dims() {
        let m = EuclideanMetric;
        let _ = m.distance(&vec![1.0], &vec![1.0, 2.0]);
    }

    #[test]
    fn trace_rounds_to() {
        let mut t = ConvergenceTrace::new();
        let m = EuclideanMetric;
        for d in [4.0, 2.0, 0.5, 0.9, 0.1, 0.05] {
            t.record(&m, &[d], &0.0);
        }
        // Drops below 1.0 at index 2 and stays.
        assert_eq!(t.rounds_to(1.0), Some(2));
        // Below 0.6 at 2 but bounces to 0.9: final entry-point is 4.
        assert_eq!(t.rounds_to(0.6), Some(4));
        assert_eq!(t.rounds_to(0.01), None);
        assert_eq!(t.distances().len(), 6);
    }
}
