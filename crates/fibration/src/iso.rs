//! Exact isomorphism testing for small valued, port-colored multigraphs.
//!
//! Minimum bases are unique only *up to isomorphism* (§3.2), so comparing
//! the output of two minimum-base computations — e.g. the centralized
//! partition refinement against the distributed view-based algorithm —
//! requires an exact isomorphism test. Bases are small (one vertex per
//! fibre), so a backtracking search with degree/value pruning is entirely
//! adequate.

use kya_graph::{Digraph, Vertex};
use std::collections::BTreeMap;

/// A vertex signature used to prune the isomorphism search: value,
/// in-degree, out-degree, and sorted loop/port profile.
fn signature(g: &Digraph, values: &[u64], v: Vertex) -> (u64, usize, usize, Vec<Option<u32>>) {
    let mut ports: Vec<Option<u32>> = g.out_edges(v).map(|e| g.edges()[e].port).collect();
    ports.sort_unstable();
    (values[v], g.indegree(v), g.outdegree(v), ports)
}

/// The multiset of `(dst, port)` over the out-edges of `v`, remapped by
/// `perm` where assigned (`usize::MAX` marks unassigned vertices).
fn out_profile(g: &Digraph, v: Vertex) -> BTreeMap<(Vertex, Option<u32>), usize> {
    let mut m = BTreeMap::new();
    for e in g.out_edges(v) {
        let edge = g.edges()[e];
        *m.entry((edge.dst, edge.port)).or_insert(0) += 1;
    }
    m
}

/// Check whether mapping `perm` (partial, `usize::MAX` = unassigned) is
/// consistent on all edges between assigned vertices.
fn consistent(g: &Digraph, h: &Digraph, perm: &[Vertex], v: Vertex) -> bool {
    // Edges out of v to assigned vertices must match h's multiplicities.
    let hv = perm[v];
    let mut need: BTreeMap<(Vertex, Option<u32>), usize> = BTreeMap::new();
    for e in g.out_edges(v) {
        let edge = g.edges()[e];
        if perm[edge.dst] != usize::MAX {
            *need.entry((perm[edge.dst], edge.port)).or_insert(0) += 1;
        }
    }
    let have = out_profile(h, hv);
    for (key, count) in &need {
        if have.get(key) != Some(count) {
            return false;
        }
    }
    // Edges into v from assigned vertices.
    let mut need_in: BTreeMap<(Vertex, Option<u32>), usize> = BTreeMap::new();
    for e in g.in_edges(v) {
        let edge = g.edges()[e];
        if perm[edge.src] != usize::MAX {
            *need_in.entry((perm[edge.src], edge.port)).or_insert(0) += 1;
        }
    }
    let mut have_in: BTreeMap<(Vertex, Option<u32>), usize> = BTreeMap::new();
    for e in h.in_edges(hv) {
        let edge = h.edges()[e];
        *have_in.entry((edge.src, edge.port)).or_insert(0) += 1;
    }
    for (key, count) in &need_in {
        if have_in.get(key) != Some(count) {
            return false;
        }
    }
    true
}

/// Decide whether the valued, port-colored multigraphs `(g, g_values)`
/// and `(h, h_values)` are isomorphic; returns a witness vertex bijection
/// when they are.
///
/// Intended for small graphs (minimum bases); the search is exponential in
/// the worst case.
///
/// # Panics
///
/// Panics if value slices do not match the vertex counts.
///
/// ```
/// use kya_graph::generators;
/// use kya_fibration::iso::are_isomorphic;
///
/// let a = generators::directed_ring(4);
/// let b = a.relabel(&[2, 3, 0, 1]);
/// assert!(are_isomorphic(&a, &vec![0; 4], &b, &vec![0; 4]).is_some());
/// ```
pub fn are_isomorphic(
    g: &Digraph,
    g_values: &[u64],
    h: &Digraph,
    h_values: &[u64],
) -> Option<Vec<Vertex>> {
    assert_eq!(g_values.len(), g.n(), "value/vertex count mismatch");
    assert_eq!(h_values.len(), h.n(), "value/vertex count mismatch");
    if g.n() != h.n() || g.edge_count() != h.edge_count() {
        return None;
    }
    let n = g.n();
    if n == 0 {
        return Some(Vec::new());
    }
    // Candidate lists by signature.
    let h_sigs: Vec<_> = (0..n).map(|v| signature(h, h_values, v)).collect();
    let mut candidates: Vec<Vec<Vertex>> = Vec::with_capacity(n);
    for v in 0..n {
        let s = signature(g, g_values, v);
        let c: Vec<Vertex> = (0..n).filter(|&u| h_sigs[u] == s).collect();
        if c.is_empty() {
            return None;
        }
        candidates.push(c);
    }
    // Order vertices by fewest candidates first.
    let mut order: Vec<Vertex> = (0..n).collect();
    order.sort_by_key(|&v| candidates[v].len());

    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    fn backtrack(
        g: &Digraph,
        h: &Digraph,
        order: &[Vertex],
        candidates: &[Vec<Vertex>],
        perm: &mut Vec<Vertex>,
        used: &mut Vec<bool>,
        depth: usize,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let v = order[depth];
        for &u in &candidates[v] {
            if used[u] {
                continue;
            }
            perm[v] = u;
            used[u] = true;
            if consistent(g, h, perm, v)
                && backtrack(g, h, order, candidates, perm, used, depth + 1)
            {
                return true;
            }
            perm[v] = usize::MAX;
            used[u] = false;
        }
        false
    }
    if backtrack(g, h, &order, &candidates, &mut perm, &mut used, 0) {
        Some(perm)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::generators;

    #[test]
    fn ring_relabelings_are_isomorphic() {
        let g = generators::directed_ring(5);
        let perm = vec![3, 4, 0, 1, 2];
        let h = g.relabel(&perm);
        let witness = are_isomorphic(&g, &[0; 5], &h, &[0; 5]).expect("isomorphic");
        // The witness must be a valid isomorphism: check edge preservation.
        for e in g.edges() {
            assert!(h.multiplicity(witness[e.src], witness[e.dst]) > 0);
        }
    }

    #[test]
    fn values_matter() {
        let g = generators::directed_ring(3);
        assert!(are_isomorphic(&g, &[1, 0, 0], &g, &[0, 1, 0]).is_some());
        assert!(are_isomorphic(&g, &[1, 0, 0], &g, &[1, 1, 0]).is_none());
    }

    #[test]
    fn multiplicities_matter() {
        let a = Digraph::from_edges(2, [(0, 1), (0, 1), (1, 0)]);
        let b = Digraph::from_edges(2, [(0, 1), (1, 0), (1, 0)]);
        // Isomorphic by swapping vertices.
        assert!(are_isomorphic(&a, &[0, 0], &b, &[0, 0]).is_some());
        let c = Digraph::from_edges(2, [(0, 1), (0, 1), (0, 1)]);
        assert!(are_isomorphic(&a, &[0, 0], &c, &[0, 0]).is_none());
    }

    #[test]
    fn ports_matter() {
        let mut a = Digraph::new(2);
        a.add_edge_with_port(0, 1, Some(0));
        a.add_edge_with_port(0, 1, Some(1));
        let mut b = Digraph::new(2);
        b.add_edge_with_port(0, 1, Some(0));
        b.add_edge_with_port(0, 1, Some(0));
        assert!(are_isomorphic(&a, &[0, 0], &b, &[0, 0]).is_none());
        assert!(are_isomorphic(&a, &[0, 0], &a, &[0, 0]).is_some());
    }

    #[test]
    fn non_isomorphic_same_degrees() {
        // Two 3-regular-ish graphs with same degree sequence but different
        // structure: C6 vs two triangles.
        let c6 = generators::bidirectional_ring(6);
        let mut tri2 = Digraph::new(6);
        for (a, b) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            tri2.add_edge(a, b);
            tri2.add_edge(b, a);
        }
        assert!(are_isomorphic(&c6, &[0; 6], &tri2, &[0; 6]).is_none());
    }

    #[test]
    fn empty_and_singleton() {
        let e = Digraph::new(0);
        assert_eq!(are_isomorphic(&e, &[], &e, &[]), Some(vec![]));
        let s = Digraph::from_edges(1, [(0, 0)]);
        assert!(are_isomorphic(&s, &[7], &s, &[7]).is_some());
    }
}
