//! Exact rational numbers and best rational approximation.
//!
//! [`BigRational`] backs the exact fibre-frequency computations of §4 and
//! the ℚ_N rounding step of §5.4 of the paper: an agent that knows an upper
//! bound `N` on the network size snaps its asymptotic Push-Sum estimate to
//! the nearest rational with denominator at most `N`, turning approximate
//! convergence into exact stabilization.

use crate::{gcd, BigInt};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and
/// `gcd(num, den) == 1`.
///
/// ```
/// use kya_arith::BigRational;
/// let third = BigRational::from_i64(1, 3);
/// let sixth = BigRational::from_i64(1, 6);
/// assert_eq!(&third + &sixth, BigRational::from_i64(1, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BigRational {
    num: BigInt,
    den: BigInt,
}

/// Error returned when parsing a [`BigRational`] from a malformed string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseRationalError {
    kind: &'static str,
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.kind)
    }
}

impl std::error::Error for ParseRationalError {}

impl BigRational {
    /// The rational `0`.
    pub fn zero() -> BigRational {
        BigRational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational `1`.
    pub fn one() -> BigRational {
        BigRational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct and normalize `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> BigRational {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return BigRational::zero();
        }
        let g = gcd(&num, &den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        BigRational { num, den }
    }

    /// Construct from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn from_i64(num: i64, den: i64) -> BigRational {
        BigRational::new(BigInt::from(num), BigInt::from(den))
    }

    /// The integer `v` as a rational.
    pub fn from_integer(v: impl Into<BigInt>) -> BigRational {
        BigRational {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Whether this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Whether this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Whether this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Whether this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(&self) -> BigRational {
        assert!(!self.is_zero(), "reciprocal of zero");
        BigRational::new(self.den.clone(), self.num.clone())
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so both parts fit comfortably in f64 range.
        let nb = self.num.bits();
        let db = self.den.bits();
        if nb <= 900 && db <= 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        let shift = nb.max(db) - 512;
        let n = (&self.num >> shift).to_f64();
        let d = (&self.den >> shift).to_f64();
        n / d
    }

    /// Exact conversion from a finite `f64` (every finite float is a
    /// dyadic rational).
    ///
    /// Returns `None` for NaN or infinities.
    ///
    /// ```
    /// use kya_arith::BigRational;
    /// assert_eq!(
    ///     BigRational::from_f64(0.25),
    ///     Some(BigRational::from_i64(1, 4)),
    /// );
    /// assert_eq!(BigRational::from_f64(f64::NAN), None);
    /// ```
    pub fn from_f64(v: f64) -> Option<BigRational> {
        if !v.is_finite() {
            return None;
        }
        if v == 0.0 {
            return Some(BigRational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & 0xf_ffff_ffff_ffff;
        let (mantissa, exp) = if exponent == 0 {
            (fraction, -1074i64)
        } else {
            (fraction | (1 << 52), exponent - 1075)
        };
        let m = BigInt::from(mantissa) * BigInt::from(sign);
        Some(if exp >= 0 {
            BigRational::from_integer(&m << exp as usize)
        } else {
            BigRational::new(m, &BigInt::one() << (-exp) as usize)
        })
    }

    /// Floor: the largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling: the smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        -(&(-self).floor())
    }

    /// Round to the nearest integer (ties away from zero).
    pub fn round(&self) -> BigInt {
        let half = BigRational::from_i64(1, 2);
        if self.is_negative() {
            -(&(-self).round())
        } else {
            (self + &half).floor()
        }
    }

    /// Raise to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero and `exp < 0`.
    pub fn pow(&self, exp: i32) -> BigRational {
        if exp < 0 {
            return self.recip().pow(-exp);
        }
        BigRational {
            num: self.num.pow(exp as u32),
            den: self.den.pow(exp as u32),
        }
    }

    /// The continued-fraction expansion `[a0; a1, a2, ...]`: the unique
    /// finite sequence with `a0 = floor(self)` and `a_i >= 1` for
    /// `i >= 1` whose value is `self` (the last coefficient is `>= 2`
    /// for non-integers, making the expansion canonical).
    ///
    /// ```
    /// use kya_arith::{BigInt, BigRational};
    /// let x = BigRational::from_i64(355, 113);
    /// let cf: Vec<i64> = x
    ///     .continued_fraction()
    ///     .iter()
    ///     .map(|a| a.to_i64().unwrap())
    ///     .collect();
    /// assert_eq!(cf, vec![3, 7, 16]);
    /// ```
    pub fn continued_fraction(&self) -> Vec<BigInt> {
        let mut out = Vec::new();
        let mut p = self.num.clone();
        let mut q = self.den.clone();
        // First coefficient uses floor division to handle negatives.
        let a0 = self.floor();
        out.push(a0.clone());
        let r = &p - &(&a0 * &q);
        p = q;
        q = r;
        while !q.is_zero() {
            let (a, r) = p.div_rem(&q);
            out.push(a);
            p = q;
            q = r;
        }
        out
    }

    /// Rebuild a rational from a continued-fraction expansion.
    ///
    /// # Panics
    ///
    /// Panics if `cf` is empty or some tail coefficient is zero (which
    /// would divide by zero).
    pub fn from_continued_fraction(cf: &[BigInt]) -> BigRational {
        assert!(!cf.is_empty(), "empty continued fraction");
        let mut acc = BigRational::from_integer(cf.last().expect("non-empty").clone());
        for a in cf[..cf.len() - 1].iter().rev() {
            acc = &BigRational::from_integer(a.clone()) + &acc.recip();
        }
        acc
    }

    /// The best rational approximation to `self` with denominator at most
    /// `max_den`, via the continued-fraction (Stern–Brocot) construction.
    ///
    /// This is the ℚ_N rounding primitive of the paper's §5.4: snapping the
    /// asymptotic Push-Sum output to the frequency grid
    /// `ℚ_N = { p/q : 0 <= p <= q <= N }` (here generalized to all
    /// rationals) yields exact finite-time stabilization when a bound `N`
    /// on the network size is known.
    ///
    /// Ties (two grid points equidistant from `self`) resolve to the one
    /// with the smaller denominator, matching the classical best
    /// approximation theory.
    ///
    /// # Panics
    ///
    /// Panics if `max_den < 1`.
    ///
    /// ```
    /// use kya_arith::{BigInt, BigRational};
    /// // 0.333 snaps to 1/3 on the N = 10 grid.
    /// let x = BigRational::from_i64(333, 1000);
    /// let best = x.best_approximation(&BigInt::from(10));
    /// assert_eq!(best, BigRational::from_i64(1, 3));
    /// ```
    pub fn best_approximation(&self, max_den: &BigInt) -> BigRational {
        assert!(
            max_den >= &BigInt::one(),
            "best_approximation requires max_den >= 1"
        );
        if self.den <= *max_den {
            return self.clone();
        }
        // Continued fraction: maintain convergents (h0/k0, h1/k1).
        let mut p = self.num.clone();
        let mut q = self.den.clone();
        let mut h0 = BigInt::one();
        let mut k0 = BigInt::zero();
        let mut h1 = self.floor();
        let mut k1 = BigInt::one();
        // Consume the integer part.
        let a0 = self.floor();
        let r = &p - &(&a0 * &q);
        p = q;
        q = r;
        while !q.is_zero() {
            let (a, r) = p.div_rem(&q);
            let h2 = &a * &h1 + &h0;
            let k2 = &a * &k1 + &k0;
            if k2 > *max_den {
                // Largest t such that k0 + t*k1 <= max_den gives the best
                // semiconvergent; compare it with the previous convergent.
                let t = (max_den - &k0) / &k1;
                let semi_valid = &t + &t >= a; // t >= a/2 (classical criterion)
                let semi = BigRational::new(&h0 + &(&t * &h1), &k0 + &(&t * &k1));
                let conv = BigRational::new(h1.clone(), k1.clone());
                if semi_valid {
                    let d_semi = (&semi - self).abs();
                    let d_conv = (&conv - self).abs();
                    return match d_semi.cmp(&d_conv) {
                        Ordering::Less => semi,
                        Ordering::Greater => conv,
                        Ordering::Equal => {
                            if semi.denom() < conv.denom() {
                                semi
                            } else {
                                conv
                            }
                        }
                    };
                }
                return conv;
            }
            h0 = h1;
            k0 = k1;
            h1 = h2;
            k1 = k2;
            p = q;
            q = r;
        }
        BigRational::new(h1, k1)
    }
}

impl Default for BigRational {
    fn default() -> Self {
        BigRational::zero()
    }
}

impl From<BigInt> for BigRational {
    fn from(v: BigInt) -> Self {
        BigRational::from_integer(v)
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_integer(v)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Add for &BigRational {
    type Output = BigRational;
    fn add(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &BigRational {
    type Output = BigRational;
    fn sub(self, rhs: &BigRational) -> BigRational {
        BigRational::new(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &BigRational {
    type Output = BigRational;
    fn mul(self, rhs: &BigRational) -> BigRational {
        BigRational::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &BigRational {
    type Output = BigRational;
    fn div(self, rhs: &BigRational) -> BigRational {
        assert!(!rhs.is_zero(), "division by zero rational");
        BigRational::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_owned_binop_rat {
    ($($trait:ident, $method:ident);*) => {$(
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational { (&self).$method(&rhs) }
        }
        impl $trait<&BigRational> for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &BigRational) -> BigRational { (&self).$method(rhs) }
        }
        impl $trait<BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational { self.$method(&rhs) }
        }
    )*};
}
forward_owned_binop_rat!(Add, add; Sub, sub; Mul, mul; Div, div);

impl Neg for &BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        BigRational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(mut self) -> BigRational {
        self.num = -self.num;
        self
    }
}

impl Sum for BigRational {
    fn sum<I: Iterator<Item = BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a BigRational> for BigRational {
    fn sum<I: Iterator<Item = &'a BigRational>>(iter: I) -> BigRational {
        iter.fold(BigRational::zero(), |a, b| &a + b)
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl FromStr for BigRational {
    type Err = ParseRationalError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s
                    .parse()
                    .map_err(|_| ParseRationalError { kind: "numerator" })?;
                Ok(BigRational::from_integer(n))
            }
            Some((ns, ds)) => {
                let n: BigInt = ns
                    .parse()
                    .map_err(|_| ParseRationalError { kind: "numerator" })?;
                let d: BigInt = ds.parse().map_err(|_| ParseRationalError {
                    kind: "denominator",
                })?;
                if d.is_zero() {
                    return Err(ParseRationalError {
                        kind: "zero denominator",
                    });
                }
                Ok(BigRational::new(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rat(n: i64, d: i64) -> BigRational {
        BigRational::from_i64(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 7), BigRational::zero());
        assert!(rat(3, 1).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
        assert_eq!(-rat(1, 2), rat(-1, 2));
        assert_eq!(rat(-3, 7).abs(), rat(3, 7));
        assert_eq!(rat(2, 5).recip(), rat(5, 2));
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(7, 7) == rat(1, 1));
    }

    #[test]
    fn floor_values() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2));
        assert_eq!(rat(-4, 2).floor(), BigInt::from(-2));
    }

    #[test]
    fn f64_roundtrip() {
        for v in [0.0, 0.5, -0.25, 1.0 / 3.0, 1e-10, 12345.6789] {
            let r = BigRational::from_f64(v).unwrap();
            assert_eq!(r.to_f64(), v);
        }
        assert_eq!(BigRational::from_f64(f64::INFINITY), None);
    }

    #[test]
    fn display_parse() {
        assert_eq!(rat(1, 3).to_string(), "1/3");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!("-5/10".parse::<BigRational>().unwrap(), rat(-1, 2));
        assert_eq!("17".parse::<BigRational>().unwrap(), rat(17, 1));
        assert!("1/0".parse::<BigRational>().is_err());
        assert!("a/2".parse::<BigRational>().is_err());
    }

    #[test]
    fn best_approximation_examples() {
        // pi ~ 355/113 with denominators up to 200.
        let pi = BigRational::from_f64(std::f64::consts::PI).unwrap();
        assert_eq!(pi.best_approximation(&BigInt::from(200)), rat(355, 113));
        // Already exact values pass through.
        assert_eq!(rat(1, 3).best_approximation(&BigInt::from(10)), rat(1, 3));
        // Integer budget 1 snaps to nearest integer.
        assert_eq!(rat(7, 5).best_approximation(&BigInt::from(1)), rat(1, 1));
    }

    #[test]
    fn best_approximation_is_optimal_exhaustive() {
        // Against brute force on the N = 12 grid.
        let n = 12i64;
        for num in -30..30i64 {
            for den in [37i64, 41, 97] {
                let x = rat(num, den);
                let best = x.best_approximation(&BigInt::from(n));
                let err = (&best - &x).abs();
                for p in -40..40 {
                    for q in 1..=n {
                        let cand = rat(p, q);
                        let cand_err = (&cand - &x).abs();
                        assert!(cand_err >= err, "{x}: candidate {cand} beats chosen {best}");
                    }
                }
            }
        }
    }

    #[test]
    fn ceil_round_pow() {
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(6, 2).ceil(), BigInt::from(3));
        assert_eq!(rat(5, 2).round(), BigInt::from(3));
        assert_eq!(rat(-5, 2).round(), BigInt::from(-3));
        assert_eq!(rat(7, 3).round(), BigInt::from(2));
        assert_eq!(rat(2, 3).pow(3), rat(8, 27));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), rat(1, 1));
    }

    #[test]
    fn continued_fraction_examples() {
        let cf = rat(355, 113).continued_fraction();
        assert_eq!(cf, vec![BigInt::from(3), BigInt::from(7), BigInt::from(16)]);
        assert_eq!(rat(3, 1).continued_fraction(), vec![BigInt::from(3)]);
        // Negative values: floor-based first coefficient.
        let cf = rat(-7, 2).continued_fraction();
        assert_eq!(BigRational::from_continued_fraction(&cf), rat(-7, 2));
    }

    proptest! {
        #[test]
        fn continued_fraction_roundtrip(n in -400i64..400, d in 1i64..120) {
            let x = rat(n, d);
            let cf = x.continued_fraction();
            prop_assert_eq!(BigRational::from_continued_fraction(&cf), x);
            // Tail coefficients are >= 1.
            prop_assert!(cf[1..].iter().all(|a| a >= &BigInt::one()));
        }

        #[test]
        fn floor_ceil_round_consistency(n in -300i64..300, d in 1i64..60) {
            let x = rat(n, d);
            let fl = BigRational::from_integer(x.floor());
            let ce = BigRational::from_integer(x.ceil());
            prop_assert!(fl <= x && x <= ce);
            prop_assert!((&ce - &fl) <= BigRational::one());
            let ro = BigRational::from_integer(x.round());
            prop_assert!((&ro - &x).abs() <= BigRational::from_i64(1, 2));
        }

        #[test]
        fn add_commutes(a in -1000i64..1000, b in 1i64..100, c in -1000i64..1000, d in 1i64..100) {
            let x = rat(a, b);
            let y = rat(c, d);
            prop_assert_eq!(&x + &y, &y + &x);
        }

        #[test]
        fn mul_distributes(a in -50i64..50, b in 1i64..20, c in -50i64..50, d in 1i64..20, e in -50i64..50, f in 1i64..20) {
            let x = rat(a, b);
            let y = rat(c, d);
            let z = rat(e, f);
            prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        }

        #[test]
        fn best_approx_within_grid(num in -500i64..500, den in 1i64..500, n in 1i64..30) {
            let x = rat(num, den);
            let best = x.best_approximation(&BigInt::from(n));
            prop_assert!(best.denom() <= &BigInt::from(n));
            // Error is at most the distance to the floor integer.
            let floor = BigRational::from_integer(x.floor());
            prop_assert!((&best - &x).abs() <= (&floor - &x).abs() + BigRational::one());
        }
    }
}
