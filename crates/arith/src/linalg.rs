//! Exact rational linear algebra.
//!
//! The paper's positive result for outdegree awareness (§4.2) has every
//! agent solve the homogeneous system `M z = 0`, where `M` is read off the
//! minimum base of the network, and extract the unique (up to scale)
//! positive integer solution with coprime entries. [`QMatrix`] provides the
//! exact Gaussian elimination, rank, kernel basis, and the coprime-integer
//! scaling that this requires.

use crate::{lcm, BigInt, BigRational};
use std::fmt;

/// A dense matrix of exact rationals.
///
/// ```
/// use kya_arith::QMatrix;
/// let m = QMatrix::from_i64_rows(&[&[1, 2], &[2, 4]]);
/// assert_eq!(m.rank(), 1);
/// assert_eq!(m.kernel_basis().len(), 1);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct QMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BigRational>,
}

/// Error returned by kernel extraction when the kernel does not have the
/// shape the caller requires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// The kernel is trivial (`{0}`); the system has no non-zero solution.
    Trivial,
    /// The kernel has dimension greater than one, so no canonical ray
    /// exists.
    NotRankOne {
        /// Actual kernel dimension.
        dimension: usize,
    },
    /// The one-dimensional kernel is not spanned by a vector with all
    /// entries of one strict sign, so it cannot encode fibre cardinalities.
    NotPositive,
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Trivial => write!(f, "kernel is trivial"),
            KernelError::NotRankOne { dimension } => {
                write!(f, "kernel has dimension {dimension}, expected 1")
            }
            KernelError::NotPositive => {
                write!(f, "kernel ray has mixed-sign entries")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl QMatrix {
    /// An `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> QMatrix {
        QMatrix {
            rows,
            cols,
            data: vec![BigRational::zero(); rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> QMatrix {
        let mut m = QMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = BigRational::one();
        }
        m
    }

    /// Build from rows of machine integers (convenient in tests and when
    /// reading a matrix off a minimum base).
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_i64_rows(rows: &[&[i64]]) -> QMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = QMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = BigRational::from_integer(v);
            }
        }
        m
    }

    /// Build from a row-major vector of rationals.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<BigRational>) -> QMatrix {
        assert_eq!(data.len(), rows * cols, "dimension mismatch");
        QMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[BigRational]) -> Vec<BigRational> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| &self[(i, j)] * &v[j])
                    .sum::<BigRational>()
            })
            .collect()
    }

    /// Reduced row echelon form; returns (rref, pivot column indices).
    pub fn rref(&self) -> (QMatrix, Vec<usize>) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut row = 0;
        for col in 0..m.cols {
            if row == m.rows {
                break;
            }
            // Find a pivot in this column at or below `row`.
            let Some(p) = (row..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            m.swap_rows(row, p);
            let inv = m[(row, col)].recip();
            for j in col..m.cols {
                m[(row, j)] = &m[(row, j)] * &inv;
            }
            for r in 0..m.rows {
                if r != row && !m[(r, col)].is_zero() {
                    let factor = m[(r, col)].clone();
                    for j in col..m.cols {
                        let delta = &factor * &m[(row, j)];
                        m[(r, j)] = &m[(r, j)] - &delta;
                    }
                }
            }
            pivots.push(col);
            row += 1;
        }
        (m, pivots)
    }

    /// Rank of the matrix.
    pub fn rank(&self) -> usize {
        self.rref().1.len()
    }

    /// A basis of the kernel (null space), one vector per free column.
    ///
    /// The returned vectors are exact; the kernel dimension is
    /// `cols - rank`.
    pub fn kernel_basis(&self) -> Vec<Vec<BigRational>> {
        let (r, pivots) = self.rref();
        let pivot_set: Vec<Option<usize>> = {
            let mut v = vec![None; self.cols];
            for (row, &col) in pivots.iter().enumerate() {
                v[col] = Some(row);
            }
            v
        };
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set[free].is_some() {
                continue;
            }
            let mut vec = vec![BigRational::zero(); self.cols];
            vec[free] = BigRational::one();
            for (col, &maybe_row) in pivot_set.iter().enumerate() {
                if let Some(row) = maybe_row {
                    vec[col] = -&r[(row, free)];
                }
            }
            basis.push(vec);
        }
        basis
    }

    /// For a matrix whose kernel is one-dimensional and spanned by a
    /// strictly-signed vector, return the unique positive integer vector
    /// with coprime entries spanning the kernel.
    ///
    /// This is exactly the object the paper's agents compute in §4.2
    /// ("a positive integer vector z whose all entries are coprime and such
    /// that ker M = ℝ z"): the entries are the fibre cardinalities up to a
    /// common factor (eq. 2).
    ///
    /// # Errors
    ///
    /// - [`KernelError::Trivial`] if the matrix has full column rank,
    /// - [`KernelError::NotRankOne`] if the kernel dimension exceeds one,
    /// - [`KernelError::NotPositive`] if the spanning ray has mixed signs
    ///   or a zero entry.
    pub fn positive_integer_kernel(&self) -> Result<Vec<BigInt>, KernelError> {
        let basis = self.kernel_basis();
        match basis.len() {
            0 => Err(KernelError::Trivial),
            1 => scale_to_coprime_positive(&basis[0]).ok_or(KernelError::NotPositive),
            d => Err(KernelError::NotRankOne { dimension: d }),
        }
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(a * self.cols + j, b * self.cols + j);
        }
    }
}

/// Scale a rational vector to the positive integer vector with coprime
/// entries on the same ray, if the vector is strictly single-signed.
fn scale_to_coprime_positive(v: &[BigRational]) -> Option<Vec<BigInt>> {
    if v.is_empty() || v.iter().any(|x| x.is_zero()) {
        return None;
    }
    let all_pos = v.iter().all(|x| x.is_positive());
    let all_neg = v.iter().all(|x| x.is_negative());
    if !all_pos && !all_neg {
        return None;
    }
    // Multiply by lcm of denominators, then divide by gcd of numerators.
    let denom_lcm = v.iter().fold(BigInt::one(), |acc, x| lcm(&acc, x.denom()));
    let ints: Vec<BigInt> = v
        .iter()
        .map(|x| {
            let scaled = x.numer() * (&denom_lcm / x.denom());
            if all_neg {
                -scaled
            } else {
                scaled
            }
        })
        .collect();
    let g = ints.iter().fold(BigInt::zero(), |acc, x| acc.gcd(x));
    Some(ints.iter().map(|x| x / &g).collect())
}

impl std::ops::Index<(usize, usize)> for QMatrix {
    type Output = BigRational;
    fn index(&self, (i, j): (usize, usize)) -> &BigRational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for QMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut BigRational {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for QMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "QMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_and_zero() {
        let id = QMatrix::identity(3);
        assert_eq!(id.rank(), 3);
        assert!(id.kernel_basis().is_empty());
        let z = QMatrix::zeros(2, 3);
        assert_eq!(z.rank(), 0);
        assert_eq!(z.kernel_basis().len(), 3);
    }

    #[test]
    fn rref_simple() {
        let m = QMatrix::from_i64_rows(&[&[2, 4], &[1, 3]]);
        let (r, pivots) = m.rref();
        assert_eq!(pivots, vec![0, 1]);
        assert_eq!(r, QMatrix::identity(2));
    }

    #[test]
    fn kernel_of_rank_one_system() {
        // Base of a bidirectional star K_{1,3} collapsed: center fibre 1,
        // leaf fibre 3. M = [[-3, 1], [3, -1]] (diag d_ii - b_i).
        let m = QMatrix::from_i64_rows(&[&[-3, 1], &[3, -1]]);
        let z = m.positive_integer_kernel().unwrap();
        assert_eq!(z, vec![BigInt::from(1), BigInt::from(3)]);
    }

    #[test]
    fn kernel_errors() {
        assert_eq!(
            QMatrix::identity(2).positive_integer_kernel(),
            Err(KernelError::Trivial)
        );
        assert_eq!(
            QMatrix::zeros(2, 2).positive_integer_kernel(),
            Err(KernelError::NotRankOne { dimension: 2 })
        );
        // Kernel spanned by (1, -1): mixed signs.
        let m = QMatrix::from_i64_rows(&[&[1, 1]]);
        assert_eq!(m.positive_integer_kernel(), Err(KernelError::NotPositive));
    }

    #[test]
    fn kernel_vectors_annihilate() {
        let m = QMatrix::from_i64_rows(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        assert_eq!(m.rank(), 2);
        for v in m.kernel_basis() {
            let out = m.mul_vec(&v);
            assert!(out.iter().all(BigRational::is_zero));
        }
    }

    #[test]
    fn coprime_scaling() {
        let v = vec![
            BigRational::from_i64(2, 3),
            BigRational::from_i64(4, 3),
            BigRational::from_i64(2, 1),
        ];
        let z = scale_to_coprime_positive(&v).unwrap();
        assert_eq!(z, vec![BigInt::from(1), BigInt::from(2), BigInt::from(3)]);
        // Negative ray normalizes to positive.
        let neg: Vec<BigRational> = v.iter().map(|x| -x).collect();
        assert_eq!(scale_to_coprime_positive(&neg).unwrap(), z);
    }

    #[test]
    fn exactness_vs_float_ablation() {
        // A system that floating point cannot solve to a coprime integer
        // kernel: entries with denominators that are not dyadic.
        let m = QMatrix::from_vec(
            2,
            2,
            vec![
                BigRational::from_i64(1, 3),
                BigRational::from_i64(-1, 7),
                BigRational::from_i64(-1, 3),
                BigRational::from_i64(1, 7),
            ],
        );
        let z = m.positive_integer_kernel().unwrap();
        assert_eq!(z, vec![BigInt::from(3), BigInt::from(7)]);
    }

    proptest! {
        #[test]
        fn rank_of_outer_product_is_one(
            a in proptest::collection::vec(-20i64..20, 2..5),
            b in proptest::collection::vec(-20i64..20, 2..5),
        ) {
            prop_assume!(a.iter().any(|&x| x != 0) && b.iter().any(|&x| x != 0));
            let mut m = QMatrix::zeros(a.len(), b.len());
            for i in 0..a.len() {
                for j in 0..b.len() {
                    m[(i, j)] = BigRational::from_integer(a[i] * b[j]);
                }
            }
            prop_assert_eq!(m.rank(), 1);
        }

        #[test]
        fn kernel_dimension_theorem(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(-9i64..9, 25),
        ) {
            let mut m = QMatrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    m[(i, j)] = BigRational::from_integer(seed[i * 5 + j]);
                }
            }
            let rank = m.rank();
            prop_assert_eq!(m.kernel_basis().len(), cols - rank);
            for v in m.kernel_basis() {
                prop_assert!(m.mul_vec(&v).iter().all(BigRational::is_zero));
            }
        }
    }
}
