//! Breaking anonymity with one leader: exact multiset recovery
//! (Corollary 4.4 for static networks, §5.5 for dynamic ones).
//!
//! Run with `cargo run --example leader_census`.
//!
//! Without help, outdegree awareness yields frequencies only — the scale
//! `n` is invisible. One designated leader pins the scale: its fibre has
//! cardinality 1, so the census ray becomes exact multiplicities and any
//! symmetric function (here: the sum) becomes computable.

use know_your_audience::algos::frequency::CensusOutdegree;
use know_your_audience::algos::min_base::ViewState;
use know_your_audience::algos::push_sum::{FrequencyState, PushSumFrequency};
use know_your_audience::arith::BigInt;
use know_your_audience::core::functions::sum;
use know_your_audience::core::value;
use know_your_audience::graph::{generators, RandomDynamicGraph, StaticGraph};
use know_your_audience::runtime::{Execution, Isotropic, RunConfig};

fn main() {
    // ----- Static case: census + leader scaling (Corollary 4.4) -----
    let payloads: Vec<u64> = vec![6, 2, 6, 6, 2, 9, 6, 2];
    let n = payloads.len();
    let truth = sum(&payloads);
    // Agent 0 is the leader; the flag is part of its input value.
    let values: Vec<u64> = payloads
        .iter()
        .enumerate()
        .map(|(i, &p)| value::encode(p, i == 0))
        .collect();

    let g = generators::random_strongly_connected(n, 5, 8);
    let net = StaticGraph::new(g);
    let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
    exec.drive(&net, RunConfig::rounds((n + 10) as u64));

    let census = exec.outputs()[0].clone().expect("census stabilized");
    let mults = census
        .multiplicities_with_leaders(1, value::is_leader)
        .expect("leader fibre pins the scale");
    println!("static network, one leader — exact multiplicities:");
    let mut recovered_sum = BigInt::zero();
    let mut recovered_n = BigInt::zero();
    for (v, m) in &mults {
        let (payload, leader) = value::decode(*v);
        println!(
            "  value {payload}{}: x{m}",
            if leader { " (leader)" } else { "" }
        );
        recovered_sum += &(&BigInt::from(payload) * m);
        recovered_n += m;
    }
    println!("  recovered sum = {recovered_sum}, truth = {truth}");
    println!("  recovered n   = {recovered_n}, truth = {n}");
    assert_eq!(recovered_sum, truth);
    assert_eq!(recovered_n, BigInt::from(n));

    // ----- Dynamic case: leader Push-Sum (§5.5) -----
    let int_values: Vec<u64> = vec![4, 7, 4, 4, 7];
    let leaders = [true, false, false, false, false];
    let topology = RandomDynamicGraph::directed(5, 4, 31);
    let mut ps = Execution::new(
        Isotropic(PushSumFrequency::with_leaders(1)),
        FrequencyState::initial_with_leaders(&int_values, &leaders),
    );
    ps.drive(&topology, RunConfig::rounds(700));
    println!("\ndynamic network, one leader — multiplicities via Push-Sum:");
    let est = ps.outputs()[0].clone();
    for (v, x) in &est {
        println!(
            "  value {v}: {x:.6} (true {})",
            int_values.iter().filter(|&&w| w == *v).count()
        );
    }
    for (v, x) in &est {
        let true_mult = int_values.iter().filter(|&&w| w == *v).count() as f64;
        assert!((x - true_mult).abs() < 1e-6, "value {v}");
    }
    println!("asymptotic multiset recovery OK — §5.5 in action");
}
