//! End-to-end telemetry: observer counters flow unchanged from an
//! execution into `CellRecord` telemetry blocks, trace streams are
//! byte-stable across runs and worker counts, and the **unobserved**
//! `step` pays nothing measurable for the observer layer.

use kya_algos::gossip::SetGossip;
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::{Digraph, StaticGraph};
use kya_harness::{parse_graph, CellCtx, CellOutcome, ExperimentSpec, Runner, TelemetryMode};
use kya_runtime::telemetry::TraceSink;
use kya_runtime::{Algorithm, Broadcast, CountingObserver, Execution, Isotropic, RunConfig};

const ROUNDS: u64 = 7;

fn demo_spec() -> ExperimentSpec {
    ExperimentSpec::new("telemetry_demo")
        .topologies(["ring:{n}", "torus:{n}"])
        .sizes([6, 9])
        .rounds(ROUNDS)
}

/// Runs the same Push-Sum execution twice — once under a
/// [`CountingObserver`], once under a [`TraceSink`] — and reports the
/// counters of the first with the events of the second, so the test can
/// cross-check the two observers against each other.
fn traced_cell(ctx: &CellCtx) -> CellOutcome {
    let g = ctx.graph().expect("static label");
    let n = g.n();
    let values: Vec<f64> = (0..n).map(|i| ((i * i) % 13) as f64).collect();
    let net = StaticGraph::new((*g).clone());
    let mut counter = CountingObserver::new();
    Execution::new(Isotropic(PushSum), PushSumState::averaging(&values))
        .drive(&net, RunConfig::rounds(ctx.rounds()).observer(&mut counter));
    let mut trace = TraceSink::new();
    Execution::new(Isotropic(PushSum), PushSumState::averaging(&values))
        .drive(&net, RunConfig::rounds(ctx.rounds()).observer(&mut trace));
    let (events, summary) = trace.finish();
    assert_eq!(summary, counter.summary(), "the two observers agree");
    CellOutcome::new()
        .telemetry(counter.summary())
        .trace(events)
}

#[test]
fn counting_totals_land_in_cell_records() {
    let spec = demo_spec();
    let mode = TelemetryMode {
        trace: true,
        residuals: false,
    };
    let sink = Runner::new(&spec)
        .telemetry(mode)
        .workers(2)
        .run(traced_cell);
    assert_eq!(sink.records().len(), 4);
    for r in sink.records() {
        let t = r.telemetry.as_ref().expect("telemetry block recorded");
        // Independent ground truth: one delivery per edge of the closed
        // graph per round, of which exactly the n self-loops are
        // self-messages (rings and tori have none of their own).
        let closed = parse_graph(&r.topology).expect("grammar").with_self_loops();
        let n = closed.n() as u64;
        let edges = closed.edge_count() as u64;
        assert_eq!(t.rounds, ROUNDS, "{}", r.topology);
        assert_eq!(t.self_messages, ROUNDS * n, "{}", r.topology);
        assert_eq!(t.messages, ROUNDS * (edges - n), "{}", r.topology);
        assert_eq!(t.dropped, 0);
        assert!(t.payload_bytes > 0 && t.peak_state_bytes > 0);
        // The trace stream restates the same counters per round.
        assert_eq!(r.trace.len() as u64, ROUNDS);
        let msgs: u64 = r.trace.iter().map(|e| e.messages).sum();
        let bytes: u64 = r.trace.iter().map(|e| e.payload_bytes).sum();
        assert_eq!(msgs, t.messages);
        assert_eq!(bytes, t.payload_bytes);
    }
}

#[test]
fn trace_streams_are_identical_across_runs_and_workers() {
    let spec = demo_spec();
    let mode = TelemetryMode {
        trace: true,
        residuals: false,
    };
    let run = |workers: usize| {
        Runner::new(&spec)
            .telemetry(mode)
            .workers(workers)
            .run(traced_cell)
            .to_trace_ndjson()
    };
    let baseline = run(1);
    assert!(!baseline.is_empty());
    assert_eq!(baseline, run(1), "repeat run diverged");
    assert_eq!(baseline, run(4), "worker count changed trace bytes");
}

/// The executor's round body before the observer layer existed,
/// reproduced against the public APIs — the cost baseline that the
/// `NullObserver`-monomorphized `step` must match.
fn baseline_step<A: Algorithm>(algo: &A, states: &mut [A::State], graph: &Digraph) {
    let n = graph.n();
    let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
        .map(|v| Vec::with_capacity(graph.indegree(v)))
        .collect();
    for (v, state) in states.iter().enumerate() {
        assert!(graph.has_self_loop(v));
        let outdeg = graph.outdegree(v);
        let msgs = algo.send(state, outdeg);
        assert_eq!(msgs.len(), outdeg);
        let mut ports: Vec<_> = graph
            .out_edges(v)
            .map(|e| (graph.edges()[e].port, e))
            .collect();
        ports.sort_unstable();
        for (msg, (_, e)) in msgs.into_iter().zip(ports) {
            inboxes[graph.edges()[e].dst].push(msg);
        }
    }
    for (v, inbox) in inboxes.into_iter().enumerate() {
        states[v] = algo.transition(&states[v], &inbox);
    }
}

/// The `NullObserver`-monomorphized `step` computes byte-for-byte the
/// same states as the inline pre-observer round body.
///
/// This test used to double as an env-gated wall-clock comparison
/// (`KYA_TIMING_ASSERT=1` armed a median-of-9 `step` vs baseline timing
/// assert). That gate is retired: wall-clock now lives in the separate
/// timing channel — the `flat_engine` bench's probe-overhead group and
/// the `phase_us` block of `kya profile` — and never inside a functional
/// test, which keeps `cargo test` load-insensitive. Only the
/// unconditional state-equality check remains.
#[test]
fn unobserved_step_matches_inline_baseline() {
    let g = parse_graph("random:64:4:7")
        .expect("grammar")
        .with_self_loops();
    let values: Vec<u64> = (0..64).map(|i| (i * 37) % 101).collect();
    const STEPS: usize = 40;
    let algo = Broadcast(SetGossip);
    let mut states = SetGossip::initial(&values);
    let mut exec = Execution::new(Broadcast(SetGossip), SetGossip::initial(&values));
    for _ in 0..STEPS {
        baseline_step(&algo, &mut states, &g);
        exec.step(&g);
        assert_eq!(
            exec.states(),
            &states[..],
            "observed executor diverged from the inline round body"
        );
    }
}
