//! Offline drop-in subset of the `crossbeam` scoped-thread API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the one `crossbeam` entry point it uses — [`scope`] — on top
//! of `std::thread::scope` (stable since Rust 1.63). The API mirrors
//! `crossbeam::scope`: the closure receives a [`Scope`], `spawn` hands
//! each worker closure a placeholder argument (upstream passes the scope
//! itself for nested spawns; the workspace's workers ignore it), and the
//! result is wrapped in `thread::Result` like upstream.

#![forbid(unsafe_code)]

use std::thread;

/// Scope handle passed to the [`scope`] closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Join handle for a scoped worker.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the worker and return its result (`Err` if it panicked).
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives a placeholder unit
    /// argument (upstream passes a nested scope; write workers as
    /// `|_| ...`).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// all spawned threads are joined before `scope` returns.
///
/// Matches `crossbeam::scope`'s `Result` wrapper: this implementation
/// always returns `Ok` (panics of unjoined workers propagate as panics,
/// per `std::thread::scope` semantics).
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::scope;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4, 5, 6];
        let total: u64 = scope(|s| {
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let a = s.spawn(|_| lo.iter().sum::<u64>());
            let b = s.spawn(|_| hi.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 21);
    }

    #[test]
    fn worker_panic_is_reported_at_join() {
        let r = scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
