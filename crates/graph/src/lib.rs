//! Directed multigraphs and dynamic graphs for anonymous-network
//! simulation.
//!
//! The communication structure of the paper's model (§2.1) is a *dynamic
//! graph*: an infinite sequence `G(1), G(2), ...` of directed graphs over a
//! fixed vertex set, each with a self-loop at every vertex. Static
//! networks are the constant sequences. Impossibility arguments (§3–4)
//! additionally need directed **multi**graphs, because the minimum base of
//! a network generally has parallel edges.
//!
//! This crate provides:
//!
//! - [`Digraph`]: a directed multigraph with optional output-port labels
//!   on edges (the paper's "output port awareness" colorings),
//! - [`generators`]: rings, stars, tori, hypercubes, random strongly
//!   connected digraphs, and graphs built as fibration lifts of a base,
//! - [`connectivity`]: strong connectivity, diameter, reachability,
//! - [`product`]: the round-composition product of §2.1 (footnote 3),
//! - [`dynamic`]: dynamic graphs, dynamic diameter, and round-indexed
//!   adversaries (static, periodic, randomized, asynchronous-start
//!   masking).
//!
//! # Example
//!
//! ```
//! use kya_graph::{generators, connectivity};
//! let ring = generators::directed_ring(6);
//! assert!(connectivity::is_strongly_connected(&ring));
//! assert_eq!(connectivity::diameter(&ring), Some(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod connectivity;
mod csr;
mod digraph;
pub mod dynamic;
pub mod generators;
pub mod product;

pub use csr::RoutingPlan;
pub use digraph::{Digraph, Edge, EdgeId, PortOrder, Vertex};
pub use dynamic::{
    DynamicGraph, Fairness, PairingScheduler, PairwiseMatching, PeriodicGraph, RandomDynamicGraph,
    RoundRobinCover, SparselyConnected, StaticGraph, UniformRandom,
};
