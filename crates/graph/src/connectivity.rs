//! Reachability, strong connectivity, and diameters.

use crate::{Digraph, Vertex};
use std::collections::VecDeque;

/// Breadth-first distances from `src` (in edges); `None` for unreachable
/// vertices.
///
/// # Panics
///
/// Panics if `src` is out of range.
pub fn bfs_distances(g: &Digraph, src: Vertex) -> Vec<Option<usize>> {
    assert!(src < g.n(), "source out of range");
    let mut dist = vec![None; g.n()];
    dist[src] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        for v in g.out_neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether every vertex can reach every other vertex.
///
/// The empty graph is vacuously strongly connected; a single vertex is
/// strongly connected.
pub fn is_strongly_connected(g: &Digraph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    let forward = bfs_distances(g, 0).iter().all(Option::is_some);
    let backward = bfs_distances(&g.transpose(), 0).iter().all(Option::is_some);
    forward && backward
}

/// The diameter: the largest finite distance between any ordered pair, or
/// `None` if the graph is not strongly connected (or has no vertices).
///
/// ```
/// use kya_graph::{connectivity::diameter, generators};
/// assert_eq!(diameter(&generators::directed_ring(5)), Some(4));
/// assert_eq!(diameter(&generators::complete(4)), Some(1));
/// ```
pub fn diameter(g: &Digraph) -> Option<usize> {
    if g.n() == 0 {
        return None;
    }
    let mut max = 0;
    for src in 0..g.n() {
        for d in bfs_distances(g, src) {
            max = max.max(d?);
        }
    }
    Some(max)
}

/// All-pairs distance matrix: `m[i][j]` is the BFS distance from `i` to
/// `j`, or `None` if unreachable.
pub fn distance_matrix(g: &Digraph) -> Vec<Vec<Option<usize>>> {
    (0..g.n()).map(|v| bfs_distances(g, v)).collect()
}

/// Eccentricity of every vertex (the largest distance *from* it), or
/// `None` for vertices that cannot reach the whole graph.
pub fn eccentricities(g: &Digraph) -> Vec<Option<usize>> {
    (0..g.n())
        .map(|v| {
            bfs_distances(g, v)
                .into_iter()
                .try_fold(0usize, |acc, d| d.map(|d| acc.max(d)))
        })
        .collect()
}

/// The radius: the smallest eccentricity, or `None` if no vertex reaches
/// every other (or the graph is empty).
///
/// ```
/// use kya_graph::{connectivity::radius, generators};
/// // The star's center sees everyone in one hop.
/// assert_eq!(radius(&generators::star(5)), Some(1));
/// ```
pub fn radius(g: &Digraph) -> Option<usize> {
    eccentricities(g).into_iter().flatten().min()
}

/// Strongly connected components in reverse topological order
/// (Kosaraju's algorithm). Each component is a sorted vertex list.
pub fn strongly_connected_components(g: &Digraph) -> Vec<Vec<Vertex>> {
    let n = g.n();
    // First pass: finish order on the transpose.
    let gt = g.transpose();
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative DFS with explicit post-order.
        let mut stack = vec![(start, gt.out_neighbors(start).collect::<Vec<_>>(), 0usize)];
        visited[start] = true;
        while let Some((u, neigh, idx)) = stack.last_mut() {
            if let Some(&v) = neigh.get(*idx) {
                *idx += 1;
                if !visited[v] {
                    visited[v] = true;
                    stack.push((v, gt.out_neighbors(v).collect(), 0));
                }
            } else {
                order.push(*u);
                stack.pop();
            }
        }
    }
    // Second pass: BFS on g in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut comps: Vec<Vec<Vertex>> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = comps.len();
        let mut members = vec![start];
        comp[start] = id;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for v in g.out_neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = id;
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn ring_distances() {
        let g = generators::directed_ring(4);
        assert_eq!(
            bfs_distances(&g, 0),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn connectivity_checks() {
        assert!(is_strongly_connected(&generators::directed_ring(7)));
        assert!(is_strongly_connected(&Digraph::new(1)));
        assert!(is_strongly_connected(&Digraph::new(0)));
        let path = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(!is_strongly_connected(&path));
        assert_eq!(diameter(&path), None);
    }

    #[test]
    fn diameters() {
        assert_eq!(diameter(&generators::bidirectional_ring(6)), Some(3));
        assert_eq!(diameter(&generators::complete(5)), Some(1));
        assert_eq!(diameter(&Digraph::new(1)), Some(0));
        assert_eq!(diameter(&Digraph::new(0)), None);
    }

    #[test]
    fn distance_and_radius() {
        let star = generators::star(4);
        assert_eq!(radius(&star), Some(1));
        assert_eq!(diameter(&star), Some(2));
        let ecc = eccentricities(&star);
        assert_eq!(ecc[0], Some(1));
        assert!(ecc[1..].iter().all(|&e| e == Some(2)));
        let m = distance_matrix(&star);
        assert_eq!(m[1][2], Some(2));
        assert_eq!(m[0][3], Some(1));
        // A path graph: endpoint cannot be reached backwards.
        let path = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(eccentricities(&path), vec![Some(2), None, None]);
        assert_eq!(radius(&path), Some(2));
        assert_eq!(radius(&Digraph::new(0)), None);
    }

    #[test]
    fn sccs() {
        // Two 2-cycles joined by a one-way edge.
        let g = Digraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        assert!(comps.contains(&vec![0, 1]));
        assert!(comps.contains(&vec![2, 3]));
        // Strongly connected graph: one component.
        assert_eq!(
            strongly_connected_components(&generators::directed_ring(5)).len(),
            1
        );
    }
}
