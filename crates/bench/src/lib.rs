//! Shared harness code for the experiment binaries and criterion benches.
//!
//! The binaries regenerate the paper's evaluation artifacts:
//!
//! - `table1` / `table2`: every cell of Tables 1 and 2, each certified by
//!   a *positive* run (the witnessing algorithm computes the class
//!   representative) and a *negative* run (the lifting-lemma
//!   counterexample shows the next-larger class is out of reach);
//! - `f1_pushsum_rate`: Theorem 5.2's `O(n² D log 1/ε)` convergence
//!   bound, swept over `n`, `D`, and `ε`;
//! - `f2_minbase_rounds`: the `n + D` stabilization bound of §3.2 and the
//!   depth-cap (finite-state) trade-off of §4.2;
//! - `f4_metropolis_vs_pushsum`: the §5 algorithm family compared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod profile;

use kya_algos::min_base::ViewState;
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::{generators, Digraph, DynamicGraph, StaticGraph};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::{Algorithm, Execution, Isotropic, RunConfig};

/// A named static test network with inputs.
pub struct StaticCase {
    /// Short label for report rows.
    pub name: &'static str,
    /// The topology (self-loops added by the runtime).
    pub graph: Digraph,
    /// Per-agent input values.
    pub values: Vec<u64>,
}

/// The standard directed family used by the Table 1 harness.
pub fn directed_cases() -> Vec<StaticCase> {
    vec![
        StaticCase {
            name: "ring8",
            graph: generators::directed_ring(8),
            values: vec![5, 3, 5, 3, 5, 3, 5, 3],
        },
        StaticCase {
            name: "torus3x3",
            graph: generators::directed_torus(3, 3),
            values: vec![1, 2, 3, 1, 2, 3, 1, 2, 3],
        },
        StaticCase {
            name: "random10",
            graph: generators::random_strongly_connected(10, 8, 7),
            values: vec![9, 9, 1, 4, 4, 4, 9, 1, 1, 4],
        },
        StaticCase {
            name: "lift(2,3,4)",
            graph: {
                let base = generators::random_strongly_connected(3, 2, 17).with_self_loops();
                generators::connected_lift(&base, &[2, 3, 4], 17, 256)
                    .expect("connected lift")
                    .0
            },
            values: vec![0, 0, 100, 100, 100, 200, 200, 200, 200],
        },
    ]
}

/// The standard bidirectional family used by the symmetric column.
pub fn symmetric_cases() -> Vec<StaticCase> {
    vec![
        StaticCase {
            name: "star6",
            graph: generators::star(6),
            values: vec![8, 2, 2, 2, 2, 2],
        },
        StaticCase {
            name: "hypercube3",
            graph: generators::hypercube(3),
            values: vec![1, 1, 2, 2, 3, 3, 4, 4],
        },
        StaticCase {
            name: "randbi9",
            graph: generators::random_bidirectional_connected(9, 5, 3),
            values: vec![6, 6, 6, 1, 1, 2, 2, 2, 2],
        },
    ]
}

/// Enough rounds for any static min-base pipeline on `g` (`n + D` plus
/// slack).
pub fn stabilization_budget(g: &Digraph) -> u64 {
    let d = kya_graph::connectivity::diameter(&g.with_self_loops()).unwrap_or(g.n());
    (g.n() + d + 8) as u64
}

/// Run `algo` on a static graph and return the final outputs.
pub fn run_static<A: Algorithm + Sync>(
    algo: A,
    g: &Digraph,
    inits: Vec<A::State>,
    rounds: u64,
) -> Vec<A::Output>
where
    A::State: Send + Sync,
    A::Msg: Send + Sync,
{
    let net = StaticGraph::new(g.clone());
    let mut exec = Execution::new(algo, inits);
    exec.drive(&net, RunConfig::rounds(rounds));
    exec.outputs()
}

/// Rounds until every Push-Sum output is within `eps` of the average
/// *and stays there* through `max_rounds` (returns `None` on timeout).
pub fn pushsum_rounds_to(
    net: &dyn DynamicGraph,
    values: &[f64],
    eps: f64,
    max_rounds: u64,
) -> Option<u64> {
    let avg = values.iter().sum::<f64>() / values.len() as f64;
    let mut exec = Execution::new(Isotropic(PushSum), PushSumState::averaging(values));
    exec.drive(
        net,
        RunConfig::rounds(max_rounds).measure(&EuclideanMetric, &avg, eps),
    )
    .converged_at
}

/// First round at which every agent's distributed min-base candidate has
/// reached its final (round-`max`) value. Returns `(stabilized_round,
/// rounds_run)`.
pub fn minbase_stabilization_round<A>(
    algo: A,
    g: &Digraph,
    values: &[u64],
    max_rounds: u64,
) -> Option<u64>
where
    A: Algorithm<State = ViewState>,
    A::Output: PartialEq + Clone,
{
    let net = StaticGraph::new(g.clone());
    let mut exec = Execution::new(algo, ViewState::initial(values));
    let mut history: Vec<Vec<A::Output>> = Vec::new();
    for _ in 0..max_rounds {
        let gr = net.graph(exec.round() + 1);
        exec.step(&gr);
        history.push(exec.outputs());
    }
    let final_outputs = history.last()?.clone();
    // Walk backwards to the first round from which outputs never change.
    let mut stab = history.len();
    for (i, outs) in history.iter().enumerate().rev() {
        if *outs == final_outputs {
            stab = i + 1; // rounds are 1-based
        } else {
            break;
        }
    }
    Some(stab as u64)
}

/// Pretty one-line f64 formatting for report tables.
pub fn fmt_round(x: f64) -> String {
    if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_algos::gossip::SetGossip;
    use kya_runtime::Broadcast;

    #[test]
    fn cases_are_well_formed() {
        for case in directed_cases() {
            assert_eq!(case.graph.n(), case.values.len(), "{}", case.name);
            assert!(
                kya_graph::connectivity::is_strongly_connected(&case.graph),
                "{}",
                case.name
            );
        }
        for case in symmetric_cases() {
            assert_eq!(case.graph.n(), case.values.len(), "{}", case.name);
            assert!(case.graph.is_bidirectional(), "{}", case.name);
        }
    }

    #[test]
    fn pushsum_rounds_measurable() {
        let net = StaticGraph::new(generators::directed_ring(4));
        let r = pushsum_rounds_to(&net, &[0.0, 1.0, 2.0, 3.0], 1e-3, 2000).expect("converges");
        assert!(r > 0 && r < 2000);
    }

    #[test]
    fn minbase_stabilization_measurable() {
        let g = generators::directed_ring(5);
        let r = minbase_stabilization_round(
            Broadcast(kya_algos::min_base::MinBaseBroadcast),
            &g,
            &[1, 2, 1, 2, 1],
            40,
        )
        .expect("stabilizes");
        assert!(r <= 12, "ring of 5 stabilizes quickly, got {r}");
    }

    #[test]
    fn run_static_helper() {
        let g = generators::directed_ring(3);
        let outs = run_static(Broadcast(SetGossip), &g, SetGossip::initial(&[5, 1, 3]), 4);
        assert!(outs.iter().all(|s| s == &vec![1, 3, 5]));
    }
}
