//! The minimum base of a (valued, port-colored) graph.
//!
//! Every graph has, up to isomorphism, a unique *fibration prime* base —
//! a graph that admits no further collapse — reached by quotienting along
//! the coarsest in-equitable partition (§3.2 of the paper, after Boldi &
//! Vigna). The minimum base, together with the fibre cardinalities, is
//! the complete "anonymity type" of a static network: it is what any
//! agent can eventually learn, and the paper's positive results (§4.2)
//! all start from it.

use crate::morphism::GraphMorphism;
use crate::refine::{coarsest_equitable_partition, Partition};
use kya_graph::{Digraph, Vertex};
use std::collections::HashMap;

/// The minimum base of a graph: the quotient multigraph, the projection
/// fibration, and the fibre data.
///
/// ```
/// use kya_graph::generators;
/// use kya_fibration::MinimumBase;
///
/// // Star on 5 vertices: center collapses to one base vertex, the four
/// // leaves to another.
/// let g = generators::star(5);
/// let mb = MinimumBase::compute(&g, &vec![0; 5]);
/// assert_eq!(mb.base().n(), 2);
/// let mut sizes = mb.fibre_sizes().to_vec();
/// sizes.sort_unstable();
/// assert_eq!(sizes, vec![1, 4]);
/// ```
#[derive(Clone, Debug)]
pub struct MinimumBase {
    base: Digraph,
    base_values: Vec<u64>,
    partition: Partition,
    projection: GraphMorphism,
}

impl MinimumBase {
    /// Compute the minimum base of `g` with vertex values `values`
    /// (port labels on edges, if any, are respected automatically).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != g.n()` or `g` has no vertices.
    pub fn compute(g: &Digraph, values: &[u64]) -> MinimumBase {
        assert!(g.n() > 0, "minimum base of the empty graph");
        let partition = coarsest_equitable_partition(g, values);
        let m = partition.num_classes();
        let members = partition.members();

        // Base vertices = classes. Base in-edges of class j = in-edges of
        // a representative of j, with sources replaced by their classes.
        let mut base = Digraph::new(m);
        // For the projection's edge map we must associate every G-edge
        // into any member of class j with a specific base edge. Because
        // the partition is equitable, the in-profile (source class, port)
        // of every member matches the representative's, so we can match
        // greedily within each (source class, port) group.
        let mut base_edges_by_group: HashMap<(usize, usize, Option<u32>), Vec<usize>> =
            HashMap::new();
        for (j, mem) in members.iter().enumerate() {
            let rep: Vertex = mem[0];
            for e in g.in_edges(rep) {
                let edge = g.edges()[e];
                let src_class = partition.class_of(edge.src);
                let id = base.add_edge_with_port(src_class, j, edge.port);
                base_edges_by_group
                    .entry((src_class, j, edge.port))
                    .or_default()
                    .push(id);
            }
        }

        // Edge map: per target vertex, hand out base edges group by group.
        let mut edge_map = vec![usize::MAX; g.edge_count()];
        for (j, mem) in members.iter().enumerate() {
            for &v in mem {
                let mut cursor: HashMap<(usize, usize, Option<u32>), usize> = HashMap::new();
                for e in g.in_edges(v) {
                    let edge = g.edges()[e];
                    let key = (partition.class_of(edge.src), j, edge.port);
                    let k = cursor.entry(key).or_insert(0);
                    let pool = base_edges_by_group
                        .get(&key)
                        .expect("equitable partition guarantees matching groups");
                    edge_map[e] = pool[*k];
                    *k += 1;
                }
            }
        }

        let base_values: Vec<u64> = members.iter().map(|mem| values[mem[0]]).collect();
        let projection = GraphMorphism {
            vertex_map: partition.classes().to_vec(),
            edge_map,
        };
        MinimumBase {
            base,
            base_values,
            partition,
            projection,
        }
    }

    /// The quotient multigraph.
    pub fn base(&self) -> &Digraph {
        &self.base
    }

    /// Values of the base vertices (each fibre is value-homogeneous).
    pub fn base_values(&self) -> &[u64] {
        &self.base_values
    }

    /// The fibre partition of the original vertices.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The projection fibration `G -> base`.
    pub fn projection(&self) -> &GraphMorphism {
        &self.projection
    }

    /// Cardinalities of the fibres, indexed by base vertex.
    pub fn fibre_sizes(&self) -> Vec<usize> {
        self.partition.class_sizes()
    }

    /// The multiplicity `d_{i,j}`: number of base edges from `i` to `j`
    /// (equivalently, in-edges from fibre `i` at any vertex of fibre `j`).
    pub fn edge_multiplicity(&self, i: Vertex, j: Vertex) -> usize {
        self.base.multiplicity(i, j)
    }

    /// Whether the original graph is fibration prime (it *is* its own
    /// minimum base: no two vertices are indistinguishable).
    pub fn is_prime(&self) -> bool {
        self.base.n() == self.partition.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::verify_fibration;
    use kya_graph::generators;

    fn check(g: &Digraph, values: &[u64]) -> MinimumBase {
        let mb = MinimumBase::compute(g, values);
        verify_fibration(mb.projection(), g, mb.base(), values, mb.base_values())
            .expect("projection must be a fibration");
        mb
    }

    #[test]
    fn uniform_ring_collapses_to_loop() {
        let g = generators::directed_ring(9);
        let mb = check(&g, &[0; 9]);
        assert_eq!(mb.base().n(), 1);
        assert_eq!(mb.base().edge_count(), 1);
        assert_eq!(mb.fibre_sizes(), vec![9]);
        assert!(!mb.is_prime());
    }

    #[test]
    fn valued_ring_collapses_to_smaller_ring() {
        // R_6 with values of period 2 collapses to R_2.
        let g = generators::directed_ring(6);
        let values: Vec<u64> = (0..6).map(|v| (v % 2) as u64).collect();
        let mb = check(&g, &values);
        assert_eq!(mb.base().n(), 2);
        assert_eq!(mb.fibre_sizes(), vec![3, 3]);
        assert_eq!(mb.edge_multiplicity(0, 1), 1);
        assert_eq!(mb.edge_multiplicity(1, 0), 1);
        assert_eq!(mb.edge_multiplicity(0, 0), 0);
    }

    #[test]
    fn star_base_has_parallel_edges() {
        let g = generators::star(4); // center + 3 leaves
        let mb = check(&g, &[0; 4]);
        assert_eq!(mb.base().n(), 2);
        // The center's class receives 3 parallel edges from the leaf class.
        let (center_class, leaf_class) = if mb.fibre_sizes()[0] == 1 {
            (0, 1)
        } else {
            (1, 0)
        };
        assert_eq!(mb.edge_multiplicity(leaf_class, center_class), 3);
        assert_eq!(mb.edge_multiplicity(center_class, leaf_class), 1);
    }

    #[test]
    fn prime_graph_is_its_own_base() {
        // A ring with all-distinct values is rigid.
        let g = generators::directed_ring(5);
        let values: Vec<u64> = (0..5).map(|v| v as u64).collect();
        let mb = check(&g, &values);
        assert!(mb.is_prime());
        assert_eq!(mb.base().n(), 5);
        assert_eq!(mb.base().edge_count(), 5);
    }

    #[test]
    fn lift_of_base_recovers_base_fibres() {
        // Build a lift with prescribed fibre sizes and check the minimum
        // base recovers the fibre-size ray (up to overall ordering).
        let mut base = Digraph::new(2);
        base.add_edge(0, 1);
        base.add_edge(1, 0);
        base.add_edge(0, 0);
        // Fibre sizes (2, 4): fibre 1 vertices each get 1 in-edge from
        // fibre 0; fibre 0 vertices get in-edges from fibres 1 and 0.
        let (g, fibre_of) = generators::lift(&base, &[2, 4], 1);
        let mb = check(&g, &[0; 6]);
        // The minimum base may be even smaller than `base` if the lift
        // added accidental symmetry, but fibre classes must refine the
        // prescribed fibres' *coarsening*: here sizes must group 2 and 4.
        let mut sizes = mb.fibre_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 4]);
        // Every computed fibre must be a union of... in fact equal to the
        // prescribed fibres here.
        for members in mb.partition().members() {
            let f0 = fibre_of[members[0]];
            assert!(members.iter().all(|&v| fibre_of[v] == f0));
        }
    }

    #[test]
    fn hypercube_is_homogeneous() {
        let g = generators::hypercube(3);
        let mb = check(&g, &[0; 8]);
        assert_eq!(mb.base().n(), 1);
        assert_eq!(mb.base().edge_count(), 3);
        assert_eq!(mb.fibre_sizes(), vec![8]);
    }

    #[test]
    fn symmetric_ports_still_collapse() {
        // Bidirectional ring with ports assigned by direction (clockwise
        // port 0, counterclockwise port 1): the rotational symmetry is
        // preserved, so the graph still collapses to a single vertex with
        // two port-colored loops.
        let n = 4;
        let mut g = Digraph::new(n);
        for i in 0..n {
            g.add_edge_with_port(i, (i + 1) % n, Some(0));
            g.add_edge_with_port((i + 1) % n, i, Some(1));
        }
        let mb = check(&g, &vec![0; n]);
        assert_eq!(mb.base().n(), 1);
        assert_eq!(mb.base().edge_count(), 2);
    }

    #[test]
    fn asymmetric_ports_prevent_collapse() {
        // The same ring with insertion-order canonical ports breaks the
        // symmetry: vertices become pairwise distinguishable.
        let g = generators::bidirectional_ring(4).with_canonical_ports();
        let mb = check(&g, &[0; 4]);
        assert_eq!(mb.base().n(), 4);
        assert!(mb.is_prime());
    }

    #[test]
    fn random_graphs_projection_verifies() {
        for seed in 0..8u64 {
            let g = generators::random_strongly_connected(14, 12, seed);
            let values: Vec<u64> = (0..14).map(|v| (v % 4) as u64).collect();
            let _ = check(&g, &values);
        }
    }

    #[test]
    fn fibre_count_equation_holds() {
        // eq. (1) of the paper: b_i |fibre(i)| = sum_j d_{i,j} |fibre(j)|
        // where b_i is the outdegree of any member of fibre i.
        for seed in [3u64, 5, 8] {
            let base = generators::random_strongly_connected(3, 2, seed);
            let (g, _) = generators::lift(&base, &[2, 3, 4], 1);
            let mb = check(&g, &vec![0; g.n()]);
            let sizes = mb.fibre_sizes();
            for i in 0..mb.base().n() {
                let member = mb.partition().members()[i][0];
                // b_i: outdegree shared by fibre members only when the
                // lift is outdegree-homogeneous; compute per-member sum
                // instead: total edges leaving fibre i equals
                // sum_j d_{i,j} |fibre(j)|.
                let total_out: usize = mb.partition().members()[i]
                    .iter()
                    .map(|&v| g.outdegree(v))
                    .sum();
                let rhs: usize = (0..mb.base().n())
                    .map(|j| mb.edge_multiplicity(i, j) * sizes[j])
                    .sum();
                assert_eq!(total_out, rhs, "seed {seed}, fibre {i}");
                let _ = member;
            }
        }
    }
}
