//! The flat executor: struct-of-arrays state, CSR routing, zero
//! per-round allocation — the million-agent hot path.
//!
//! The boxed [`Execution`](crate::Execution) allocates a
//! `Vec<Vec<A::Msg>>` of inboxes every round and re-derives the
//! canonical delivery order by sorting; that tops out around 10^3–10^4
//! agents. [`FlatExecution`] rebuilds the round loop from the ground up
//! for f64 algorithms on **static** graphs:
//!
//! - **State** lives in `STATE_LANES` parallel `Vec<f64>` columns (one
//!   entry per agent) — no boxed automata, no per-agent allocation.
//! - **Routing** is frozen at construction into a
//!   [`RoutingPlan`](kya_graph::RoutingPlan): per-edge send slots in
//!   port-rank order plus per-destination inbox offsets sorted once
//!   into the canonical ascending `(source id, port rank)` order. A
//!   round's routing is then a pure gather,
//!   `arena[slot] = send_buf[gather[slot]]`.
//! - **Messages** are written into a single reusable flat arena indexed
//!   by those offsets; after the first round the executor allocates
//!   nothing.
//! - **Parallelism** shards both the send and the gather+transition
//!   phases over contiguous agent ranges (crossbeam scope, split
//!   mutable slices — no unsafe). Every slot is statically assigned,
//!   so parallel runs are **bitwise identical** to sequential ones at
//!   any thread count (`kya check` oracle `flat`, and the proptest in
//!   `tests/flat_equivalence.rs`, pin this against the boxed path).
//!
//! The price is genericity: a [`FlatAlgorithm`] is isotropic (one
//! message per round, replicated to every port) with fixed-width f64
//! state and message vectors. Push-Sum and Metropolis — the paper's
//! quantitative workhorses — fit exactly; `kya-algos` implements both.

use kya_graph::{Digraph, RoutingPlan};
use std::ops::Range;
use std::time::Instant;

use crate::config::FlatRunConfig;
use crate::execution::shard_ranges;
use crate::faults::FaultEvents;
use crate::probe::{FlatProbe, NullProbe, PhaseTimes, ShardCounters};
use crate::report::CellReport;

/// Target number of strided samples per state lane handed to
/// [`FlatProbe::on_lane_sample`] each round. The stride is computed
/// from `n` alone, so the sample set is independent of thread count.
const LANE_SAMPLE_TARGET: usize = 64;

/// Maximum number of f64 lanes a flat state or message may use; bounds
/// the executor's stack scratch buffers.
pub const MAX_LANES: usize = 4;

/// Largest structural degree a flat algorithm may carry in an f64 lane
/// without rounding: every integer up to `2^53 - 1` is exactly
/// representable, `2^53 + 1` is not.
pub const MAX_EXACT_DEGREE: usize = (1 << 53) - 1;

/// A structural degree too large to represent exactly as an f64 lane
/// value (see [`exact_degree`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegreeOverflow(pub usize);

impl std::fmt::Display for DegreeOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "degree {} exceeds 2^53 - 1 and is not exactly representable as f64",
            self.0
        )
    }
}

impl std::error::Error for DegreeOverflow {}

/// Convert a structural degree to its exact f64 representation, or fail
/// when the integer would round.
///
/// Flat algorithms that tag messages with degrees (Metropolis) store
/// them in f64 lanes; a degree at or above `2^53` would silently round
/// and corrupt the weight `1/(1 + max(d_i, d_j))`. [`FlatExecution::new`]
/// enforces this bound over the whole routing plan at construction, so
/// inside a running flat algorithm `d as f64` is already exact.
pub fn exact_degree(d: usize) -> Result<f64, DegreeOverflow> {
    if d <= MAX_EXACT_DEGREE {
        Ok(d as f64)
    } else {
        Err(DegreeOverflow(d))
    }
}

/// An isotropic f64 algorithm in struct-of-arrays form, runnable by
/// [`FlatExecution`].
///
/// Semantics mirror [`IsotropicAlgorithm`](crate::IsotropicAlgorithm):
/// one message per round computed from the state and the outdegree,
/// replicated to every output port; the transition folds the inbox —
/// delivered in the canonical `(source id, port rank)` order — into the
/// next state. To stay bitwise identical to a boxed twin, perform the
/// same floating-point operations in the same order (the inbox arrives
/// as `MSG_LANES`-sized chunks in exactly the boxed delivery order).
pub trait FlatAlgorithm: Sync {
    /// Number of f64 lanes per agent state (1..=[`MAX_LANES`]).
    const STATE_LANES: usize;
    /// Number of f64 lanes per message (1..=[`MAX_LANES`]).
    const MSG_LANES: usize;

    /// Compute the round's message from `state` (`STATE_LANES` lanes)
    /// into `msg` (`MSG_LANES` lanes), given the sender's outdegree.
    fn message(&self, state: &[f64], outdegree: usize, msg: &mut [f64]);

    /// Fold `inbox` (`indegree × MSG_LANES` lanes, canonical delivery
    /// order) into `next` (`STATE_LANES` lanes).
    fn transition(&self, state: &[f64], inbox: &[f64], next: &mut [f64]);

    /// [`FlatAlgorithm::transition`], additionally told the agent's own
    /// outdegree — the flat spelling of
    /// [`Algorithm::transition_with_outdegree`](crate::Algorithm::transition_with_outdegree).
    /// The executor always calls this variant with the routing plan's
    /// outdegree; the default ignores it, so plain flat algorithms are
    /// unaffected while quantized residual-carry algorithms override.
    fn transition_with_outdegree(
        &self,
        state: &[f64],
        outdegree: usize,
        inbox: &[f64],
        next: &mut [f64],
    ) {
        let _ = outdegree;
        self.transition(state, inbox, next);
    }

    /// Project an agent's output from its state lanes.
    fn output(&self, state: &[f64]) -> f64;
}

/// A flat execution: SoA state columns plus one CSR-routed message
/// arena, stepped in place with zero per-round allocation. See the
/// module docs for the layout and determinism contract.
pub struct FlatExecution<A: FlatAlgorithm> {
    algo: A,
    n: usize,
    round: u64,
    plan: RoutingPlan,
    cols: Vec<Vec<f64>>,
    next: Vec<Vec<f64>>,
    send_buf: Vec<f64>,
    arena: Vec<f64>,
}

impl<A: FlatAlgorithm> FlatExecution<A> {
    /// Build a flat execution of `algo` on the **static** graph `graph`
    /// from the given state columns (`STATE_LANES` columns of one entry
    /// per agent).
    ///
    /// # Panics
    ///
    /// Panics if the column count or a column length mismatches, a lane
    /// count is zero or exceeds [`MAX_LANES`], a vertex lacks a
    /// self-loop (§2.1), or a degree exceeds [`MAX_EXACT_DEGREE`] (the
    /// [`exact_degree`] precondition of degree-tagged algorithms).
    pub fn new(algo: A, graph: &Digraph, columns: Vec<Vec<f64>>) -> FlatExecution<A> {
        assert!(
            (1..=MAX_LANES).contains(&A::STATE_LANES),
            "STATE_LANES out of range"
        );
        assert!(
            (1..=MAX_LANES).contains(&A::MSG_LANES),
            "MSG_LANES out of range"
        );
        assert_eq!(columns.len(), A::STATE_LANES, "one column per state lane");
        let n = graph.n();
        for col in &columns {
            assert_eq!(col.len(), n, "column length != agent count");
        }
        for v in 0..n {
            assert!(graph.has_self_loop(v), "vertex {v} lacks a self-loop");
        }
        let plan = RoutingPlan::new(graph);
        for v in 0..n {
            if let Err(e) = exact_degree(plan.outdegree(v).max(plan.indegree(v))) {
                panic!("vertex {v}: {e}");
            }
        }
        let slots = plan.slots();
        FlatExecution {
            algo,
            n,
            round: 0,
            plan,
            next: columns.clone(),
            cols: columns,
            send_buf: vec![0.0; slots * A::MSG_LANES],
            arena: vec![0.0; slots * A::MSG_LANES],
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The routing plan the executor runs on.
    pub fn plan(&self) -> &RoutingPlan {
        &self.plan
    }

    /// State lane `lane`, indexed by agent.
    pub fn lane(&self, lane: usize) -> &[f64] {
        &self.cols[lane]
    }

    /// Agent `v`'s state lanes, gathered into a small buffer.
    pub fn state_of(&self, v: usize) -> Vec<f64> {
        self.cols.iter().map(|col| col[v]).collect()
    }

    /// Current outputs, indexed by agent.
    pub fn outputs(&self) -> Vec<f64> {
        let mut state = [0.0f64; MAX_LANES];
        (0..self.n)
            .map(|v| {
                for (l, col) in self.cols.iter().enumerate() {
                    state[l] = col[v];
                }
                self.algo.output(&state[..A::STATE_LANES])
            })
            .collect()
    }

    /// Resident buffer bytes — the flat engine's whole per-run
    /// footprint after warm-up: state columns and their double-buffer,
    /// the send buffer, the full message arena (its high-water mark:
    /// every inbox slot is re-gathered each round), and the routing
    /// plan's offset arrays. Measured over *capacities*, so it is what
    /// the allocator actually holds. `tests/flat_probe.rs` pins this
    /// against the 128–168 B/agent figures in EXPERIMENTS.md.
    pub fn resident_bytes(&self) -> usize {
        let f = std::mem::size_of::<f64>();
        f * (self.send_buf.capacity()
            + self.arena.capacity()
            + self.cols.iter().map(Vec::capacity).sum::<usize>()
            + self.next.iter().map(Vec::capacity).sum::<usize>())
            + self.plan.resident_bytes()
    }

    /// High-water mark of message-arena bytes touched by any executed
    /// round — zero before the first round, then the full arena (every
    /// inbox slot is re-gathered each round).
    pub fn arena_high_water(&self) -> usize {
        if self.round == 0 {
            0
        } else {
            std::mem::size_of::<f64>() * self.arena.len()
        }
    }

    /// Execute one round sequentially.
    pub fn step(&mut self) {
        self.step_threads(1);
    }

    /// Execute one round with both phases sharded across `threads`
    /// contiguous agent ranges. Bitwise identical to [`FlatExecution::step`]
    /// at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn step_threads(&mut self, threads: usize) {
        self.step_probed(threads, &mut NullProbe);
    }

    /// Execute one round under a [`FlatProbe`]: per-shard counters are
    /// merged and delivered in ascending shard order after the joins,
    /// state lanes are sampled at a thread-independent stride, and the
    /// wall-clock phase breakdown arrives through the separate
    /// [`FlatProbe::on_phase_times`] hook. With [`NullProbe`] (whose
    /// `ENABLED` is `false`) every probe branch const-folds away and
    /// this *is* [`FlatExecution::step_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn step_probed<P: FlatProbe>(&mut self, threads: usize, probe: &mut P) {
        assert!(threads > 0, "at least one worker thread");
        let round = self.round + 1;
        if P::ENABLED {
            probe.on_round_start(round, self.n);
        }
        let mut times = PhaseTimes::default();
        let mut mark = if P::ENABLED {
            Some(Instant::now())
        } else {
            None
        };

        let ranges = shard_ranges(self.n, threads);
        let ml = A::MSG_LANES;
        let algo = &self.algo;
        let plan = &self.plan;
        let cols = &self.cols;
        lap(&mut mark, &mut times.route_us);

        // Phase 1: sends — each shard owns the send-buffer span of its
        // contiguous source range. Join order is shard order, so the
        // counters come back canonically regardless of scheduling.
        let send_counters: Vec<ShardCounters> = if ranges.len() == 1 {
            vec![send_range::<A, P>(
                algo,
                plan,
                cols,
                &mut self.send_buf,
                &ranges[0],
            )]
        } else {
            let parts = split_spans(&mut self.send_buf, &ranges, |v| plan.send_start(v) * ml);
            let mut counters = Vec::new();
            crossbeam::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .zip(parts)
                    .map(|(r, part)| {
                        scope.spawn(move |_| send_range::<A, P>(algo, plan, cols, part, r))
                    })
                    .collect();
                counters = handles
                    .into_iter()
                    .map(|h| h.join().expect("flat send worker panicked"))
                    .collect();
            })
            .expect("crossbeam scope");
            counters
        };
        lap(&mut mark, &mut times.send_us);

        // Phase 2: gather + transition fused — each shard owns the
        // arena span and next-column spans of its contiguous
        // destination range, and reads the whole send buffer.
        let gather_counters: Vec<ShardCounters> = {
            let send_buf = &self.send_buf;
            if ranges.len() == 1 {
                let mut next: Vec<&mut [f64]> =
                    self.next.iter_mut().map(Vec::as_mut_slice).collect();
                vec![gather_transition_range::<A, P>(
                    algo,
                    plan,
                    cols,
                    send_buf,
                    &mut self.arena,
                    &mut next,
                    &ranges[0],
                )]
            } else {
                let arena_parts =
                    split_spans(&mut self.arena, &ranges, |v| plan.inbox_start(v) * ml);
                // Per-shard bundles of (arena span, one span per next column).
                let mut bundles: Vec<(&mut [f64], Vec<&mut [f64]>)> = arena_parts
                    .into_iter()
                    .map(|a| (a, Vec::with_capacity(A::STATE_LANES)))
                    .collect();
                for col in self.next.iter_mut() {
                    for (part, bundle) in split_spans(col, &ranges, |v| v)
                        .into_iter()
                        .zip(&mut bundles)
                    {
                        bundle.1.push(part);
                    }
                }
                let mut counters = Vec::new();
                crossbeam::scope(|scope| {
                    let handles: Vec<_> = ranges
                        .iter()
                        .zip(bundles)
                        .map(|(r, (arena, mut next))| {
                            scope.spawn(move |_| {
                                gather_transition_range::<A, P>(
                                    algo, plan, cols, send_buf, arena, &mut next, r,
                                )
                            })
                        })
                        .collect();
                    counters = handles
                        .into_iter()
                        .map(|h| h.join().expect("flat transition worker panicked"))
                        .collect();
                })
                .expect("crossbeam scope");
                counters
            }
        };
        lap(&mut mark, &mut times.transition_us);

        std::mem::swap(&mut self.cols, &mut self.next);
        self.round += 1;

        if P::ENABLED {
            for (i, c) in send_counters.iter().enumerate() {
                probe.on_send_shard(i, c);
            }
            for (i, c) in gather_counters.iter().enumerate() {
                probe.on_gather_shard(i, c);
            }
            let mut send_total = ShardCounters::default();
            for c in &send_counters {
                send_total.merge(c);
            }
            let mut gather_total = ShardCounters::default();
            for c in &gather_counters {
                gather_total.merge(c);
            }
            // Strided lane sampling over the post-round state; the
            // stride depends on n only, never on the thread count.
            let stride = (self.n / LANE_SAMPLE_TARGET).max(1);
            let mut samples = Vec::with_capacity(self.n.div_ceil(stride));
            for (lane, col) in self.cols.iter().enumerate() {
                samples.clear();
                samples.extend(col.iter().step_by(stride).copied());
                probe.on_lane_sample(round, lane, &samples);
            }
            probe.on_round_end(round, &send_total, &gather_total);
            lap(&mut mark, &mut times.merge_us);
            probe.on_phase_times(round, &times);
        }
    }

    /// Execute `rounds` rounds at the given thread count.
    pub fn run(&mut self, rounds: u64, threads: usize) {
        for _ in 0..rounds {
            self.step_threads(threads);
        }
    }

    /// Execute `rounds` rounds under a [`FlatProbe`].
    pub fn run_probed<P: FlatProbe>(&mut self, rounds: u64, threads: usize, probe: &mut P) {
        for _ in 0..rounds {
            self.step_probed(threads, probe);
        }
    }

    /// Drive the execution under a [`FlatRunConfig`] — the flat twin of
    /// [`Execution::drive`](crate::Execution::drive): a round budget
    /// plus optional residual measurement, ε-convergence judged post
    /// hoc over the whole trace, and confirmed early stopping. Closes
    /// the `RunConfig::measure` parity gap, so flat sweeps report
    /// `converged_at` instead of only fixed budgets.
    pub fn drive(&mut self, cfg: FlatRunConfig<'_>) -> CellReport {
        self.drive_probed(cfg, &mut NullProbe)
    }

    /// [`FlatExecution::drive`] with a [`FlatProbe`] attached to every
    /// executed round.
    pub fn drive_probed<P: FlatProbe>(
        &mut self,
        cfg: FlatRunConfig<'_>,
        probe: &mut P,
    ) -> CellReport {
        let FlatRunConfig {
            rounds,
            threads,
            dist,
            eps,
            confirm,
            bandwidth,
        } = cfg;
        let start = self.round;
        let mut distances = Vec::new();
        let mut entered: Option<u64> = None;
        let mut executed: u64 = 0;
        while executed < rounds {
            if let Some((cap, ledger)) = bandwidth {
                // One send slot per edge: the same per-round charge as
                // the boxed drive's `edge_count()`.
                ledger.charge_round(self.plan.slots() as u64, cap.bits_per_edge());
            }
            self.step_probed(threads, probe);
            executed += 1;
            if let Some(dist) = &dist {
                let d = dist(&self.outputs());
                distances.push(d);
                if !d.is_finite() {
                    break;
                }
                if let Some(confirm) = confirm {
                    if d <= eps {
                        let at = *entered.get_or_insert(self.round);
                        if self.round - at >= confirm {
                            break;
                        }
                    } else {
                        entered = None;
                    }
                }
            }
        }
        let measured = dist.is_some();
        let mut report =
            CellReport::from_trace(start, distances, eps, 0, FaultEvents::default(), None);
        if !measured {
            report.rounds_run = executed;
        }
        report
    }
}

/// Advance the phase timer: charge the elapsed time since the last lap
/// to `slot` and restart. A `None` mark (probe disabled) is free.
fn lap(mark: &mut Option<Instant>, slot: &mut u64) {
    if let Some(t) = mark {
        *slot = t.elapsed().as_micros() as u64;
        *mark = Some(Instant::now());
    }
}

/// Split `buf` into one mutable span per range, where range `r` owns
/// `buf[offset(r.start)..offset(r.end)]`. `offset` must be monotone
/// with `offset(0) == 0` and `offset(n)` == `buf.len()` over the
/// ranges' union — which shard layouts from [`shard_ranges`] guarantee.
fn split_spans<'b>(
    buf: &'b mut [f64],
    ranges: &[Range<usize>],
    offset: impl Fn(usize) -> usize,
) -> Vec<&'b mut [f64]> {
    let mut parts = Vec::with_capacity(ranges.len());
    let mut rest = buf;
    let mut consumed = 0;
    for r in ranges {
        let end = offset(r.end);
        let (head, tail) = rest.split_at_mut(end - consumed);
        parts.push(head);
        rest = tail;
        consumed = end;
    }
    parts
}

/// Phase 1 for one contiguous source range: compute each agent's
/// isotropic message once and replicate it into the agent's send slots
/// (one per out-edge, rank order). `out` is the range's span of the
/// send buffer. Returns the shard's counters — all accumulation is
/// gated on `P::ENABLED`, so the [`NullProbe`] instantiation pays
/// nothing.
fn send_range<A: FlatAlgorithm, P: FlatProbe>(
    algo: &A,
    plan: &RoutingPlan,
    cols: &[Vec<f64>],
    out: &mut [f64],
    range: &Range<usize>,
) -> ShardCounters {
    let ml = A::MSG_LANES;
    let base = plan.send_start(range.start);
    let mut state = [0.0f64; MAX_LANES];
    let mut msg = [0.0f64; MAX_LANES];
    let mut counters = ShardCounters::default();
    if P::ENABLED {
        counters.agents = range.len() as u64;
        counters.messages_routed = plan.send_slots_in(range.clone()) as u64;
        counters.lane_writes = counters.messages_routed * ml as u64;
    }
    for v in range.clone() {
        let slots = plan.send_range(v);
        let outdeg = slots.len();
        if outdeg == 0 {
            continue;
        }
        for (l, col) in cols.iter().enumerate() {
            state[l] = col[v];
        }
        algo.message(&state[..A::STATE_LANES], outdeg, &mut msg[..ml]);
        let first = (slots.start - base) * ml;
        for chunk in out[first..first + outdeg * ml].chunks_exact_mut(ml) {
            chunk.copy_from_slice(&msg[..ml]);
        }
    }
    counters
}

/// Phase 2 for one contiguous destination range: gather each agent's
/// inbox from the send buffer into the arena span (already in canonical
/// delivery order, by construction of the plan) and fold it into the
/// next-state columns. Returns the shard's counters (see
/// [`send_range`]).
fn gather_transition_range<A: FlatAlgorithm, P: FlatProbe>(
    algo: &A,
    plan: &RoutingPlan,
    cols: &[Vec<f64>],
    send_buf: &[f64],
    arena: &mut [f64],
    next: &mut [&mut [f64]],
    range: &Range<usize>,
) -> ShardCounters {
    let ml = A::MSG_LANES;
    let mut counters = ShardCounters::default();
    if P::ENABLED {
        let slots = plan.inbox_slots_in(range.clone()) as u64;
        counters.agents = range.len() as u64;
        counters.messages_routed = slots;
        // Gathered lanes plus the per-agent next-state writes.
        counters.lane_writes = slots * ml as u64 + (range.len() * A::STATE_LANES) as u64;
        counters.arena_bytes = slots * (ml * std::mem::size_of::<f64>()) as u64;
    }
    let base = plan.inbox_start(range.start);
    let gather = plan.gather();
    let mut state = [0.0f64; MAX_LANES];
    let mut out = [0.0f64; MAX_LANES];
    for v in range.clone() {
        let slots = plan.inbox_range(v);
        let local = (slots.start - base) * ml..(slots.end - base) * ml;
        {
            let inbox = &mut arena[local.clone()];
            for (&slot, chunk) in gather[slots.clone()].iter().zip(inbox.chunks_exact_mut(ml)) {
                chunk.copy_from_slice(&send_buf[slot * ml..(slot + 1) * ml]);
            }
        }
        for (l, col) in cols.iter().enumerate() {
            state[l] = col[v];
        }
        algo.transition_with_outdegree(
            &state[..A::STATE_LANES],
            plan.outdegree(v),
            &arena[local],
            &mut out[..A::STATE_LANES],
        );
        for (l, col) in next.iter_mut().enumerate() {
            col[v - range.start] = out[l];
        }
    }
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::generators;

    /// Order-sensitive f64 fold: sums the first message lane in
    /// delivery order — any inbox reordering changes the rounding.
    struct OrderSum;
    impl FlatAlgorithm for OrderSum {
        const STATE_LANES: usize = 1;
        const MSG_LANES: usize = 1;
        fn message(&self, state: &[f64], _outdegree: usize, msg: &mut [f64]) {
            msg[0] = state[0];
        }
        fn transition(&self, _state: &[f64], inbox: &[f64], next: &mut [f64]) {
            next[0] = inbox.iter().fold(0.0, |acc, m| acc + m);
        }
        fn output(&self, state: &[f64]) -> f64 {
            state[0]
        }
    }

    fn in_star(n: usize) -> Digraph {
        // Sources inserted in descending order: the canonical delivery
        // order is the reverse of the in-edge lists.
        let mut g = Digraph::new(n);
        for src in (1..n).rev() {
            g.add_edge(src, 0);
        }
        g.with_self_loops()
    }

    #[test]
    fn parallel_is_bitwise_identical_to_sequential() {
        let g = in_star(6);
        let inits = vec![1e16, 3.0, 1e-7, 2.0, 1e7, 1.0];
        let mut seq = FlatExecution::new(OrderSum, &g, vec![inits.clone()]);
        let mut two = FlatExecution::new(OrderSum, &g, vec![inits.clone()]);
        let mut four = FlatExecution::new(OrderSum, &g, vec![inits]);
        for _ in 0..4 {
            seq.step();
            two.step_threads(2);
            four.step_threads(4);
            for v in 0..6 {
                assert_eq!(seq.lane(0)[v].to_bits(), two.lane(0)[v].to_bits());
                assert_eq!(seq.lane(0)[v].to_bits(), four.lane(0)[v].to_bits());
            }
        }
        assert_eq!(seq.round(), 4);
    }

    #[test]
    fn matches_boxed_executor_on_order_sensitive_sums() {
        use crate::algorithm::{Broadcast, BroadcastAlgorithm};
        use crate::Execution;

        #[derive(Clone)]
        struct BoxedOrderSum;
        impl BroadcastAlgorithm for BoxedOrderSum {
            type State = f64;
            type Msg = f64;
            type Output = f64;
            fn message(&self, s: &f64) -> f64 {
                *s
            }
            fn transition(&self, _: &f64, inbox: &[f64]) -> f64 {
                inbox.iter().fold(0.0, |acc, m| acc + m)
            }
            fn output(&self, s: &f64) -> f64 {
                *s
            }
        }

        let g = in_star(6);
        let inits = vec![1e16, 3.0, 1e-7, 2.0, 1e7, 1.0];
        let mut boxed = Execution::new(Broadcast(BoxedOrderSum), inits.clone());
        let mut flat = FlatExecution::new(OrderSum, &g, vec![inits]);
        for _ in 0..4 {
            boxed.step(&g);
            flat.step_threads(3);
            for (a, b) in boxed.states().iter().zip(flat.lane(0)) {
                assert_eq!(a.to_bits(), b.to_bits(), "flat diverged from boxed");
            }
        }
    }

    #[test]
    fn zero_allocation_after_warmup_costs_nothing_per_round() {
        // Behavioural proxy: the resident footprint is invariant across
        // rounds (the buffers are reused, never regrown).
        let g = generators::directed_ring(32).with_self_loops();
        let mut exec = FlatExecution::new(OrderSum, &g, vec![vec![1.0; 32]]);
        let before = exec.resident_bytes();
        exec.run(10, 2);
        assert_eq!(exec.resident_bytes(), before);
        assert_eq!(exec.round(), 10);
    }

    #[test]
    #[should_panic(expected = "lacks a self-loop")]
    fn missing_self_loop_rejected() {
        let g = generators::directed_ring(3);
        let _ = FlatExecution::new(OrderSum, &g, vec![vec![0.0; 3]]);
    }

    #[test]
    #[should_panic(expected = "column length")]
    fn column_arity_checked() {
        let g = generators::directed_ring(3).with_self_loops();
        let _ = FlatExecution::new(OrderSum, &g, vec![vec![0.0; 2]]);
    }

    #[test]
    fn exact_degree_boundary() {
        // Every degree up to 2^53 - 1 converts exactly...
        assert_eq!(exact_degree(0), Ok(0.0));
        assert_eq!(exact_degree(MAX_EXACT_DEGREE), Ok(9007199254740991.0));
        assert_eq!(
            exact_degree(MAX_EXACT_DEGREE).unwrap() as usize,
            MAX_EXACT_DEGREE
        );
        // ...and the first inexact integers are rejected rather than
        // silently rounded (2^53 itself converts exactly, but 2^53 + 1
        // would collapse onto it — the bound excludes the whole plateau).
        assert_eq!(
            exact_degree(MAX_EXACT_DEGREE + 1),
            Err(DegreeOverflow(1 << 53))
        );
        assert_eq!(
            exact_degree(MAX_EXACT_DEGREE + 2),
            Err(DegreeOverflow((1 << 53) + 1))
        );
        assert!(exact_degree(usize::MAX).is_err());
        let msg = DegreeOverflow(1 << 53).to_string();
        assert!(msg.contains("2^53"), "unhelpful error: {msg}");
    }
}
