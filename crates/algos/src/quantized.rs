//! Quantized averaging under a b-bit bandwidth cap.
//!
//! The paper's algorithms assume unbounded-size messages; this module
//! asks what survives a `b`-bit pipe (following Blanc–Di Luna–
//! Viglietta's one-bit anonymous dynamic networks and Hendrickx–
//! Olshevsky–Tsitsiklis's quantized function computation). The
//! discipline everywhere is **integer token arithmetic in f64 lanes**:
//!
//! - mass is held as whole tokens on the grid `ℚ_{2^b}` — an initial
//!   value `v` becomes `round(v · 2^b)` tokens;
//! - every token count stays a nonnegative integer far below `2^53`,
//!   so its f64 lane representation is *exact*, the flat and boxed
//!   twins agree bitwise, and token sums are order-independent — no
//!   floating-point rounding anywhere in the dynamics;
//! - every payload a [`QuantizedPushSum`] agent emits is a codeword of
//!   the [`MessageCodec`], i.e. fits `b` bits *structurally* — the
//!   executor meters the cap ([`RunConfig::bandwidth`]) but never
//!   truncates.
//!
//! Exact conservation comes from two different mechanisms:
//!
//! - [`QuantizedPushSum`] keeps a **residual carry**: an agent with `y`
//!   tokens and outdegree `d` ships `q = min(⌊y/d⌋, 2^b - 1)` tokens
//!   per port and keeps `r = y - d·q` at home, so
//!   `Σ_i y_i` is invariant round by round. Recomputing `q` requires
//!   the round's outdegree at transition time, which is why it
//!   overrides
//!   [`transition_with_outdegree`](IsotropicAlgorithm::transition_with_outdegree)
//!   (and why that hook exists).
//! - [`QuantizedMetropolis`] uses **antisymmetric integer transfers**:
//!   both endpoints of a bidirectional link compute the transfer
//!   `⌊(x̂_j - x̂_i) / (1 + max(d_i, d_j))⌋` (i64 division, truncating
//!   toward zero) from the *same* exchanged codewords, so
//!   `T_{ji} = -T_{ij}` exactly and the token sum is invariant on any
//!   symmetric graph — no outdegree hook needed.
//!
//! [`MessageCodec`]: kya_runtime::MessageCodec
//! [`RunConfig::bandwidth`]: kya_runtime::RunConfig::bandwidth

use crate::push_sum::PushSumState;
use kya_runtime::faults::FaultAwareIsotropic;
use kya_runtime::{FlatAlgorithm, IsotropicAlgorithm, MessageCodec};

/// Reinterpret a token lane as a count: the dynamics keep every lane a
/// nonnegative integer below 2^53, so the cast is exact.
fn tokens(lane: f64) -> u64 {
    debug_assert!(
        lane >= 0.0 && lane.fract() == 0.0 && lane <= (1u64 << 53) as f64,
        "token lane {lane} is not a small nonnegative integer"
    );
    lane as u64
}

/// Push-Sum over `b`-bit token shares with residual carry.
///
/// State is a [`PushSumState`] whose `y`/`z` hold *token counts*:
/// `initial` turns a value `v` into `round(v · 2^b)` numerator tokens
/// and `2^b` denominator tokens; the output is the token ratio `y/z`.
/// Each round an agent with outdegree `d` broadcasts
/// `(min(⌊y/d⌋, 2^b - 1), min(⌊z/d⌋, 2^b - 1))` — codewords by
/// construction — and keeps the residuals, so the global token sums are
/// exactly invariant (and, divided by `2^b`, mass is exactly conserved
/// in ℚ).
///
/// `z` starts at `2^b ≥ 2` and can never reach 0: an agent either ships
/// nothing (`⌊z/d⌋ = 0`, keeps everything) or keeps the residual and
/// receives its own self-loop share back, so the output never divides
/// by zero.
///
/// Under message faults it is self-healing ([`FaultAwareIsotropic`]):
/// bounced shares are integer token parcels and reabsorbing them
/// restores the sum exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantizedPushSum {
    codec: MessageCodec,
}

impl QuantizedPushSum {
    /// Quantized Push-Sum on the grid `ℚ_{2^bits}`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside the [`MessageCodec`] range.
    pub fn new(bits: u32) -> QuantizedPushSum {
        QuantizedPushSum {
            codec: MessageCodec::new(bits),
        }
    }

    /// The codec enforcing this instance's cap.
    pub fn codec(&self) -> MessageCodec {
        self.codec
    }

    /// Tokens per unit of mass, `2^bits` (exact as f64).
    pub fn scale(&self) -> f64 {
        self.codec.levels() as f64
    }

    /// Token states for the given nonnegative finite initial values:
    /// `y = round(v · 2^bits)`, `z = 2^bits`.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite value: token counts are
    /// unsigned.
    pub fn initial(&self, values: &[f64]) -> Vec<PushSumState> {
        values
            .iter()
            .map(|&v| {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "quantized push-sum values must be finite and >= 0, got {v}"
                );
                PushSumState {
                    y: (v * self.scale()).round(),
                    z: self.scale(),
                }
            })
            .collect()
    }

    /// The per-port token shares of a state at outdegree `d` — the
    /// single deterministic function both `message` and the residual
    /// recomputation in `transition_with_outdegree` use.
    fn shares(&self, state: &PushSumState, d: usize) -> (u64, u64) {
        let d = d.max(1) as u64;
        (
            self.codec.encode(tokens(state.y) / d),
            self.codec.encode(tokens(state.z) / d),
        )
    }

    /// Total `(y, z)` token counts over all agents — the exactly
    /// conserved quantity (integer arithmetic, no rounding).
    pub fn total_tokens(states: &[PushSumState]) -> (u64, u64) {
        states
            .iter()
            .fold((0, 0), |(y, z), s| (y + tokens(s.y), z + tokens(s.z)))
    }
}

impl IsotropicAlgorithm for QuantizedPushSum {
    type State = PushSumState;
    type Msg = (f64, f64);
    type Output = f64;

    fn message(&self, state: &PushSumState, outdegree: usize) -> (f64, f64) {
        let (qy, qz) = self.shares(state, outdegree);
        (qy as f64, qz as f64)
    }

    fn transition(&self, _state: &PushSumState, _inbox: &[(f64, f64)]) -> PushSumState {
        unreachable!(
            "QuantizedPushSum's residual carry needs the round's outdegree; \
             executors must call transition_with_outdegree"
        )
    }

    fn transition_with_outdegree(
        &self,
        state: &PushSumState,
        outdegree: usize,
        inbox: &[(f64, f64)],
    ) -> PushSumState {
        let (qy, qz) = self.shares(state, outdegree);
        let d = outdegree.max(1) as u64;
        // Residual carry: what the d port shares did not take stays home.
        let mut y = tokens(state.y) - d * qy;
        let mut z = tokens(state.z) - d * qz;
        for m in inbox {
            y += tokens(m.0);
            z += tokens(m.1);
        }
        PushSumState {
            y: y as f64,
            z: z as f64,
        }
    }

    fn output(&self, state: &PushSumState) -> f64 {
        state.y / state.z
    }
}

impl FaultAwareIsotropic for QuantizedPushSum {
    fn reabsorb(&self, state: &PushSumState, lost: &[(f64, f64)]) -> PushSumState {
        let mut y = tokens(state.y);
        let mut z = tokens(state.z);
        for m in lost {
            y += tokens(m.0);
            z += tokens(m.1);
        }
        PushSumState {
            y: y as f64,
            z: z as f64,
        }
    }
}

/// The flat twin of the boxed impl: state lanes `[y, z]`, message lanes
/// `[qy, qz]`, identical integer arithmetic — bitwise equal at any
/// thread count.
impl FlatAlgorithm for QuantizedPushSum {
    const STATE_LANES: usize = 2;
    const MSG_LANES: usize = 2;

    fn message(&self, state: &[f64], outdegree: usize, msg: &mut [f64]) {
        let s = PushSumState {
            y: state[0],
            z: state[1],
        };
        let (qy, qz) = self.shares(&s, outdegree);
        msg[0] = qy as f64;
        msg[1] = qz as f64;
    }

    fn transition(&self, _state: &[f64], _inbox: &[f64], _next: &mut [f64]) {
        unreachable!(
            "QuantizedPushSum's residual carry needs the round's outdegree; \
             executors must call transition_with_outdegree"
        )
    }

    fn transition_with_outdegree(
        &self,
        state: &[f64],
        outdegree: usize,
        inbox: &[f64],
        next: &mut [f64],
    ) {
        let s = PushSumState {
            y: state[0],
            z: state[1],
        };
        let (qy, qz) = self.shares(&s, outdegree);
        let d = outdegree.max(1) as u64;
        let mut y = tokens(state[0]) - d * qy;
        let mut z = tokens(state[1]) - d * qz;
        for m in inbox.chunks_exact(2) {
            y += tokens(m[0]);
            z += tokens(m[1]);
        }
        next[0] = y as f64;
        next[1] = z as f64;
    }

    fn output(&self, state: &[f64]) -> f64 {
        state[0] / state[1]
    }
}

/// Metropolis averaging over `b`-bit quantized token values on
/// symmetric networks.
///
/// State is a single token-count lane (`x = round(v · 2^bits)` tokens;
/// output `x / 2^bits`). The message carries the codeword
/// `w = min(x >> shift, 2^b - 1)` — the top `b`-bit window of the token
/// count, where `shift` is fixed at construction from the value bound —
/// plus the sender's neighbor count on a structural metadata lane (the
/// cap governs payload lanes; see DESIGN.md decision 12). Both
/// endpoints reconstruct `x̂ = w << shift` and apply the integer
/// transfer `(x̂_j - x̂_i) / (1 + max(d_i, d_j))` with i64 truncating
/// division; truncation is an odd function, so the two transfers cancel
/// exactly and `Σ x` is invariant on any bidirectional graph. Token
/// counts stay nonnegative: total outflow of agent `i` is less than
/// `x̂_i ≤ x_i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuantizedMetropolis {
    codec: MessageCodec,
    shift: u32,
}

impl QuantizedMetropolis {
    /// Quantized Metropolis with `bits`-bit value codewords, for values
    /// in `[0, value_bound]`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside the [`MessageCodec`] range or
    /// `value_bound` is not a positive finite number.
    pub fn new(bits: u32, value_bound: f64) -> QuantizedMetropolis {
        assert!(
            value_bound.is_finite() && value_bound > 0.0,
            "value bound must be positive and finite, got {value_bound}"
        );
        let codec = MessageCodec::new(bits);
        let max_tokens = (value_bound * codec.levels() as f64).round() as u64;
        let mut shift = 0;
        while (max_tokens >> shift) > codec.max_codeword() {
            shift += 1;
        }
        QuantizedMetropolis { codec, shift }
    }

    /// The codec enforcing this instance's cap.
    pub fn codec(&self) -> MessageCodec {
        self.codec
    }

    /// Low token bits dropped before encoding (window granularity).
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// The value-unit grid step the cap can express, `2^shift / 2^bits`
    /// — transfers move in multiples of this, so it bounds the attainable
    /// consensus accuracy.
    pub fn resolution(&self) -> f64 {
        (1u64 << self.shift) as f64 / self.scale()
    }

    /// Tokens per unit of mass, `2^bits` (exact as f64).
    pub fn scale(&self) -> f64 {
        self.codec.levels() as f64
    }

    /// Token states for the given values in `[0, value_bound]`.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite value.
    pub fn initial(&self, values: &[f64]) -> Vec<f64> {
        values
            .iter()
            .map(|&v| {
                assert!(
                    v.is_finite() && v >= 0.0,
                    "quantized metropolis values must be finite and >= 0, got {v}"
                );
                (v * self.scale()).round()
            })
            .collect()
    }

    /// The single flat state column for [`FlatExecution`].
    ///
    /// [`FlatExecution`]: kya_runtime::FlatExecution
    pub fn columns(states: &[f64]) -> Vec<Vec<f64>> {
        vec![states.to_vec()]
    }

    /// Total token count over all agents — the exactly conserved
    /// quantity on symmetric graphs.
    pub fn total_tokens(states: &[f64]) -> u64 {
        states.iter().map(|&x| tokens(x)).sum()
    }

    /// The reconstructed `b`-bit window value `x̂` both endpoints agree
    /// on.
    fn quantize(&self, x: u64) -> i64 {
        self.codec
            .decode_shifted(self.codec.encode_shifted(x, self.shift), self.shift) as i64
    }

    /// Fold one round: `x += Σ_j (x̂_j - x̂_i) / (1 + max(d_i, d_j))` in
    /// truncating integer arithmetic (the self term vanishes).
    fn fold(&self, x: u64, own_degree: u64, pairs: impl Iterator<Item = (u64, u64)>) -> f64 {
        let own_hat = self.quantize(x);
        let mut acc = x as i64;
        for (w, degree) in pairs {
            let their_hat = (self.codec.decode(w) << self.shift) as i64;
            let dmax = degree.max(own_degree) as i64;
            acc += (their_hat - own_hat) / (1 + dmax);
        }
        debug_assert!(acc >= 0, "token count went negative: {acc}");
        acc as f64
    }
}

impl IsotropicAlgorithm for QuantizedMetropolis {
    type State = f64;
    type Msg = (f64, f64);
    type Output = f64;

    fn message(&self, state: &f64, outdegree: usize) -> (f64, f64) {
        (
            self.codec.encode_shifted(tokens(*state), self.shift) as f64,
            outdegree.saturating_sub(1) as f64,
        )
    }

    fn transition(&self, state: &f64, inbox: &[(f64, f64)]) -> f64 {
        // Own degree = inbox size minus the self-loop, as in Metropolis.
        let own = inbox.len().saturating_sub(1) as u64;
        self.fold(
            tokens(*state),
            own,
            inbox.iter().map(|m| (tokens(m.0), tokens(m.1))),
        )
    }

    fn output(&self, state: &f64) -> f64 {
        *state / self.scale()
    }
}

/// The flat twin: one state lane `[x]`, message lanes `[w, degree]`,
/// identical integer arithmetic — bitwise equal at any thread count.
impl FlatAlgorithm for QuantizedMetropolis {
    const STATE_LANES: usize = 1;
    const MSG_LANES: usize = 2;

    fn message(&self, state: &[f64], outdegree: usize, msg: &mut [f64]) {
        msg[0] = self.codec.encode_shifted(tokens(state[0]), self.shift) as f64;
        msg[1] = outdegree.saturating_sub(1) as f64;
    }

    fn transition(&self, state: &[f64], inbox: &[f64], next: &mut [f64]) {
        let own = (inbox.len() / 2).saturating_sub(1) as u64;
        next[0] = self.fold(
            tokens(state[0]),
            own,
            inbox.chunks_exact(2).map(|m| (tokens(m[0]), tokens(m[1]))),
        );
    }

    fn output(&self, state: &[f64]) -> f64 {
        state[0] / self.scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::{generators, Digraph, StaticGraph};
    use kya_runtime::faults::{FaultPlan, FaultyExecution};
    use kya_runtime::{BandwidthCap, ByteLedger, Execution, Isotropic, RunConfig};

    fn biring(n: usize) -> Digraph {
        let mut g = Digraph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n);
            g.add_edge((v + 1) % n, v);
        }
        g.with_self_loops()
    }

    #[test]
    fn pushsum_messages_fit_the_cap() {
        for bits in [1, 2, 4, 8] {
            let algo = QuantizedPushSum::new(bits);
            let max = algo.codec().max_codeword() as f64;
            for s in algo.initial(&[0.0, 0.4, 1.0, 7.5]) {
                for d in 1..6 {
                    let (qy, qz) = IsotropicAlgorithm::message(&algo, &s, d);
                    assert!(qy <= max && qz <= max, "b={bits} d={d}: ({qy}, {qz})");
                }
            }
        }
    }

    #[test]
    fn pushsum_conserves_tokens_exactly() {
        let algo = QuantizedPushSum::new(4);
        let g = generators::random_strongly_connected(7, 5, 11).with_self_loops();
        let states = algo.initial(&[0.1, 0.9, 0.5, 0.3, 0.7, 0.2, 0.8]);
        let before = QuantizedPushSum::total_tokens(&states);
        let mut exec = Execution::new(Isotropic(algo), states);
        exec.drive(&StaticGraph::new(g), RunConfig::rounds(50));
        assert_eq!(QuantizedPushSum::total_tokens(exec.states()), before);
    }

    #[test]
    fn pushsum_converges_at_eight_bits() {
        let algo = QuantizedPushSum::new(8);
        let values = [0.1, 0.9, 0.5, 0.3];
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let mut exec = Execution::new(Isotropic(algo), algo.initial(&values));
        exec.drive(&StaticGraph::new(biring(4)), RunConfig::rounds(200));
        for o in exec.outputs() {
            assert!(
                (o - avg).abs() < 0.02,
                "output {o} vs average {avg} at 8 bits"
            );
        }
    }

    #[test]
    fn pushsum_z_stays_positive() {
        let algo = QuantizedPushSum::new(1);
        let mut exec = Execution::new(Isotropic(algo), algo.initial(&[0.0, 1.0, 0.5]));
        let g = generators::random_strongly_connected(3, 3, 5).with_self_loops();
        exec.drive(&StaticGraph::new(g), RunConfig::rounds(80));
        for s in exec.states() {
            assert!(s.z >= 1.0, "z lane drained to {}", s.z);
        }
    }

    #[test]
    fn pushsum_reabsorbs_bounced_tokens_exactly() {
        let algo = QuantizedPushSum::new(4);
        let states = algo.initial(&[0.2, 0.8, 0.5, 0.4, 0.6]);
        let before = QuantizedPushSum::total_tokens(&states);
        let g = generators::random_strongly_connected(5, 6, 3).with_self_loops();
        let plan = FaultPlan::new(0xfeed).drop_links(0.3).until(60);
        let mut exec = FaultyExecution::new(Isotropic(algo), states, plan);
        let report = exec.drive(&StaticGraph::new(g), RunConfig::rounds(60));
        assert!(report.events.dropped > 0, "plan injected no drops");
        assert_eq!(QuantizedPushSum::total_tokens(exec.states()), before);
    }

    #[test]
    fn pushsum_conserves_tokens_under_churn_and_faults() {
        use kya_runtime::churn::{ChurnMasked, ChurnPlan};

        let algo = QuantizedPushSum::new(4);
        let states = algo.initial(&[0.2, 0.8, 0.5, 0.4, 0.6, 0.9]);
        let before = QuantizedPushSum::total_tokens(&states);
        // Agent 2 leaves and rejoins, agent 4 departs for good; the
        // membership mask removes a parked agent's links from the round
        // graph, so no share is ever addressed to an absent agent, and
        // the identity reinjection keeps the parked tokens — total mass
        // must not move by a single token, even with 30% link drops
        // bouncing shares back through reabsorb.
        let membership = ChurnPlan::new(7)
            .leave(2, 10..25)
            .depart(4, 30)
            .membership(6);
        let net = ChurnMasked::new(StaticGraph::new(biring(6)), membership.clone());
        let plan = FaultPlan::new(0xbeef).drop_links(0.3).until(40);
        let keep = |_: usize, parked: &PushSumState| *parked;
        let mut exec = FaultyExecution::new(Isotropic(algo), states, plan);
        let report = exec.drive(&net, RunConfig::rounds(50).membership(&membership, &keep));
        assert!(report.events.dropped > 0, "plan injected no drops");
        assert_eq!(QuantizedPushSum::total_tokens(exec.states()), before);
    }

    #[test]
    fn metropolis_conserves_tokens_exactly() {
        for bits in [1, 2, 4, 8] {
            let algo = QuantizedMetropolis::new(bits, 1.0);
            let states = algo.initial(&[0.1, 0.9, 0.5, 0.3, 0.7, 0.2]);
            let before = QuantizedMetropolis::total_tokens(&states);
            let mut exec = Execution::new(Isotropic(algo), states);
            exec.drive(&StaticGraph::new(biring(6)), RunConfig::rounds(60));
            assert_eq!(
                QuantizedMetropolis::total_tokens(exec.states()),
                before,
                "b={bits}"
            );
            for &x in exec.states() {
                assert!(x >= 0.0, "b={bits}: token count went negative: {x}");
            }
        }
    }

    #[test]
    fn metropolis_messages_fit_the_cap() {
        for bits in [1, 2, 4, 8] {
            let algo = QuantizedMetropolis::new(bits, 1.0);
            let max = algo.codec().max_codeword() as f64;
            for x in algo.initial(&[0.0, 0.3, 1.0]) {
                let (w, _) = IsotropicAlgorithm::message(&algo, &x, 4);
                assert!(w <= max, "b={bits}: codeword {w} exceeds {max}");
            }
        }
    }

    #[test]
    fn metropolis_converges_at_eight_bits() {
        let algo = QuantizedMetropolis::new(8, 1.0);
        let values = [0.1, 0.9, 0.5, 0.3, 0.7, 0.2];
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let mut exec = Execution::new(Isotropic(algo), algo.initial(&values));
        exec.drive(&StaticGraph::new(biring(6)), RunConfig::rounds(300));
        for o in exec.outputs() {
            // Quantized consensus stalls within one window step of the
            // average; 8 bits with shift 1 gives steps of 2/256.
            assert!((o - avg).abs() < 0.05, "output {o} vs average {avg}");
        }
    }

    #[test]
    fn ledger_meters_both_capped_and_unlimited_runs() {
        let g = biring(5);
        let edges = g.edge_count() as u64;
        let algo = QuantizedPushSum::new(2);
        let ledger = ByteLedger::new();
        let mut exec = Execution::new(Isotropic(algo), algo.initial(&[0.1, 0.2, 0.3, 0.4, 0.5]));
        exec.drive(
            &StaticGraph::new(g.clone()),
            RunConfig::rounds(10).bandwidth(BandwidthCap::Bits(2), &ledger),
        );
        assert_eq!(ledger.total_bits(), 10 * edges * 2);
        assert_eq!(ledger.rounds(), 10);

        let ledger = ByteLedger::new();
        let states = [1.0, 2.0, 3.0, 4.0, 5.0]
            .iter()
            .map(|&v| PushSumState::new(v, 1.0))
            .collect();
        let mut exec = Execution::new(Isotropic(crate::push_sum::PushSum), states);
        exec.drive(
            &StaticGraph::new(g),
            RunConfig::rounds(10).bandwidth(BandwidthCap::Unlimited, &ledger),
        );
        assert_eq!(ledger.total_bits(), 10 * edges * 64);
    }

    #[test]
    fn one_bit_ring_starves() {
        // The canonical survival failure: on a bidirectional ring every
        // agent has outdegree 3 (self-loop included) but only 2^1 = 2
        // denominator tokens, so ⌊2/3⌋ = 0 — no tokens ever move and
        // the outputs stay at their initial ratios.
        let algo = QuantizedPushSum::new(1);
        let values = [0.0, 1.0, 0.0, 1.0];
        let states = algo.initial(&values);
        let mut exec = Execution::new(Isotropic(algo), states.clone());
        exec.drive(&StaticGraph::new(biring(4)), RunConfig::rounds(40));
        assert_eq!(exec.states(), &states[..], "b=1 tokens must be frozen");
    }
}
