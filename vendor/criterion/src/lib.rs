//! Offline subset of the `criterion` bench API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the criterion entry points its `harness = false` benches use:
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! This is a timing smoke-harness, not a statistics engine: each
//! benchmark closure runs a handful of iterations (bounded by the
//! group's `sample_size`, default 10) and the mean wall-clock time per
//! iteration is printed. There is no warm-up, outlier analysis, or HTML
//! report. That keeps `cargo bench` functional — and fast on small
//! machines — while the real experiment numbers come from the dedicated
//! `src/bin` experiment binaries.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier. Best-effort without compiler support: reads
/// the value through a volatile-free identity that the optimizer keeps
/// because of the function boundary.
#[inline(never)]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark label: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function-plus-parameter id, rendered `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `sample_size` times and recording the
    /// total elapsed wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn report(group: &str, id: &str, iters: u32, elapsed: Duration) {
    let per_iter = elapsed.checked_div(iters.max(1)).unwrap_or_default();
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!("bench: {name:<48} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the offline harness has no
    /// target measurement time.
    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Iterations per benchmark (upstream: samples per benchmark).
    /// Ignored in `--test` mode, which pins every benchmark to one run.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(1) as u32;
        }
        self
    }

    /// Run a benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        report(&self.name, &id.label, b.iters, b.elapsed);
    }

    /// Run a named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report(&self.name, &id.label, b.iters, b.elapsed);
    }

    /// Finish the group (prints nothing extra).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    default_sample_size: u32,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
            // Mirror upstream criterion's `--test` flag: run every
            // benchmark exactly once as a smoke test (used by CI).
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.test_mode {
            1
        } else {
            self.default_sample_size
        };
        let test_mode = self.test_mode;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            test_mode,
            _parent: self,
        }
    }

    /// Run a top-level named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: if self.test_mode {
                1
            } else {
                self.default_sample_size
            },
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        report("", &id.label, b.iters, b.elapsed);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups. CLI arguments (e.g. cargo's
/// `--bench` filter) are accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_millis(1))
            .sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn test_mode_pins_one_iteration() {
        let mut c = Criterion {
            default_sample_size: 10,
            test_mode: true,
        };
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(50); // ignored in test mode
            group.bench_function("f", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 1);
        c.bench_function("top", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 2);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("n").to_string(), "n");
    }
}
