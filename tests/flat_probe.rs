//! Probed flat runs: the deterministic probe stream is **bitwise**
//! identical at every thread count, its counters restate the routing
//! plan's ground truth, measured flat drives report convergence exactly
//! like the boxed executor, and the resident-footprint numbers pin the
//! EXPERIMENTS.md figures. The `NullProbe` path is behaviorally
//! indistinguishable from the unprobed engine.

use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::{generators, Digraph, StaticGraph};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::{
    CountingProbe, Execution, FlatExecution, FlatRunConfig, Isotropic, NullProbe, RunConfig,
};
use proptest::prelude::*;

fn values_for(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64 * 37 + seed) % 101) as f64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The probe's NDJSON stream — merged per-round counters plus the
    /// strided sample digests — is byte-identical at 1, 2, and 4
    /// threads on random seeded digraphs: per-shard accounting merges
    /// in canonical shard order, so the shard layout never leaks.
    #[test]
    fn probe_stream_is_bitwise_identical_across_thread_counts(
        n in 3usize..24,
        extra in 0usize..30,
        seed in 0u64..1000,
        rounds in 1u64..12,
    ) {
        let g = generators::random_strongly_connected(n, extra, seed).with_self_loops();
        let states = PushSumState::columns(&PushSumState::averaging(&values_for(n, seed)));
        let mut baseline: Option<(String, CountingProbe)> = None;
        for threads in [1usize, 2, 4] {
            let mut exec = FlatExecution::new(PushSum, &g, states.clone());
            let mut probe = CountingProbe::new();
            exec.run_probed(rounds, threads, &mut probe);
            let stream = probe.to_ndjson();
            match &baseline {
                None => baseline = Some((stream, probe)),
                Some((base_stream, base_probe)) => {
                    prop_assert_eq!(
                        base_stream, &stream,
                        "probe stream diverged at {} threads", threads
                    );
                    prop_assert_eq!(base_probe.events(), probe.events());
                    prop_assert_eq!(base_probe.summary(), probe.summary());
                }
            }
        }
    }
}

/// Every per-round event restates the routing plan: a round routes
/// exactly `plan.slots()` messages and regathers the full arena.
#[test]
fn probe_counters_match_the_routing_plan() {
    let n = 17;
    let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
    let states = PushSumState::columns(&PushSumState::averaging(&values_for(n, 5)));
    let rounds = 9u64;
    let mut exec = FlatExecution::new(PushSum, &g, states);
    let slots = exec.plan().slots() as u64;
    let mut probe = CountingProbe::new();
    exec.run_probed(rounds, 3, &mut probe);
    assert_eq!(probe.events().len() as u64, rounds);
    for event in probe.events() {
        assert_eq!(event.messages_routed, slots);
        assert_eq!(event.arena_bytes, slots * 2 * 8, "MSG_LANES=2 f64 slots");
        // Lane writes: send fills `slots × MSG_LANES`, gather reads the
        // same plus one `STATE_LANES` write per agent.
        assert_eq!(event.lane_writes, 4 * slots + 2 * n as u64);
    }
    let summary = probe.summary();
    assert_eq!(summary.rounds, rounds);
    assert_eq!(summary.messages_routed, rounds * slots);
    assert_eq!(summary.arena_high_water_bytes, slots * 16);
    assert_eq!(
        summary.arena_high_water_bytes as usize,
        exec.arena_high_water()
    );
}

/// A measured flat drive reports `converged_at` (and the residual
/// trajectory behind it) exactly like the boxed executor's measured
/// drive — the `RunConfig::measure` parity gap the probe PR closes.
#[test]
fn measured_flat_drive_matches_boxed_convergence() {
    let n = 12;
    let g = generators::random_strongly_connected(n, 3 * n, 11).with_self_loops();
    let values = values_for(n, 11);
    let target = values.iter().sum::<f64>() / n as f64;
    let states = PushSumState::averaging(&values);
    let rounds = 400u64;
    let eps = 1e-9;

    let net = StaticGraph::new(g.clone());
    let mut boxed = Execution::new(Isotropic(PushSum), states.clone());
    let boxed_report = boxed.drive(
        &net,
        RunConfig::rounds(rounds)
            .measure(&EuclideanMetric, &target, eps)
            .confirm(2),
    );
    assert!(
        boxed_report.converged_at.is_some(),
        "budget large enough to converge"
    );

    for threads in [1usize, 2, 4] {
        let mut flat = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
        let report = flat.drive(
            FlatRunConfig::rounds(rounds)
                .threads(threads)
                .measure(target, eps)
                .confirm(2),
        );
        assert_eq!(
            report.converged_at, boxed_report.converged_at,
            "{threads} threads"
        );
        assert_eq!(report.rounds_run, boxed_report.rounds_run);
    }
}

/// The resident footprint is exactly the EXPERIMENTS.md figures: a
/// directed ring with self-loops (2 slots/agent) holds 128 B/agent, a
/// ring-plus-chord (3 slots/agent) holds 168 B/agent, plus the plans'
/// constant 16 B of prefix-array overhead.
#[test]
fn resident_bytes_pins_the_experiments_numbers() {
    let n = 1024;
    // Ring + self-loops: slots = 2n, so 96n f64 buffer bytes + 32n + 16
    // plan bytes.
    let ring = generators::directed_ring(n).with_self_loops();
    let states = PushSumState::columns(&PushSumState::averaging(&values_for(n, 1)));
    let mut exec = FlatExecution::new(PushSum, &ring, states.clone());
    assert_eq!(exec.resident_bytes(), 128 * n + 16);
    // The footprint is capacity-based, so running rounds (which touches
    // the whole arena) changes nothing.
    assert_eq!(exec.arena_high_water(), 0, "no round executed yet");
    exec.run(3, 2);
    assert_eq!(exec.resident_bytes(), 128 * n + 16);
    assert_eq!(
        exec.arena_high_water(),
        2 * n * 16,
        "2n slots × 2 lanes × 8 B"
    );

    // Ring + chord v→v+2 + self-loops: slots = 3n → 128n + 40n + 16.
    let mut chord = Digraph::new(n);
    for v in 0..n {
        chord.add_edge(v, (v + 1) % n);
        chord.add_edge(v, (v + 2) % n);
    }
    let chord = chord.with_self_loops();
    let exec = FlatExecution::new(PushSum, &chord, states);
    assert_eq!(exec.resident_bytes(), 168 * n + 16);
}

/// `NullProbe` is purely an erasure: stepping with it (or through the
/// probed entry points) produces bit-identical states to the bare
/// engine, and a `CountingProbe` observes without perturbing.
#[test]
fn probed_runs_compute_the_same_bits_as_unprobed_runs() {
    let n = 19;
    let g = generators::random_strongly_connected(n, n, 23).with_self_loops();
    let states = PushSumState::columns(&PushSumState::averaging(&values_for(n, 23)));
    let rounds = 7u64;

    let mut bare = FlatExecution::new(PushSum, &g, states.clone());
    bare.run(rounds, 2);

    let mut null = FlatExecution::new(PushSum, &g, states.clone());
    null.run_probed(rounds, 2, &mut NullProbe);

    let mut counted = FlatExecution::new(PushSum, &g, states);
    counted.run_probed(rounds, 2, &mut CountingProbe::new());

    for lane in 0..2 {
        for v in 0..n {
            let want = bare.lane(lane)[v].to_bits();
            assert_eq!(null.lane(lane)[v].to_bits(), want, "NullProbe perturbed");
            assert_eq!(
                counted.lane(lane)[v].to_bits(),
                want,
                "CountingProbe perturbed"
            );
        }
    }
}
