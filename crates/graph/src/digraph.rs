//! The directed multigraph type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vertex identifier: vertices of an `n`-vertex graph are `0..n`.
///
/// The paper writes `[n] = {1, ..., n}`; we use zero-based indices.
pub type Vertex = usize;

/// An edge identifier: index into [`Digraph::edges`].
pub type EdgeId = usize;

/// A directed edge of a multigraph, optionally labelled with an output
/// port.
///
/// Output ports implement the paper's *output port awareness* model
/// (§2.2): the outgoing edges of each vertex carry locally-unique labels
/// `0..outdegree`, and a sender may emit a different message on each port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source vertex.
    pub src: Vertex,
    /// Target vertex.
    pub dst: Vertex,
    /// Output-port label, if the graph is port-colored.
    pub port: Option<u32>,
}

/// A directed multigraph on vertices `0..n()`, stored as an explicit edge
/// list with per-vertex adjacency indices.
///
/// Parallel edges are permitted (minimum bases need them); self-loops are
/// ordinary edges. Use [`Digraph::with_self_loops`] to obtain the closure
/// the communication model requires (§2.1: "a self-loop at each vertex in
/// each graph").
///
/// ```
/// use kya_graph::Digraph;
/// let mut g = Digraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// g.add_edge(2, 0);
/// assert_eq!(g.outdegree(0), 1);
/// assert_eq!(g.in_neighbors(1).collect::<Vec<_>>(), vec![0]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Digraph {
    n: usize,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Digraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Digraph {
        Digraph {
            n,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Build a graph from an edge list over `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (Vertex, Vertex)>) -> Digraph {
        let mut g = Digraph::new(n);
        for (src, dst) in edges {
            g.add_edge(src, dst);
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (counting multiplicities).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges, in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Append an unlabelled edge; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, src: Vertex, dst: Vertex) -> EdgeId {
        self.add_edge_with_port(src, dst, None)
    }

    /// Append an edge with an optional port label; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge_with_port(&mut self, src: Vertex, dst: Vertex, port: Option<u32>) -> EdgeId {
        assert!(src < self.n && dst < self.n, "edge endpoint out of range");
        let id = self.edges.len();
        self.edges.push(Edge { src, dst, port });
        self.out_adj[src].push(id);
        self.in_adj[dst].push(id);
        id
    }

    /// Outdegree of `v` (counting multiplicities and self-loops).
    pub fn outdegree(&self, v: Vertex) -> usize {
        self.out_adj[v].len()
    }

    /// Indegree of `v` (counting multiplicities and self-loops).
    pub fn indegree(&self, v: Vertex) -> usize {
        self.in_adj[v].len()
    }

    /// Ids of the edges leaving `v`.
    pub fn out_edges(&self, v: Vertex) -> impl Iterator<Item = EdgeId> + '_ {
        self.out_adj[v].iter().copied()
    }

    /// Ids of the edges entering `v`.
    pub fn in_edges(&self, v: Vertex) -> impl Iterator<Item = EdgeId> + '_ {
        self.in_adj[v].iter().copied()
    }

    /// Targets of edges leaving `v` (with multiplicity).
    pub fn out_neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.out_adj[v].iter().map(move |&e| self.edges[e].dst)
    }

    /// Sources of edges entering `v` (with multiplicity).
    pub fn in_neighbors(&self, v: Vertex) -> impl Iterator<Item = Vertex> + '_ {
        self.in_adj[v].iter().map(move |&e| self.edges[e].src)
    }

    /// Number of parallel `src -> dst` edges.
    pub fn multiplicity(&self, src: Vertex, dst: Vertex) -> usize {
        self.out_adj[src]
            .iter()
            .filter(|&&e| self.edges[e].dst == dst)
            .count()
    }

    /// Whether `v` carries at least one self-loop.
    pub fn has_self_loop(&self, v: Vertex) -> bool {
        self.out_adj[v].iter().any(|&e| self.edges[e].dst == v)
    }

    /// A copy with a self-loop added at every vertex that lacks one, as
    /// the communication model of §2.1 requires.
    pub fn with_self_loops(&self) -> Digraph {
        let mut g = self.clone();
        for v in 0..g.n {
            if !g.has_self_loop(v) {
                g.add_edge(v, v);
            }
        }
        g
    }

    /// Whether the *edge relation* is symmetric: `(i, j)` present iff
    /// `(j, i)` present (set semantics, ignoring multiplicity), the
    /// condition defining the paper's class of symmetric networks.
    pub fn is_bidirectional(&self) -> bool {
        self.edges
            .iter()
            .all(|e| self.multiplicity(e.dst, e.src) > 0)
    }

    /// The transpose graph (all edges reversed; port labels dropped since
    /// they are meaningless after reversal).
    pub fn transpose(&self) -> Digraph {
        let mut g = Digraph::new(self.n);
        for e in &self.edges {
            g.add_edge(e.dst, e.src);
        }
        g
    }

    /// Assign canonical output ports: the outgoing edges of each vertex
    /// are labelled `0..outdegree` in insertion order.
    ///
    /// This models a static network whose output ports are fixed once and
    /// for all, the setting in which the paper's output port awareness is
    /// meaningful (§2.2).
    pub fn with_canonical_ports(&self) -> Digraph {
        let mut g = self.clone();
        for v in 0..g.n {
            for (k, &e) in g.out_adj[v].iter().enumerate() {
                g.edges[e].port = Some(k as u32);
            }
        }
        g
    }

    /// The `n x n` matrix of edge multiplicities: entry `(i, j)` counts
    /// `i -> j` edges.
    pub fn multiplicity_matrix(&self) -> Vec<Vec<usize>> {
        let mut m = vec![vec![0usize; self.n]; self.n];
        for e in &self.edges {
            m[e.src][e.dst] += 1;
        }
        m
    }

    /// Relabel vertices by `perm` (vertex `v` becomes `perm[v]`); used to
    /// realize graph isomorphisms.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn relabel(&self, perm: &[Vertex]) -> Digraph {
        assert_eq!(perm.len(), self.n, "permutation length mismatch");
        let mut seen = vec![false; self.n];
        for &p in perm {
            assert!(p < self.n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut g = Digraph::new(self.n);
        for e in &self.edges {
            g.add_edge_with_port(perm[e.src], perm[e.dst], e.port);
        }
        g
    }
}

impl fmt::Debug for Digraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digraph(n={}, edges=[", self.n)?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match e.port {
                Some(p) => write!(f, "{}-[{}]->{}", e.src, p, e.dst)?,
                None => write!(f, "{}->{}", e.src, e.dst)?,
            }
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_adjacency() {
        let g = Digraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 1)]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.outdegree(0), 2);
        assert_eq!(g.indegree(1), 2);
        assert_eq!(g.multiplicity(0, 1), 2);
        assert_eq!(g.multiplicity(1, 0), 0);
        assert_eq!(g.out_neighbors(0).collect::<Vec<_>>(), vec![1, 1]);
    }

    #[test]
    fn self_loops() {
        let g = Digraph::from_edges(2, [(0, 1)]);
        assert!(!g.has_self_loop(0));
        let closed = g.with_self_loops();
        assert!(closed.has_self_loop(0) && closed.has_self_loop(1));
        assert_eq!(closed.edge_count(), 3);
        // Idempotent.
        assert_eq!(closed.with_self_loops().edge_count(), 3);
    }

    #[test]
    fn bidirectional_check() {
        let sym = Digraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]);
        assert!(sym.is_bidirectional());
        let asym = Digraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!(!asym.is_bidirectional());
        // Multiplicity does not matter for the set-semantics check.
        let multi = Digraph::from_edges(2, [(0, 1), (0, 1), (1, 0)]);
        assert!(multi.is_bidirectional());
    }

    #[test]
    fn transpose_and_relabel() {
        let g = Digraph::from_edges(3, [(0, 1), (1, 2)]);
        let t = g.transpose();
        assert_eq!(t.multiplicity(1, 0), 1);
        assert_eq!(t.multiplicity(2, 1), 1);
        let r = g.relabel(&[2, 0, 1]);
        assert_eq!(r.multiplicity(2, 0), 1);
        assert_eq!(r.multiplicity(0, 1), 1);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = Digraph::new(2);
        let _ = g.relabel(&[0, 0]);
    }

    #[test]
    fn canonical_ports() {
        let g = Digraph::from_edges(3, [(0, 1), (0, 2), (1, 0)]).with_canonical_ports();
        let ports: Vec<Option<u32>> = g.out_edges(0).map(|e| g.edges()[e].port).collect();
        assert_eq!(ports, vec![Some(0), Some(1)]);
    }

    #[test]
    fn multiplicity_matrix() {
        let g = Digraph::from_edges(2, [(0, 1), (0, 1), (1, 1)]);
        assert_eq!(g.multiplicity_matrix(), vec![vec![0, 2], vec![0, 1]]);
    }
}
