//! Distributed algorithms for anonymous networks.
//!
//! This crate implements every algorithm the paper uses or proposes,
//! ready to run on the [`kya_runtime`] simulator:
//!
//! - [`gossip`]: set flooding — the witness that **set-based** functions
//!   are computable under simple broadcast (§1, Table 1 column 1);
//! - [`views`]: truncated universal covers ("views") with structural
//!   sharing, and the `B(T)` candidate-base extraction at the heart of
//!   Boldi & Vigna's construction (§3.2);
//! - [`min_base`]: the distributed minimum-base algorithms, one per
//!   communication model, stabilizing by round `n + D` (§4.2);
//! - [`frequency`]: the fibre-cardinality solvers — the homogeneous
//!   system of eq. (1) for outdegree awareness, the ratio construction of
//!   eq. (4) for symmetric communications, the equal-fibre rule of
//!   eq. (3) for output port awareness — and the [`FibreCensus`] they
//!   produce, from which set-, frequency-, and multiset-based functions
//!   are evaluated (§4.2–4.5);
//! - [`push_sum`]: the Push-Sum family for dynamic networks — quot-sum
//!   (Theorem 5.2), the frequency vector of Algorithm 1, ℚ_N rounding
//!   (Corollary 5.3), and the leader variant (§5.5) — in both `f64` and
//!   exact-rational arithmetic;
//! - [`metropolis`]: average consensus on symmetric dynamic networks —
//!   Metropolis and Lazy Metropolis weights under outdegree awareness,
//!   and the fixed-weight `1/N` variant that needs only a bound on the
//!   network size (§5);
//! - [`quantized`]: the bounded-bandwidth twins — Push-Sum with b-bit
//!   token shares and residual carry, Metropolis with antisymmetric
//!   integer transfers — whose messages fit a
//!   [`MessageCodec`](kya_runtime::MessageCodec) cap
//!   structurally and whose token mass is conserved exactly in ℚ
//!   (ROADMAP's bandwidth pillar);
//! - [`certified`]: the certified middle rung between the `f64` and exact
//!   variants — Push-Sum and Metropolis over directed-rounding
//!   [`Enclosure`](kya_arith::Enclosure)s whose intervals certify the
//!   `f64` run, plus lazily-normalized ℚ twins
//!   ([`certified::LazyPushSumExact`]) for the escalated path;
//! - [`lifting`]: the Lifting Lemma (Lemma 3.1) as an executable check —
//!   run an algorithm on a base, lift fibrewise, and verify the lift is a
//!   legal execution upstairs. This is the engine of every impossibility
//!   demonstration in the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certified;
pub mod frequency;
pub mod gossip;
pub mod lifting;
pub mod metropolis;
pub mod min_base;
pub mod push_sum;
pub mod quantized;
pub mod views;

pub use frequency::FibreCensus;
pub use views::{CandidateBase, View};
