fn main() -> std::process::ExitCode {
    kya_bench::experiments::run_main("f7")
}
