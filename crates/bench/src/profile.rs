//! `kya profile` — the machine-readable flat-engine perf snapshot.
//!
//! Runs a seeded flat+boxed Push-Sum matrix and assembles a versioned
//! JSON document (`BENCH_flat.json`) with rounds/s, bytes/agent, the
//! wall-clock phase breakdown, and a host fingerprint — the repo's
//! perf-trajectory artifact and the CI regression hook.
//!
//! Two outputs, two disciplines (DESIGN.md §10):
//!
//! - [`run`] produces the **snapshot**: it contains wall-clock numbers
//!   (rounds/s, `phase_us`) and a host fingerprint, so it is *not*
//!   byte-stable — each measurement run writes a new trajectory point.
//!   [`validate`] checks a snapshot against the schema, which *is*
//!   stable ([`SCHEMA_VERSION`]).
//! - [`probe_stream`] produces the **deterministic probe stream** of
//!   the same matrix: merged counters and bit-exact sample digests,
//!   nothing wall-clock. CI byte-diffs it at `--threads 1` vs `4`.

use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::{generators, Digraph, StaticGraph};
use kya_runtime::{CountingProbe, Execution, FlatExecution, FlatRunConfig, Isotropic, RunConfig};
use serde::Value;
use std::time::Instant;

/// Version of the `BENCH_flat.json` schema this build writes.
pub const SCHEMA_VERSION: u64 = 1;

/// The `kind` discriminator of a snapshot document.
pub const KIND: &str = "kya-flat-profile";

/// Convergence tolerance of the profile's measured runs.
const EPS: f64 = 1e-9;

/// Boxed cells are capped at this size: the boxed executor is the
/// baseline being escaped, and a 10^6-agent boxed run would dominate
/// the whole profile's wall-clock for a number nobody reads.
const BOXED_MAX_N: usize = 100_000;

/// The profile matrix: sizes, round budget, thread counts, seed.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Agent counts, one flat cell per (size, thread count).
    pub sizes: Vec<usize>,
    /// Round budget per cell.
    pub rounds: u64,
    /// Thread counts for the flat cells (boxed runs at 1 thread).
    pub threads: Vec<usize>,
    /// Seed of the random strongly-connected topology.
    pub seed: u64,
}

impl ProfileConfig {
    /// The full matrix of the acceptance criteria: n ∈ {10^5, 10^6}.
    pub fn full() -> ProfileConfig {
        ProfileConfig {
            sizes: vec![100_000, 1_000_000],
            rounds: 20,
            threads: vec![1, 4],
            seed: 1,
        }
    }

    /// A seconds-scale matrix for CI (`kya profile --smoke`).
    pub fn smoke() -> ProfileConfig {
        ProfileConfig {
            sizes: vec![1_000, 5_000],
            rounds: 8,
            threads: vec![1, 2],
            seed: 1,
        }
    }

    fn topology_label(&self, n: usize) -> String {
        format!("random:{n}:{}:{}", 2 * n, self.seed)
    }

    fn graph(&self, n: usize) -> Digraph {
        generators::random_strongly_connected(n, 2 * n, self.seed).with_self_loops()
    }

    fn values(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 101) as f64).collect()
    }
}

fn map(fields: Vec<(&str, Value)>) -> Value {
    Value::Map(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn host_fingerprint() -> Value {
    let cpus = std::thread::available_parallelism()
        .map(|p| p.get() as u64)
        .unwrap_or(0);
    map(vec![
        ("os", Value::Str(std::env::consts::OS.to_string())),
        ("arch", Value::Str(std::env::consts::ARCH.to_string())),
        ("cpus", Value::UInt(cpus)),
    ])
}

fn opt_u64(v: Option<u64>) -> Value {
    v.map_or(Value::Null, Value::UInt)
}

/// One flat cell: a pure timed run for rounds/s, then a probed measured
/// run for `converged_at`, the counters, and the phase breakdown.
fn flat_cell(cfg: &ProfileConfig, g: &Digraph, n: usize, threads: usize) -> Value {
    let values = ProfileConfig::values(n);
    let target = values.iter().sum::<f64>() / n.max(1) as f64;
    let states = PushSumState::averaging(&values);

    let mut timed = FlatExecution::new(PushSum, g, PushSumState::columns(&states));
    let bytes = timed.resident_bytes();
    let start = Instant::now();
    timed.run(cfg.rounds, threads);
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let mut probed = FlatExecution::new(PushSum, g, PushSumState::columns(&states));
    let mut probe = CountingProbe::new();
    let report = probed.drive_probed(
        FlatRunConfig::rounds(cfg.rounds)
            .threads(threads)
            .measure(target, EPS)
            .confirm(2),
        &mut probe,
    );
    let summary = probe.summary();
    let times = probe.timing();
    map(vec![
        ("engine", Value::Str("flat".to_string())),
        ("topology", Value::Str(cfg.topology_label(n))),
        ("n", Value::UInt(n as u64)),
        ("threads", Value::UInt(threads as u64)),
        ("rounds", Value::UInt(cfg.rounds)),
        ("rounds_per_sec", Value::Float(cfg.rounds as f64 / secs)),
        (
            "bytes_per_agent",
            Value::Float(bytes as f64 / n.max(1) as f64),
        ),
        ("converged_at", opt_u64(report.converged_at)),
        ("messages_routed", Value::UInt(summary.messages_routed)),
        (
            "arena_high_water_bytes",
            Value::UInt(summary.arena_high_water_bytes),
        ),
        (
            "phase_us",
            map(vec![
                ("route", Value::UInt(times.route_us)),
                ("send", Value::UInt(times.send_us)),
                ("transition", Value::UInt(times.transition_us)),
                ("merge", Value::UInt(times.merge_us)),
            ]),
        ),
    ])
}

/// One boxed baseline cell: a pure timed run only (the boxed executor
/// has its own observer stack; here it is just the speedup denominator).
fn boxed_cell(cfg: &ProfileConfig, g: &Digraph, n: usize) -> Value {
    let states = PushSumState::averaging(&ProfileConfig::values(n));
    let net = StaticGraph::new(g.clone());
    let mut exec = Execution::new(Isotropic(PushSum), states);
    let start = Instant::now();
    exec.drive(&net, RunConfig::rounds(cfg.rounds));
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    map(vec![
        ("engine", Value::Str("boxed".to_string())),
        ("topology", Value::Str(cfg.topology_label(n))),
        ("n", Value::UInt(n as u64)),
        ("threads", Value::UInt(1)),
        ("rounds", Value::UInt(cfg.rounds)),
        ("rounds_per_sec", Value::Float(cfg.rounds as f64 / secs)),
        ("bytes_per_agent", Value::Null),
        ("converged_at", Value::Null),
        ("messages_routed", Value::Null),
        ("arena_high_water_bytes", Value::Null),
        ("phase_us", Value::Null),
    ])
}

/// Run the profile matrix and assemble the snapshot document.
pub fn run(cfg: &ProfileConfig) -> Value {
    let mut cells = Vec::new();
    for &n in &cfg.sizes {
        let g = cfg.graph(n);
        for &t in &cfg.threads {
            cells.push(flat_cell(cfg, &g, n, t));
        }
        if n <= BOXED_MAX_N {
            cells.push(boxed_cell(cfg, &g, n));
        }
    }
    map(vec![
        ("schema_version", Value::UInt(SCHEMA_VERSION)),
        ("kind", Value::Str(KIND.to_string())),
        ("host", host_fingerprint()),
        (
            "config",
            map(vec![
                (
                    "sizes",
                    Value::Seq(cfg.sizes.iter().map(|&n| Value::UInt(n as u64)).collect()),
                ),
                ("rounds", Value::UInt(cfg.rounds)),
                (
                    "threads",
                    Value::Seq(cfg.threads.iter().map(|&t| Value::UInt(t as u64)).collect()),
                ),
                ("seed", Value::UInt(cfg.seed)),
            ]),
        ),
        ("cells", Value::Seq(cells)),
    ])
}

/// The deterministic probe stream of the matrix at one thread count:
/// per cell, a header line (`{"cell": ..., "n": ..., "rounds": ...}`)
/// followed by the cell's [`CountingProbe`] NDJSON. Contains neither
/// the thread count nor any wall-clock value, so two streams from
/// different `--threads` must be byte-identical — the CI `metrics` job
/// diffs exactly that.
pub fn probe_stream(cfg: &ProfileConfig, threads: usize) -> String {
    let mut out = String::new();
    for &n in &cfg.sizes {
        let g = cfg.graph(n);
        let states = PushSumState::averaging(&ProfileConfig::values(n));
        let mut exec = FlatExecution::new(PushSum, &g, PushSumState::columns(&states));
        let mut probe = CountingProbe::new();
        exec.run_probed(cfg.rounds, threads, &mut probe);
        let header = map(vec![
            ("cell", Value::Str(cfg.topology_label(n))),
            ("n", Value::UInt(n as u64)),
            ("rounds", Value::UInt(cfg.rounds)),
        ]);
        out.push_str(&header.to_json());
        out.push('\n');
        out.push_str(&probe.to_ndjson());
    }
    out
}

/// Integer accessor tolerant of the parser's `Int`/builder's `UInt`
/// split: a freshly built snapshot carries `UInt`s, a JSON round-trip
/// comes back as `Int`s.
fn value_u64(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn expect_key(cell: &Value, key: &str, where_: &str) -> Result<(), String> {
    if cell.get(key).is_none() {
        return Err(format!("{where_}: missing key `{key}`"));
    }
    Ok(())
}

/// Check a parsed snapshot against the [`SCHEMA_VERSION`] schema: the
/// version/kind discriminators, the host fingerprint, the config block,
/// and every cell's required keys (flat cells must carry
/// `bytes_per_agent`, `messages_routed`, and the four-phase `phase_us`
/// block). Returns the first violation.
pub fn validate(doc: &Value) -> Result<(), String> {
    match doc.get("schema_version").map(value_u64) {
        Some(Some(v)) if v == SCHEMA_VERSION => {}
        Some(_) => {
            return Err(format!(
                "unsupported schema_version {:?}",
                doc.get("schema_version")
            ))
        }
        None => return Err("missing key `schema_version`".to_string()),
    }
    match doc.get("kind").and_then(Value::as_str) {
        Some(k) if k == KIND => {}
        other => return Err(format!("kind is {other:?}, expected `{KIND}`")),
    }
    let host = doc.get("host").ok_or("missing key `host`")?;
    for key in ["os", "arch", "cpus"] {
        expect_key(host, key, "host")?;
    }
    let config = doc.get("config").ok_or("missing key `config`")?;
    for key in ["sizes", "rounds", "threads", "seed"] {
        expect_key(config, key, "config")?;
    }
    let cells = doc
        .get("cells")
        .and_then(Value::as_seq)
        .ok_or("missing or non-array key `cells`")?;
    if cells.is_empty() {
        return Err("`cells` is empty".to_string());
    }
    for (i, cell) in cells.iter().enumerate() {
        let where_ = format!("cells[{i}]");
        for key in [
            "engine",
            "topology",
            "n",
            "threads",
            "rounds",
            "rounds_per_sec",
            "bytes_per_agent",
            "converged_at",
            "messages_routed",
            "arena_high_water_bytes",
            "phase_us",
        ] {
            expect_key(cell, key, &where_)?;
        }
        if cell.get("engine").and_then(Value::as_str) == Some("flat") {
            for key in ["bytes_per_agent", "messages_routed"] {
                if matches!(cell.get(key), Some(Value::Null)) {
                    return Err(format!("{where_}: flat cell has null `{key}`"));
                }
            }
            let phases = cell.get("phase_us").ok_or("unreachable")?;
            for key in ["route", "send", "transition", "merge"] {
                expect_key(phases, key, &format!("{where_}.phase_us"))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProfileConfig {
        ProfileConfig {
            sizes: vec![64],
            rounds: 3,
            threads: vec![1, 2],
            seed: 7,
        }
    }

    #[test]
    fn snapshot_validates_against_its_own_schema() {
        let doc = run(&tiny());
        validate(&doc).expect("schema-valid");
        // And survives a JSON round-trip.
        let text = doc.to_json();
        let back = Value::from_json(&text).expect("parses");
        validate(&back).expect("round-tripped snapshot still valid");
    }

    #[test]
    fn probe_stream_is_thread_count_invariant() {
        let cfg = tiny();
        let one = probe_stream(&cfg, 1);
        let four = probe_stream(&cfg, 4);
        assert!(!one.is_empty());
        assert_eq!(one, four, "probe stream depends on thread count");
        assert!(!one.contains("_us"), "wall-clock leaked into the stream");
    }

    #[test]
    fn validate_rejects_wrong_version_and_missing_cells() {
        let doc = map(vec![
            ("schema_version", Value::UInt(99)),
            ("kind", Value::Str(KIND.to_string())),
        ]);
        assert!(validate(&doc).unwrap_err().contains("schema_version"));
        let mut ok = run(&tiny());
        if let Value::Map(fields) = &mut ok {
            fields.retain(|(k, _)| k != "cells");
        }
        assert!(validate(&ok).unwrap_err().contains("cells"));
    }
}
