//! Fibre-cardinality recovery and the fibre census (§4.2–4.5).
//!
//! Once an agent holds the minimum base, it recovers the fibre
//! cardinalities *up to a common factor* by solving a linear system whose
//! shape depends on the communication model:
//!
//! - **outdegree awareness** (eq. 1): the homogeneous system `M z = 0`
//!   with `M_{ij} = d_{i,j}` off-diagonal and `M_{ii} = d_{i,i} - b_i`,
//!   whose kernel is one-dimensional and positive (the Perron–Frobenius
//!   argument of §4.2) — solved exactly over ℚ;
//! - **symmetric communications** (eq. 4): `d_{i,j} |F_j| = d_{j,i}
//!   |F_i|`, solved by ratio propagation along a spanning tree;
//! - **output port awareness** (eq. 3): every fibration is a covering, so
//!   all fibres have the same cardinality — the ray is all-ones.
//!
//! The result is a [`FibreCensus`]: input values with relative
//! multiplicities. Frequencies follow by normalization; exact
//! multiplicities follow when the network size is known (Corollary 4.3)
//! or a known number of leaders breaks the scale invariance (eq. 5,
//! Corollary 4.4).

use crate::min_base::{MinBaseBroadcast, MinBaseOutdegree, MinBasePorts, ViewState};
use crate::views::CandidateBase;
use kya_arith::{BigInt, BigRational, KernelError, QMatrix};
use kya_runtime::{Algorithm, BroadcastAlgorithm, IsotropicAlgorithm};
use std::fmt;

/// Errors from fibre-cardinality solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CensusError {
    /// The kernel of the outdegree system is not a positive ray (should
    /// not happen for genuine minimum bases; indicates bad input).
    Kernel(KernelError),
    /// The base violates the symmetry condition of eq. (4) — the network
    /// was not bidirectional.
    NotSymmetric {
        /// Base vertices whose edge counts violate `d_{i,j} z_j = d_{j,i} z_i`.
        i: usize,
        /// See `i`.
        j: usize,
    },
    /// The requested exact scaling does not divide the recovered ray
    /// (e.g. the claimed network size is not a multiple of the ray total).
    ScaleMismatch,
}

impl fmt::Display for CensusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CensusError::Kernel(e) => write!(f, "kernel solve failed: {e}"),
            CensusError::NotSymmetric { i, j } => {
                write!(
                    f,
                    "base edge pair ({i}, {j}) violates the symmetry relation"
                )
            }
            CensusError::ScaleMismatch => write!(f, "scaling constraint has no integer solution"),
        }
    }
}

impl std::error::Error for CensusError {}

impl From<KernelError> for CensusError {
    fn from(e: KernelError) -> Self {
        CensusError::Kernel(e)
    }
}

/// The recovered census: one entry per fibre, with the fibre's (encoded)
/// input value and its cardinality *up to a global factor* (the entries
/// of the ray are coprime, eq. 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FibreCensus {
    values: Vec<u64>,
    ray: Vec<BigInt>,
}

impl FibreCensus {
    /// Build from parallel slices.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ, the census is empty, or some ray entry
    /// is not positive.
    pub fn new(values: Vec<u64>, ray: Vec<BigInt>) -> FibreCensus {
        assert_eq!(values.len(), ray.len(), "one ray entry per fibre");
        assert!(!values.is_empty(), "empty census");
        assert!(ray.iter().all(BigInt::is_positive), "ray must be positive");
        FibreCensus { values, ray }
    }

    /// Fibre values (one per base vertex; distinct fibres may share a
    /// value).
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// The coprime positive ray of relative fibre cardinalities.
    pub fn ray(&self) -> &[BigInt] {
        &self.ray
    }

    /// Sum of the ray (the size of the canonical representative vector
    /// `⟨ν⟩`).
    pub fn ray_total(&self) -> BigInt {
        self.ray.iter().sum()
    }

    /// The frequency of each *value* (summing fibres that share a value),
    /// sorted by value. Frequencies sum to 1.
    pub fn frequencies(&self) -> Vec<(u64, BigRational)> {
        let total = self.ray_total();
        let mut acc: std::collections::BTreeMap<u64, BigInt> = std::collections::BTreeMap::new();
        for (v, z) in self.values.iter().zip(&self.ray) {
            let e = acc.entry(*v).or_insert_with(BigInt::zero);
            *e += z;
        }
        acc.into_iter()
            .map(|(v, z)| (v, BigRational::new(z, total.clone())))
            .collect()
    }

    /// Exact multiplicities when the network size `n` is known
    /// (Corollary 4.3): the global factor is `n / ray_total`, which must
    /// be a positive integer.
    ///
    /// # Errors
    ///
    /// [`CensusError::ScaleMismatch`] if `ray_total` does not divide `n`.
    pub fn multiplicities_known_n(&self, n: usize) -> Result<Vec<(u64, BigInt)>, CensusError> {
        let total = self.ray_total();
        let n_big = BigInt::from(n);
        let (k, r) = n_big.div_rem(&total);
        if !r.is_zero() || !k.is_positive() {
            return Err(CensusError::ScaleMismatch);
        }
        Ok(self.scaled(&k))
    }

    /// Exact multiplicities when `ell` agents are known to be leaders
    /// (eq. 5, Corollary 4.4): the leader fibres are those whose value
    /// satisfies `is_leader`, and the factor is
    /// `ell / Σ_{leader fibres} z_j`.
    ///
    /// # Errors
    ///
    /// [`CensusError::ScaleMismatch`] if there is no leader fibre or the
    /// division is not exact.
    pub fn multiplicities_with_leaders(
        &self,
        ell: usize,
        is_leader: impl Fn(u64) -> bool,
    ) -> Result<Vec<(u64, BigInt)>, CensusError> {
        let leader_mass: BigInt = self
            .values
            .iter()
            .zip(&self.ray)
            .filter(|(v, _)| is_leader(**v))
            .map(|(_, z)| z)
            .sum();
        if !leader_mass.is_positive() {
            return Err(CensusError::ScaleMismatch);
        }
        let (k, r) = BigInt::from(ell).div_rem(&leader_mass);
        if !r.is_zero() || !k.is_positive() {
            return Err(CensusError::ScaleMismatch);
        }
        Ok(self.scaled(&k))
    }

    fn scaled(&self, k: &BigInt) -> Vec<(u64, BigInt)> {
        let mut acc: std::collections::BTreeMap<u64, BigInt> = std::collections::BTreeMap::new();
        for (v, z) in self.values.iter().zip(&self.ray) {
            let e = acc.entry(*v).or_insert_with(BigInt::zero);
            *e += &(z * k);
        }
        acc.into_iter().collect()
    }

    /// The canonical representative vector `⟨ν⟩` (§2.3): each value
    /// repeated with its ray multiplicity, sorted by value. Any
    /// frequency-based function takes its true value on this vector.
    pub fn canonical_vector(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut pairs: Vec<(u64, &BigInt)> =
            self.values.iter().copied().zip(self.ray.iter()).collect();
        pairs.sort_by_key(|(v, _)| *v);
        for (v, z) in pairs {
            let reps = z.to_u64().expect("census multiplicities fit in u64");
            out.extend(std::iter::repeat_n(v, reps as usize));
        }
        out
    }
}

/// Solve eq. (1) for a candidate base produced under outdegree awareness:
/// `b_i z_i = Σ_j d_{i,j} z_j` with `b_i` the fibre outdegrees (the
/// base's annotations).
///
/// # Errors
///
/// [`CensusError::Kernel`] if the kernel is not a positive line — which
/// the paper proves cannot happen for a genuine minimum base of a
/// strongly connected network.
pub fn census_from_outdegree_base(cb: &CandidateBase) -> Result<FibreCensus, CensusError> {
    let m = cb.graph.n();
    let counts = cb.graph.multiplicity_matrix();
    let mut mat = QMatrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            let d = counts[i][j] as i64;
            let entry = if i == j {
                d - cb.annotations[i] as i64
            } else {
                d
            };
            mat[(i, j)] = BigRational::from_integer(entry);
        }
    }
    let ray = mat.positive_integer_kernel()?;
    Ok(FibreCensus::new(cb.values.clone(), ray))
}

/// Solve eq. (4) for a candidate base of a bidirectional network:
/// `d_{i,j} z_j = d_{j,i} z_i`, by ratio propagation along a BFS tree of
/// the base, then scaling to coprime integers. All pairs are verified.
///
/// # Errors
///
/// [`CensusError::NotSymmetric`] if some pair has `d_{i,j} > 0` but
/// `d_{j,i} == 0`, or the propagated ray violates the relation.
pub fn census_from_symmetric_base(cb: &CandidateBase) -> Result<FibreCensus, CensusError> {
    let m = cb.graph.n();
    let counts = cb.graph.multiplicity_matrix();
    // BFS over the support, propagating z_j = z_i * d_{i,j} / d_{j,i}.
    let mut z: Vec<Option<BigRational>> = vec![None; m];
    z[0] = Some(BigRational::one());
    let mut queue = std::collections::VecDeque::from([0usize]);
    while let Some(i) = queue.pop_front() {
        let zi = z[i].clone().expect("queued vertices are assigned");
        for j in 0..m {
            if counts[i][j] == 0 && counts[j][i] == 0 {
                continue;
            }
            if (counts[i][j] == 0) != (counts[j][i] == 0) {
                return Err(CensusError::NotSymmetric { i, j });
            }
            if z[j].is_none() {
                // eq. (4): d_{i,j} z_j = d_{j,i} z_i.
                let ratio = BigRational::from_i64(counts[j][i] as i64, counts[i][j] as i64);
                z[j] = Some(&zi * &ratio);
                queue.push_back(j);
            }
        }
    }
    let ray_q: Vec<BigRational> = z
        .into_iter()
        .map(|zi| zi.expect("base is strongly connected"))
        .collect();
    // Verify eq. (4) on every pair.
    for i in 0..m {
        for j in 0..m {
            let lhs = &BigRational::from_integer(counts[i][j] as i64) * &ray_q[j];
            let rhs = &BigRational::from_integer(counts[j][i] as i64) * &ray_q[i];
            if lhs != rhs {
                return Err(CensusError::NotSymmetric { i, j });
            }
        }
    }
    // Scale to coprime positive integers via the shared-kernel helper:
    // build a 1 x m matrix whose kernel is exactly the ray's orthogonal
    // complement? Simpler: clear denominators and divide by gcd.
    let denom_lcm = ray_q
        .iter()
        .fold(BigInt::one(), |acc, x| kya_arith::lcm(&acc, x.denom()));
    let ints: Vec<BigInt> = ray_q
        .iter()
        .map(|x| x.numer() * &(&denom_lcm / x.denom()))
        .collect();
    let g = ints
        .iter()
        .fold(BigInt::zero(), |acc, x| kya_arith::gcd(&acc, x));
    let ray = ints.iter().map(|x| x / &g).collect();
    Ok(FibreCensus::new(cb.values.clone(), ray))
}

/// Apply eq. (3) for a candidate base under output port awareness: all
/// fibres have equal cardinality, so the ray is all ones.
pub fn census_from_port_base(cb: &CandidateBase) -> FibreCensus {
    FibreCensus::new(cb.values.clone(), vec![BigInt::one(); cb.graph.n()])
}

// ---------------------------------------------------------------------
// Composed end-to-end algorithms: distributed min base + solver.
// ---------------------------------------------------------------------

/// End-to-end frequency recovery under **outdegree awareness**: the
/// distributed min-base algorithm with the eq. (1) solver applied to each
/// round's candidate. Output stabilizes to the true census by round
/// `n + D`.
#[derive(Clone, Copy, Debug, Default)]
pub struct CensusOutdegree;

impl IsotropicAlgorithm for CensusOutdegree {
    type State = ViewState;
    type Msg = <MinBaseOutdegree as IsotropicAlgorithm>::Msg;
    type Output = Option<FibreCensus>;

    fn message(&self, state: &ViewState, outdegree: usize) -> Self::Msg {
        MinBaseOutdegree.message(state, outdegree)
    }

    fn transition(&self, state: &ViewState, inbox: &[Self::Msg]) -> ViewState {
        MinBaseOutdegree.transition(state, inbox)
    }

    fn output(&self, state: &ViewState) -> Option<FibreCensus> {
        let cb = MinBaseOutdegree.output(state)?;
        census_from_outdegree_base(&cb).ok()
    }
}

/// End-to-end frequency recovery under **symmetric communications**: the
/// broadcast min-base algorithm with the eq. (4) solver.
#[derive(Clone, Copy, Debug, Default)]
pub struct CensusSymmetric;

impl BroadcastAlgorithm for CensusSymmetric {
    type State = ViewState;
    type Msg = <MinBaseBroadcast as BroadcastAlgorithm>::Msg;
    type Output = Option<FibreCensus>;

    fn message(&self, state: &ViewState) -> Self::Msg {
        MinBaseBroadcast.message(state)
    }

    fn transition(&self, state: &ViewState, inbox: &[Self::Msg]) -> ViewState {
        MinBaseBroadcast.transition(state, inbox)
    }

    fn output(&self, state: &ViewState) -> Option<FibreCensus> {
        let cb = MinBaseBroadcast.output(state)?;
        census_from_symmetric_base(&cb).ok()
    }
}

/// End-to-end frequency recovery under **output port awareness**: the
/// port-colored min-base algorithm with the eq. (3) equal-fibres rule.
#[derive(Clone, Copy, Debug, Default)]
pub struct CensusPorts;

impl Algorithm for CensusPorts {
    type State = ViewState;
    type Msg = <MinBasePorts as Algorithm>::Msg;
    type Output = Option<FibreCensus>;

    fn send(&self, state: &ViewState, outdegree: usize) -> Vec<Self::Msg> {
        MinBasePorts.send(state, outdegree)
    }

    fn transition(&self, state: &ViewState, inbox: &[Self::Msg]) -> ViewState {
        MinBasePorts.transition(state, inbox)
    }

    fn output(&self, state: &ViewState) -> Option<FibreCensus> {
        let cb = MinBasePorts.output(state)?;
        Some(census_from_port_base(&cb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::{generators, Digraph, StaticGraph};
    use kya_runtime::RunConfig;
    use kya_runtime::{Broadcast, Execution, Isotropic};

    fn big(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn census_basics() {
        let census = FibreCensus::new(vec![10, 20, 10], vec![big(1), big(2), big(3)]);
        assert_eq!(census.ray_total(), big(6));
        let freqs = census.frequencies();
        assert_eq!(
            freqs,
            vec![
                (10, BigRational::from_i64(4, 6)),
                (20, BigRational::from_i64(2, 6)),
            ]
        );
        assert_eq!(census.canonical_vector(), vec![10, 10, 10, 10, 20, 20]);
    }

    #[test]
    fn known_n_scaling() {
        let census = FibreCensus::new(vec![1, 2], vec![big(1), big(2)]);
        assert_eq!(
            census.multiplicities_known_n(9).unwrap(),
            vec![(1, big(3)), (2, big(6))]
        );
        assert_eq!(
            census.multiplicities_known_n(8),
            Err(CensusError::ScaleMismatch)
        );
    }

    #[test]
    fn leader_scaling() {
        // Value 99 marks the leader fibre (size 1 in the ray).
        let census = FibreCensus::new(vec![99, 5], vec![big(1), big(3)]);
        let mult = census.multiplicities_with_leaders(2, |v| v == 99).unwrap();
        assert_eq!(mult, vec![(5, big(6)), (99, big(2))]);
        assert!(census.multiplicities_with_leaders(1, |v| v == 77).is_err());
    }

    #[test]
    fn outdegree_census_on_star() {
        // Star(4): center fibre size 1, leaf fibre size 3.
        let g = generators::star(4);
        let net = StaticGraph::new(g);
        let mut exec = Execution::new(
            Isotropic(CensusOutdegree),
            ViewState::initial(&[7, 3, 3, 3]),
        );
        exec.drive(&net, RunConfig::rounds(10));
        for out in exec.outputs() {
            let census = out.expect("stabilized");
            let freqs = census.frequencies();
            assert_eq!(
                freqs,
                vec![
                    (3, BigRational::from_i64(3, 4)),
                    (7, BigRational::from_i64(1, 4)),
                ]
            );
            // Known n = 4 gives exact multiplicities.
            assert_eq!(
                census.multiplicities_known_n(4).unwrap(),
                vec![(3, big(3)), (7, big(1))]
            );
        }
    }

    #[test]
    fn outdegree_census_on_lifted_base() {
        // Prescribed fibre sizes (2, 3, 4) via a lift; ray must be the
        // coprime version of (2, 3, 4) — itself.
        // Self-loops on the base lift to intra-fibre permutations, which
        // keeps large fibres exit-connected even when their base edges
        // target smaller fibres.
        let base = generators::random_strongly_connected(3, 2, 17).with_self_loops();
        let (g, fibre_of) =
            generators::connected_lift(&base, &[2, 3, 4], 17, 256).expect("connected lift");
        // Distinct values per fibre keep the min base aligned with the lift.
        let values: Vec<u64> = fibre_of.iter().map(|&f| f as u64 * 100).collect();
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds((g.n() * 2 + 10) as u64));
        let census = exec.outputs()[0].clone().expect("stabilized");
        let freqs = census.frequencies();
        assert_eq!(
            freqs,
            vec![
                (0, BigRational::from_i64(2, 9)),
                (100, BigRational::from_i64(3, 9)),
                (200, BigRational::from_i64(4, 9)),
            ]
        );
    }

    #[test]
    fn symmetric_census_on_bidirectional_graphs() {
        // Star is bidirectional: leaf/center frequencies 3/4 and 1/4.
        let g = generators::star(4);
        let net = StaticGraph::new(g);
        let mut exec = Execution::new(
            Broadcast(CensusSymmetric),
            ViewState::initial(&[7, 3, 3, 3]),
        );
        exec.drive(&net, RunConfig::rounds(12));
        for out in exec.outputs() {
            let census = out.expect("stabilized");
            assert_eq!(
                census.frequencies(),
                vec![
                    (3, BigRational::from_i64(3, 4)),
                    (7, BigRational::from_i64(1, 4)),
                ]
            );
        }
    }

    #[test]
    fn symmetric_solver_rejects_directed_base() {
        // A directed ring base (no reciprocal edges) must be rejected.
        let mut g = Digraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 0);
        g.add_edge(1, 1);
        let cb = CandidateBase {
            graph: g,
            values: vec![0, 1],
            annotations: vec![0, 0],
        };
        assert!(matches!(
            census_from_symmetric_base(&cb),
            Err(CensusError::NotSymmetric { .. })
        ));
    }

    #[test]
    fn port_census_all_fibres_equal() {
        // Port-symmetric directed ring of 6 with period-2 values: the
        // port-colored base is R_2 and both fibres have size 3.
        let n = 6;
        let mut g = Digraph::new(n);
        for i in 0..n {
            g.add_edge_with_port(i, (i + 1) % n, Some(0));
            g.add_edge_with_port(i, i, Some(1));
        }
        let values: Vec<u64> = (0..n as u64).map(|v| v % 2).collect();
        let net = StaticGraph::new(g);
        let mut exec = Execution::new(CensusPorts, ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(14));
        for out in exec.outputs() {
            let census = out.expect("stabilized");
            assert_eq!(
                census.frequencies(),
                vec![
                    (0, BigRational::from_i64(1, 2)),
                    (1, BigRational::from_i64(1, 2)),
                ]
            );
        }
    }

    #[test]
    fn census_rejects_bad_input() {
        let r = std::panic::catch_unwind(|| FibreCensus::new(vec![1], vec![BigInt::zero()]));
        assert!(r.is_err());
    }
}
