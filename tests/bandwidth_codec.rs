//! Property tests for the [`MessageCodec`] laws at **every** width
//! `b ∈ 1..=52`: `decode ∘ encode` is the identity on in-range words,
//! `encode` saturates (never truncates) out-of-range values, the
//! shifted window variants agree with shift-then-encode, and the ℚ_N
//! grid projection stays within half a grid step.

use kya_arith::{BigInt, BigRational};
use kya_runtime::{BandwidthCap, MessageCodec};
use proptest::prelude::*;

proptest! {
    /// In-range words survive the round trip unchanged, at every width.
    #[test]
    fn encode_decode_is_identity_in_range(bits in 1u32..=52, word in any::<u64>()) {
        let codec = MessageCodec::new(bits);
        let w = word & codec.max_codeword();
        prop_assert_eq!(codec.decode(codec.encode(w)), w, "b={}", bits);
    }

    /// Out-of-range values saturate to the largest codeword — the codec
    /// never wraps or truncates high bits into a smaller-looking value.
    #[test]
    fn encode_saturates(bits in 1u32..=52, value in any::<u64>()) {
        let codec = MessageCodec::new(bits);
        let w = codec.encode(value);
        prop_assert!(w <= codec.max_codeword());
        if value > codec.max_codeword() {
            prop_assert_eq!(w, codec.max_codeword(), "b={}", bits);
        } else {
            prop_assert_eq!(w, value, "b={}", bits);
        }
    }

    /// The shifted window is shift-then-encode: the round trip recovers
    /// the value with its low `shift` bits zeroed, saturated at the
    /// window's top.
    #[test]
    fn shifted_window_round_trip(
        bits in 1u32..=52,
        shift in 0u32..12,
        value in any::<u64>(),
    ) {
        let codec = MessageCodec::new(bits);
        let value = value >> 11; // keep value << shift from overflowing
        let w = codec.encode_shifted(value, shift);
        prop_assert!(w <= codec.max_codeword());
        let back = codec.decode_shifted(w, shift);
        let expected = (value >> shift).min(codec.max_codeword()) << shift;
        prop_assert_eq!(back, expected, "b={} shift={}", bits, shift);
    }

    /// `snap` lands on the ℚ_{2^b} grid within half a grid step — the
    /// `best_approximation` contract the conformance envelope relies on.
    #[test]
    fn snap_stays_within_grid_radius(
        bits in 1u32..=16,
        num in 0i64..10_000,
        den in 1i64..10_000,
    ) {
        let codec = MessageCodec::new(bits);
        let x = BigRational::from_i64(num % den.max(1), den);
        let snapped = codec.snap(&x);
        let dist = (&x - &snapped).abs();
        prop_assert!(
            dist <= codec.grid_radius(),
            "b={}: |{} - {}| = {} > 1/2^{}", bits, x, snapped, dist, bits + 1
        );
        // And the snapped value really lives in ℚ_{2^b}: its reduced
        // denominator is bounded by the level count (the grid is "all
        // rationals with denominator <= 2^b", not the dyadic lattice —
        // snap(333/1000) at b = 2 is 1/3, not 1/4).
        prop_assert!(
            snapped.denom() <= &BigInt::from(codec.levels()),
            "b={}: snap left Q_N: {}", bits, snapped
        );
    }
}

#[test]
fn cap_parse_round_trips_through_labels() {
    for cap in (1..=52)
        .map(BandwidthCap::Bits)
        .chain([BandwidthCap::Unlimited])
    {
        assert_eq!(BandwidthCap::parse(&cap.label()), Some(cap));
    }
}
