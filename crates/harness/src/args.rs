//! The shared `--key value` flag parser.
//!
//! Every `kya` subcommand and every bench binary parses flags the same
//! way: `--key value` pairs (a `--key` followed by another flag or
//! nothing is boolean `true`), with unknown flags rejected loudly
//! against the subcommand's valid set. This module is that single
//! implementation; it used to be copy-pasted between the CLI and the
//! bench drivers.

use crate::spec::SpecError;
use std::collections::BTreeMap;

/// Parsed `--key value` flags plus any bare (non-flag) arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    bare: Vec<String>,
}

impl Args {
    /// Parse an argument list (without the program / subcommand name).
    pub fn parse(argv: &[String]) -> Args {
        let mut flags = BTreeMap::new();
        let mut bare = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                // Boolean flags (no value) are stored as "true".
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    flags.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                }
            } else {
                bare.push(a.clone());
                i += 1;
            }
        }
        Args { flags, bare }
    }

    /// Bare (non-flag) arguments, in order.
    pub fn bare(&self) -> &[String] {
        &self.bare
    }

    /// The value of a required flag.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the missing flag.
    pub fn required(&self, key: &str) -> Result<&str, SpecError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| SpecError(format!("missing required flag --{key}")))
    }

    /// The value of an optional flag, if present.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional `f64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the value is not a number.
    pub fn f64_flag(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        self.optional(key).map_or(Ok(default), |s| {
            s.parse()
                .map_err(|_| SpecError(format!("--{key} must be a number, got `{s}`")))
        })
    }

    /// An optional `u64` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the value is not a number.
    pub fn u64_flag(&self, key: &str, default: u64) -> Result<u64, SpecError> {
        self.optional(key).map_or(Ok(default), |s| {
            s.parse()
                .map_err(|_| SpecError(format!("--{key} must be a number, got `{s}`")))
        })
    }

    /// An optional `usize` flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if the value is not a number.
    pub fn usize_flag(&self, key: &str, default: usize) -> Result<usize, SpecError> {
        self.optional(key).map_or(Ok(default), |s| {
            s.parse()
                .map_err(|_| SpecError(format!("--{key} must be a number, got `{s}`")))
        })
    }

    /// An optional comma-separated `usize` list flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] if any entry is not a number.
    pub fn usize_list_flag(&self, key: &str, default: &[usize]) -> Result<Vec<usize>, SpecError> {
        match self.optional(key) {
            None => Ok(default.to_vec()),
            Some(s) => s
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|item| {
                    item.parse().map_err(|_| {
                        SpecError(format!("--{key} entries must be numbers, got `{item}`"))
                    })
                })
                .collect(),
        }
    }

    /// Whether a boolean flag is set.
    pub fn is_set(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Reject flags the subcommand does not understand: a misspelled
    /// `--vaules` must fail loudly instead of silently running with the
    /// required flag reported missing (or worse, a default).
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the unknown flag and the valid set.
    pub fn reject_unknown(&self, cmd: &str, valid: &[&str]) -> Result<(), SpecError> {
        for key in self.flags.keys() {
            if !valid.contains(&key.as_str()) {
                let valid = if valid.is_empty() {
                    "it takes none".to_string()
                } else {
                    format!(
                        "valid flags: {}",
                        valid
                            .iter()
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                return Err(SpecError(format!(
                    "unknown flag --{key} for `{cmd}` ({valid})"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["--graph", "ring:5", "--n", "--values", "1,2"]);
        assert_eq!(a.required("graph").unwrap(), "ring:5");
        assert_eq!(a.optional("n"), Some("true"));
        assert_eq!(a.optional("values"), Some("1,2"));
        assert!(a.required("missing").is_err());
        assert!(a.bare().is_empty());
    }

    #[test]
    fn bare_arguments_detected() {
        let a = args(&["oops", "--graph", "ring:3"]);
        assert_eq!(a.bare(), &["oops".to_string()]);
    }

    #[test]
    fn typed_flags() {
        let a = args(&["--drop", "0.25", "--rounds", "40", "--sizes", "4,8,12"]);
        assert_eq!(a.f64_flag("drop", 0.0).unwrap(), 0.25);
        assert_eq!(a.f64_flag("dup", 0.5).unwrap(), 0.5);
        assert_eq!(a.u64_flag("rounds", 1).unwrap(), 40);
        assert_eq!(a.usize_list_flag("sizes", &[1]).unwrap(), vec![4, 8, 12]);
        assert_eq!(a.usize_list_flag("other", &[1, 2]).unwrap(), vec![1, 2]);
        assert!(a.f64_flag("rounds", 0.0).is_ok());
        let bad = args(&["--rounds", "many"]);
        assert!(bad.u64_flag("rounds", 1).is_err());
        assert!(bad.usize_list_flag("rounds", &[]).is_err());
    }

    #[test]
    fn unknown_flags_rejected_with_valid_set() {
        let a = args(&["--graph", "ring:3", "--vaules", "1,2,3"]);
        let err = a
            .reject_unknown("kya minbase", &["graph", "values"])
            .unwrap_err();
        assert!(err.0.contains("--vaules"), "{err}");
        assert!(
            err.0.contains("--graph, --values"),
            "names the valid set: {err}"
        );
        let a = args(&["--anything", "x"]);
        let err = a.reject_unknown("kya tables", &[]).unwrap_err();
        assert!(err.0.contains("takes none"), "{err}");
        let a = args(&["--graph", "ring:3", "--values", "1,2,3"]);
        assert!(a
            .reject_unknown("kya minbase", &["graph", "values"])
            .is_ok());
    }
}
