//! Fault injection and measured recovery (experiment F6).
//!
//! The paper's computability results assume a *fault-free* dynamic
//! network: every scripted edge of `G_t` delivers its message, and every
//! agent survives. This module asks the robustness question the model
//! makes precise: *which* communication-model/algorithm pairs keep (or
//! regain) their guarantees when the adversary also drops links,
//! duplicates messages, and crashes agents?
//!
//! Everything follows the §5.3 idiom that [`crate::adversary::AsyncStarts`]
//! established: a fault regime is a **transformation of the dynamic
//! graph**, not a change to the executor or to the algorithm's contract.
//! Two layers are provided, because link faults have two inequivalent
//! readings:
//!
//! - [`FaultyNetwork`] applies a [`FaultPlan`] at the **graph level**.
//!   A dropped link is removed *before* senders compute their messages,
//!   so an outdegree-aware sender sees its true (reduced) audience. This
//!   is the fail-aware reading: Push-Sum under a `FaultyNetwork` still
//!   conserves mass, because its shares are split over surviving links
//!   only. Self-loops always survive and crashed agents keep *only*
//!   their self-loop, exactly mirroring the `i = j` exemption of the
//!   async-start masking.
//! - [`FaultyExecution`] applies the same plan at the **message level**:
//!   messages are computed against the scripted graph and *then* lost in
//!   flight. Senders overestimate their audience, which is where real
//!   lossy networks break mass conservation. Undeliverable messages are
//!   bounced back to their sender within the communication-closed round
//!   (a link-layer NACK), and what the sender does with the bounce is the
//!   algorithm's choice via [`FaultAware::reabsorb`]: a self-healing
//!   algorithm re-merges the lost shares, while [`Lossy`] discards them —
//!   the negative control.
//!
//! Both layers are driven by the same deterministic, serializable
//! [`FaultPlan`]: every coin is a pure function of `(seed, round, src,
//! dst)`, so a fault script can be stored next to an experiment's JSON
//! output and replayed bit-for-bit.

use crate::algorithm::Algorithm;
use crate::config::RunConfig;
use crate::metric::Metric;
use crate::report::CellReport;
use kya_graph::{Digraph, DynamicGraph};
use serde::{Deserialize, Serialize};
use std::ops::Range;

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

/// One agent-crash interval of a [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashWindow {
    /// The crashed agent.
    pub agent: usize,
    /// First faulty round (rounds are numbered from 1).
    pub from: u64,
    /// First round the agent is live again (exclusive bound); `None`
    /// means crash-stop — the agent never recovers.
    pub until: Option<u64>,
}

impl CrashWindow {
    /// Whether the window covers round `t`.
    pub fn covers(&self, t: u64) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// A deterministic, seeded fault script.
///
/// The plan is a pure function: every decision (drop a link, duplicate
/// it, delay a retry) is derived by hashing `(seed, round, src, dst)`,
/// so the same plan value always produces the same fault pattern, on any
/// platform. Plans serialize to JSON for archival next to experiment
/// results.
///
/// Build with the fluent API:
///
/// ```
/// use kya_runtime::faults::FaultPlan;
///
/// let plan = FaultPlan::new(42)
///     .drop_links(0.3)       // each non-self-loop link fails i.i.d.
///     .duplicate(0.1)        // each surviving link may double-deliver
///     .retry_within(4)       // graph level: dropped links retry in <= 4 rounds
///     .crash(2, 10..20)      // agent 2 is down for rounds 10..20
///     .crash_stop(5, 30);    // agent 5 dies at round 30 for good
/// assert!(!plan.is_quiescent());
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    drop_p: f64,
    dup_p: f64,
    retry_within: Option<u64>,
    horizon: Option<u64>,
    crashes: Vec<CrashWindow>,
}

/// Domain-separation salts: one per kind of coin, so the drop pattern
/// does not correlate with the duplication or delay pattern.
const SALT_DROP: u64 = 0x6472_6f70_6c69_6e6b; // "droplink"
const SALT_DUP: u64 = 0x6475_706c_6963_6174; // "duplicat"
const SALT_DELAY: u64 = 0x6465_6c61_795f_5f5f; // "delay___"

fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A quiescent plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            retry_within: None,
            horizon: None,
            crashes: Vec::new(),
        }
    }

    /// Drop each non-self-loop link i.i.d. with probability `p` per
    /// round.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1` (`p = 1` would disconnect the network
    /// permanently, which no recovery notion survives).
    pub fn drop_links(mut self, p: f64) -> FaultPlan {
        assert!((0.0..1.0).contains(&p), "drop rate must be in [0, 1)");
        self.drop_p = p;
        self
    }

    /// Deliver each surviving non-self-loop link twice with probability
    /// `p` per round (message duplication).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    pub fn duplicate(mut self, p: f64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication rate must be in [0, 1]"
        );
        self.dup_p = p;
        self
    }

    /// Graph level only: a link dropped at round `t` is redelivered at a
    /// deterministic round in `t+1 ..= t+bound`, so a `T`-interval
    /// connected network stays `(T + bound)`-interval connected.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn retry_within(mut self, bound: u64) -> FaultPlan {
        assert!(bound >= 1, "retry bound must be at least one round");
        self.retry_within = Some(bound);
        self
    }

    /// Probabilistic link faults (drops and duplications) cease after
    /// round `last`: the network is fault-free from round `last + 1` on,
    /// so recovery after the final fault is a well-defined quantity.
    /// Crash windows are explicit intervals and are unaffected.
    ///
    /// # Panics
    ///
    /// Panics if `last == 0` (use a quiescent plan instead).
    pub fn until(mut self, last: u64) -> FaultPlan {
        assert!(last >= 1, "fault horizon must be at least one round");
        self.horizon = Some(last);
        self
    }

    /// Crash `agent` for the rounds in `window` (crash-recover).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or starts at round 0.
    pub fn crash(mut self, agent: usize, window: Range<u64>) -> FaultPlan {
        assert!(window.start >= 1, "rounds are numbered from 1");
        assert!(window.start < window.end, "empty crash window");
        self.crashes.push(CrashWindow {
            agent,
            from: window.start,
            until: Some(window.end),
        });
        self
    }

    /// Crash `agent` at round `from`, permanently (crash-stop).
    ///
    /// # Panics
    ///
    /// Panics if `from == 0`.
    pub fn crash_stop(mut self, agent: usize, from: u64) -> FaultPlan {
        assert!(from >= 1, "rounds are numbered from 1");
        self.crashes.push(CrashWindow {
            agent,
            from,
            until: None,
        });
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-round link-drop probability.
    pub fn drop_rate(&self) -> f64 {
        self.drop_p
    }

    /// The per-round duplication probability.
    pub fn duplicate_rate(&self) -> f64 {
        self.dup_p
    }

    /// The graph-level retry bound, if any.
    pub fn retry_bound(&self) -> Option<u64> {
        self.retry_within
    }

    /// The round after which probabilistic link faults cease, if any.
    pub fn horizon(&self) -> Option<u64> {
        self.horizon
    }

    /// The scripted crash windows.
    pub fn crashes(&self) -> &[CrashWindow] {
        &self.crashes
    }

    /// Whether the plan injects no faults at all (the identity
    /// adversary).
    pub fn is_quiescent(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.crashes.is_empty()
    }

    /// Whether `agent` is crashed at round `t`.
    pub fn is_crashed(&self, agent: usize, t: u64) -> bool {
        self.crashes.iter().any(|w| w.agent == agent && w.covers(t))
    }

    /// The last round at which a *scripted* crash state changes (an
    /// agent goes down or comes back). Crash-stops change state once,
    /// when they begin. Returns 0 for a crash-free plan. Note this is
    /// about the script; probabilistic link faults never cease, so
    /// recovery experiments measure from the last *observed* fault
    /// instead (see [`FaultEvents::last_fault_round`]).
    pub fn last_crash_transition(&self) -> u64 {
        self.crashes
            .iter()
            .map(|w| w.until.unwrap_or(w.from))
            .max()
            .unwrap_or(0)
    }

    /// The raw per-round drop coin for the link `src -> dst` at round
    /// `t`. Self-loops never drop.
    pub fn drops(&self, t: u64, src: usize, dst: usize) -> bool {
        if src == dst || self.drop_p == 0.0 || self.past_horizon(t) {
            return false;
        }
        self.coin(SALT_DROP, t, src, dst) < self.drop_p
    }

    /// The per-round duplication coin for the link `src -> dst` at round
    /// `t`. Self-loops never duplicate.
    pub fn duplicates(&self, t: u64, src: usize, dst: usize) -> bool {
        if src == dst || self.dup_p == 0.0 || self.past_horizon(t) {
            return false;
        }
        self.coin(SALT_DUP, t, src, dst) < self.dup_p
    }

    fn past_horizon(&self, t: u64) -> bool {
        self.horizon.is_some_and(|h| t > h)
    }

    /// Graph-level availability of the link `src -> dst` at round `t`:
    /// blocked when its drop coin fires, unless a drop from one of the
    /// previous `retry_within` rounds scheduled its redelivery for `t`.
    pub fn link_blocked(&self, t: u64, src: usize, dst: usize) -> bool {
        if !self.drops(t, src, dst) {
            return false;
        }
        let Some(bound) = self.retry_within else {
            return true;
        };
        // Redelivery forced at t by an earlier drop?
        let earliest = t.saturating_sub(bound).max(1);
        for t_prev in earliest..t {
            if self.drops(t_prev, src, dst) && t_prev + self.retry_delay(t_prev, src, dst) == t {
                return false;
            }
        }
        true
    }

    /// The deterministic redelivery delay in `1..=retry_within` for a
    /// drop at round `t` (graph level).
    ///
    /// # Panics
    ///
    /// Panics if no retry bound is configured.
    pub fn retry_delay(&self, t: u64, src: usize, dst: usize) -> u64 {
        let bound = self.retry_within.expect("retry bound configured");
        1 + self.raw(SALT_DELAY, t, src, dst) % bound
    }

    fn raw(&self, salt: u64, t: u64, src: usize, dst: usize) -> u64 {
        let mut h = self.seed ^ salt;
        for w in [t, src as u64, dst as u64] {
            h = splitmix_finalize(h.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(w));
        }
        h
    }

    /// A uniform coin in `[0, 1)`, pure in all arguments.
    fn coin(&self, salt: u64, t: u64, src: usize, dst: usize) -> f64 {
        (self.raw(salt, t, src, dst) >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Graph-level faults: FaultyNetwork
// ---------------------------------------------------------------------

/// A [`DynamicGraph`] adversary applying a [`FaultPlan`] *before* the
/// round is communicated — the fail-aware reading of link faults (see
/// the module docs for the contrast with [`FaultyExecution`]).
///
/// Round `t`'s graph is the inner graph with: every link incident to a
/// crashed agent removed, every link whose drop coin fires removed
/// (unless an earlier drop scheduled its retry for `t`), and every link
/// whose duplication coin fires doubled. Self-loops always survive, and
/// [`Digraph::with_self_loops`] closure is applied last — the same
/// invariant-preserving shape as [`crate::adversary::AsyncStarts`].
#[derive(Clone, Debug)]
pub struct FaultyNetwork<G> {
    inner: G,
    plan: FaultPlan,
}

impl<G: DynamicGraph> FaultyNetwork<G> {
    /// Wrap `inner` with a fault script.
    ///
    /// # Panics
    ///
    /// Panics if the plan crashes an agent outside `0..inner.n()`.
    pub fn new(inner: G, plan: FaultPlan) -> FaultyNetwork<G> {
        for w in plan.crashes() {
            assert!(
                w.agent < inner.n(),
                "crash window names agent {} but the network has {} agents",
                w.agent,
                inner.n()
            );
        }
        FaultyNetwork { inner, plan }
    }

    /// The fault script.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped fault-free network.
    pub fn inner(&self) -> &G {
        &self.inner
    }
}

impl<G: DynamicGraph> DynamicGraph for FaultyNetwork<G> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn graph(&self, t: u64) -> Digraph {
        let g = self.inner.graph(t);
        let mut out = Digraph::new(g.n());
        for e in g.edges() {
            if e.src == e.dst {
                // Self-loops always survive, even on crashed agents.
                out.add_edge_with_port(e.src, e.dst, e.port);
                continue;
            }
            if self.plan.is_crashed(e.src, t) || self.plan.is_crashed(e.dst, t) {
                continue;
            }
            if self.plan.link_blocked(t, e.src, e.dst) {
                continue;
            }
            out.add_edge_with_port(e.src, e.dst, e.port);
            if self.plan.duplicates(t, e.src, e.dst) {
                out.add_edge_with_port(e.src, e.dst, e.port);
            }
        }
        out.with_self_loops()
    }

    fn diameter_hint(&self) -> Option<usize> {
        // Probabilistic drops and crash windows void any a-priori bound;
        // only the identity plan (possibly with duplication, which never
        // lengthens paths) can forward the inner hint.
        if self.plan.drop_p == 0.0 && self.plan.crashes.is_empty() {
            self.inner.diameter_hint()
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Message-level faults: FaultAware, Lossy, FaultyExecution
// ---------------------------------------------------------------------

/// An [`Algorithm`] that can handle link-layer bounces: when a message
/// it sent is undeliverable (dropped in flight or addressed to a crashed
/// agent), the runtime returns it within the same communication-closed
/// round and calls [`FaultAware::reabsorb`] after the regular
/// transition.
///
/// `reabsorb` is the algorithm's self-healing hook: a mass-conserving
/// algorithm folds the lost shares back into its state (they are
/// rescattered over surviving links next round), while a fault-oblivious
/// algorithm ignores them — see [`Lossy`].
pub trait FaultAware: Algorithm {
    /// The state after folding back `lost`, the messages this agent sent
    /// this round that were not delivered. Called after
    /// [`Algorithm::transition`], only when `lost` is non-empty.
    fn reabsorb(&self, state: &Self::State, lost: &[Self::Msg]) -> Self::State;
}

/// Adapter running any algorithm under message loss *without* healing:
/// bounced messages are discarded. This is the negative control of the
/// F6 experiments — e.g. plain Push-Sum wrapped in `Lossy` leaks mass on
/// every dropped share and converges to the wrong value.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Lossy<A>(pub A);

impl<A: Algorithm> Algorithm for Lossy<A> {
    type State = A::State;
    type Msg = A::Msg;
    type Output = A::Output;

    fn send(&self, state: &Self::State, outdegree: usize) -> Vec<Self::Msg> {
        self.0.send(state, outdegree)
    }

    fn transition(&self, state: &Self::State, inbox: &[Self::Msg]) -> Self::State {
        self.0.transition(state, inbox)
    }

    fn transition_with_outdegree(
        &self,
        state: &Self::State,
        outdegree: usize,
        inbox: &[Self::Msg],
    ) -> Self::State {
        self.0.transition_with_outdegree(state, outdegree, inbox)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.0.output(state)
    }
}

impl<A: Algorithm> FaultAware for Lossy<A> {
    fn reabsorb(&self, state: &Self::State, _lost: &[Self::Msg]) -> Self::State {
        state.clone()
    }
}

/// Outdegree-aware algorithms with a self-healing bounce handler.
///
/// This is the isotropic-model face of [`FaultAware`]: implement it for
/// an [`IsotropicAlgorithm`](crate::IsotropicAlgorithm) and the
/// [`Isotropic`](crate::Isotropic) adapter becomes [`FaultAware`] for
/// free. (Downstream crates cannot implement the foreign `FaultAware`
/// for the foreign adapter directly — the orphan rule forbids it — so
/// the adapter forwarding lives here, next to the adapter.)
pub trait FaultAwareIsotropic: crate::IsotropicAlgorithm {
    /// The state after folding back `lost` undelivered messages; see
    /// [`FaultAware::reabsorb`].
    fn reabsorb(&self, state: &Self::State, lost: &[Self::Msg]) -> Self::State;
}

impl<A: FaultAwareIsotropic> FaultAware for crate::Isotropic<A> {
    fn reabsorb(&self, state: &Self::State, lost: &[Self::Msg]) -> Self::State {
        self.0.reabsorb(state, lost)
    }
}

/// Counters of faults actually injected by a [`FaultyExecution`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvents {
    /// Messages dropped in flight.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages bounced because their recipient was crashed.
    pub bounced_to_crashed: u64,
    /// Rounds during which at least one agent was crashed.
    pub crashed_rounds: u64,
    /// The last round at which any fault occurred (0 = none yet).
    pub last_fault_round: u64,
}

/// A conserved-quantity deficit measure over the full state vector,
/// used by [`FaultyExecution::run_with_recovery`] — 0 means perfectly
/// conserved (for Push-Sum, the lost weight mass).
pub type Invariant<'a, S> = &'a dyn Fn(&[S]) -> f64;

/// An executor injecting a [`FaultPlan`] at the **message level**: the
/// fail-oblivious reading of link faults, where senders compute their
/// messages against the scripted graph and lose some of them in flight.
///
/// Semantics per round `t` (communication closed, as in
/// [`Execution`](crate::Execution)):
///
/// 1. A **crashed** agent (per the plan's windows) sends nothing and
///    keeps its state frozen — it resumes from that state if its window
///    ends (crash-recover) or never (crash-stop).
/// 2. Every live agent sends as usual. Each non-self-loop message is
///    then dropped i.i.d. with the plan's drop rate, delivered twice
///    with its duplication rate, and bounced if its recipient is
///    crashed. Self-loop messages always deliver.
/// 3. Live agents transition on what actually arrived, then
///    [`FaultAware::reabsorb`] their bounced messages.
///
/// The drop coins are the *same* pure function used by
/// [`FaultyNetwork`], so one plan describes one fault pattern at either
/// layer.
#[derive(Clone, Debug)]
pub struct FaultyExecution<A: FaultAware> {
    algo: A,
    states: Vec<A::State>,
    round: u64,
    plan: FaultPlan,
    events: FaultEvents,
}

impl<A: FaultAware> FaultyExecution<A> {
    /// Start a faulted execution from the given initial states.
    pub fn new(algo: A, initial_states: Vec<A::State>, plan: FaultPlan) -> FaultyExecution<A> {
        for w in plan.crashes() {
            assert!(
                w.agent < initial_states.len(),
                "crash window names agent {} but there are {} agents",
                w.agent,
                initial_states.len()
            );
        }
        FaultyExecution {
            algo,
            states: initial_states,
            round: 0,
            plan,
            events: FaultEvents::default(),
        }
    }

    /// Number of agents.
    pub fn n(&self) -> usize {
        self.states.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Current states, indexed by agent.
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// Current outputs, indexed by agent.
    pub fn outputs(&self) -> Vec<A::Output> {
        self.states.iter().map(|s| self.algo.output(s)).collect()
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The fault script.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters of faults injected so far.
    pub fn events(&self) -> &FaultEvents {
        &self.events
    }

    /// Execute one round on `graph`, injecting the plan's message-level
    /// faults.
    ///
    /// Surviving messages keep the canonical ascending `(source id,
    /// port rank)` delivery order of
    /// [`Execution::step`](crate::Execution::step) — faults delete or
    /// duplicate entries in place, they never reorder — so a quiescent
    /// plan is bit-identical to the fault-free executor even for
    /// order-sensitive f64 algorithms (conformance check `paths`).
    ///
    /// # Panics
    ///
    /// Same contract as [`Execution::step`](crate::Execution::step):
    /// matching vertex count, self-loops everywhere, correct message
    /// counts from the algorithm.
    pub fn step(&mut self, graph: &Digraph) {
        self.step_observed(graph, &mut crate::telemetry::NullObserver);
    }

    /// Like [`FaultyExecution::step`], with an
    /// [`Observer`](crate::telemetry::Observer) seeing delivered
    /// messages (`on_message`, twice for a duplicated one) and messages
    /// lost to faults (`on_message_dropped`, covering both in-flight
    /// drops and bounces off crashed recipients).
    ///
    /// # Panics
    ///
    /// Same contract as [`FaultyExecution::step`].
    pub fn step_observed<O: crate::telemetry::Observer<A>>(
        &mut self,
        graph: &Digraph,
        obs: &mut O,
    ) {
        assert_eq!(graph.n(), self.states.len(), "graph size != agent count");
        self.round += 1;
        let t = self.round;
        let n = graph.n();
        let frozen: Vec<bool> = (0..n).map(|v| self.plan.is_crashed(v, t)).collect();
        if frozen.iter().any(|&f| f) {
            self.events.crashed_rounds += 1;
            self.events.last_fault_round = t;
        }

        obs.on_round_start(t, &self.states);
        let mut inboxes: Vec<Vec<A::Msg>> = (0..n)
            .map(|v| Vec::with_capacity(graph.indegree(v)))
            .collect();
        let mut bounced: Vec<Vec<A::Msg>> = vec![Vec::new(); n];
        for v in 0..n {
            assert!(
                graph.has_self_loop(v),
                "round {t}: vertex {v} lacks a self-loop"
            );
            if frozen[v] {
                continue; // crashed: sends nothing, state frozen below
            }
            let outdeg = graph.outdegree(v);
            let msgs = self.algo.send(&self.states[v], outdeg);
            assert_eq!(
                msgs.len(),
                outdeg,
                "algorithm produced {} messages for outdegree {outdeg}",
                msgs.len()
            );
            // Same port discipline as the fault-free executor.
            for (msg, &e) in msgs.into_iter().zip(graph.port_ranks().out_edges_ranked(v)) {
                let dst = graph.edges()[e].dst;
                if dst == v {
                    obs.on_message(t, v, dst, &msg);
                    inboxes[dst].push(msg);
                } else if frozen[dst] {
                    self.events.bounced_to_crashed += 1;
                    self.events.last_fault_round = t;
                    obs.on_message_dropped(t, v, dst, &msg);
                    bounced[v].push(msg);
                } else if self.plan.drops(t, v, dst) {
                    self.events.dropped += 1;
                    self.events.last_fault_round = t;
                    obs.on_message_dropped(t, v, dst, &msg);
                    bounced[v].push(msg);
                } else if self.plan.duplicates(t, v, dst) {
                    self.events.duplicated += 1;
                    self.events.last_fault_round = t;
                    obs.on_message(t, v, dst, &msg);
                    obs.on_message(t, v, dst, &msg);
                    inboxes[dst].push(msg.clone());
                    inboxes[dst].push(msg);
                } else {
                    obs.on_message(t, v, dst, &msg);
                    inboxes[dst].push(msg);
                }
            }
        }
        for (v, (inbox, lost)) in inboxes.into_iter().zip(bounced).enumerate() {
            if frozen[v] {
                continue;
            }
            let mut next =
                self.algo
                    .transition_with_outdegree(&self.states[v], graph.outdegree(v), &inbox);
            if !lost.is_empty() {
                next = self.algo.reabsorb(&next, &lost);
            }
            self.states[v] = next;
        }
        obs.on_round_end(t, &self.algo, &self.states);
    }

    /// Execute one run described by a [`RunConfig`]: the single entry
    /// point behind every legacy `run*` method, sharing the builder
    /// with [`Execution::drive`](crate::Execution::drive).
    ///
    /// Fault-specific semantics on top of the fault-free `drive`:
    ///
    /// - the report's `last_fault_round` covers every fault injected
    ///   during the run, and — when a
    ///   [`membership`](RunConfig::membership) is attached — the last
    ///   membership transition inside the budget, so `converged_at`
    ///   only reports recovery after both scripts went quiet;
    /// - the report's `events` are the delta of fault counters over
    ///   this run.
    ///
    /// # Panics
    ///
    /// The faulted executor is sequential: panics if
    /// [`threads`](RunConfig::threads) is not 1. Also panics under the
    /// same contract as [`FaultyExecution::step`].
    pub fn drive(&mut self, net: &dyn DynamicGraph, cfg: RunConfig<'_, A>) -> CellReport {
        let RunConfig {
            rounds,
            threads,
            mut observer,
            membership,
            dist,
            eps,
            confirm,
            invariant,
            bandwidth,
        } = cfg;
        assert_eq!(
            threads, 1,
            "FaultyExecution::drive is sequential; threads must be 1"
        );
        let start = self.round;
        let events_before = self.events;
        let mut distances = Vec::new();
        let mut entered: Option<u64> = None;
        let mut executed: u64 = 0;
        while executed < rounds {
            if let Some((membership, reinit)) = membership {
                self.apply_rejoins(membership, reinit);
            }
            let g = net.graph_ref(self.round + 1);
            if let Some((cap, ledger)) = bandwidth {
                ledger.charge_round(g.edge_count() as u64, cap.bits_per_edge());
            }
            match &mut observer {
                Some(o) => self.step_observed(&g, o),
                None => self.step(&g),
            }
            executed += 1;
            if let Some(dist) = &dist {
                let d = dist(&self.outputs());
                distances.push(d);
                // An output went NaN/inf: no later round can recover,
                // so seal the report with `diverged_at` instead of
                // burning the remaining budget.
                if !d.is_finite() {
                    break;
                }
                if let Some(confirm) = confirm {
                    if d <= eps {
                        let at = *entered.get_or_insert(self.round);
                        if self.round - at >= confirm {
                            break;
                        }
                    } else {
                        entered = None;
                    }
                }
            }
        }
        let last_fault_round = {
            let faults = if self.events.last_fault_round > start {
                self.events.last_fault_round
            } else {
                0
            };
            let churn = match membership {
                Some((membership, _)) => {
                    let churn = membership.last_transition();
                    // Clamp to the final round: transitions beyond the
                    // budget leave the trace unconverged, which is the
                    // honest verdict.
                    if churn > start {
                        churn.min(self.round)
                    } else {
                        0
                    }
                }
                None => 0,
            };
            faults.max(churn)
        };
        let mut events = self.events;
        events.dropped -= events_before.dropped;
        events.duplicated -= events_before.duplicated;
        events.bounced_to_crashed -= events_before.bounced_to_crashed;
        events.crashed_rounds -= events_before.crashed_rounds;
        let measured = dist.is_some();
        let mut report = CellReport::from_trace(
            start,
            distances,
            eps,
            last_fault_round,
            events,
            invariant.map(|f| f(&self.states)),
        );
        if !measured {
            report.rounds_run = executed;
        }
        if let Some(obs) = observer.as_mut() {
            if let Some(round) = report.converged_at {
                obs.on_converged(round, report.final_distance);
            }
        }
        report
    }

    /// Execute `rounds` rounds on a dynamic graph.
    #[deprecated(note = "use `drive(net, RunConfig::rounds(rounds))`")]
    pub fn run(&mut self, net: &dyn DynamicGraph, rounds: u64) {
        self.drive(net, RunConfig::rounds(rounds));
    }

    /// Execute `rounds` rounds while measuring distance to `target`
    /// under `metric` each round, and report recovery: the rounds needed
    /// after the last injected fault for every output to re-enter (and
    /// stay in) the ε-ball around the target.
    ///
    /// `invariant` optionally measures the deficit of a conserved
    /// quantity at the end of the run (0 means perfectly conserved) —
    /// for Push-Sum, the lost mass.
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(rounds).measure(metric, target, eps).invariant(f))`"
    )]
    pub fn run_with_recovery<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        rounds: u64,
        metric: &M,
        target: &A::Output,
        eps: f64,
        invariant: Option<Invariant<'_, A::State>>,
    ) -> CellReport {
        let mut cfg = RunConfig::rounds(rounds).measure(metric, target, eps);
        if let Some(f) = invariant {
            cfg = cfg.invariant(f);
        }
        self.drive(net, cfg)
    }

    /// Like [`FaultyExecution::run_with_recovery`], driving an
    /// [`Observer`](crate::telemetry::Observer) each round (fault drops
    /// fire `on_message_dropped`; `on_converged` fires once the report
    /// is sealed, if the outputs recovered).
    #[allow(clippy::too_many_arguments)] // mirrors run_with_recovery + observer
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(rounds).measure(metric, target, eps).invariant(f).observer(obs))`"
    )]
    pub fn run_with_recovery_observed<M: Metric<A::Output>, O: crate::telemetry::Observer<A>>(
        &mut self,
        net: &dyn DynamicGraph,
        rounds: u64,
        metric: &M,
        target: &A::Output,
        eps: f64,
        invariant: Option<Invariant<'_, A::State>>,
        obs: &mut O,
    ) -> CellReport {
        let mut cfg = RunConfig::rounds(rounds)
            .measure(metric, target, eps)
            .observer(obs);
        if let Some(f) = invariant {
            cfg = cfg.invariant(f);
        }
        self.drive(net, cfg)
    }

    /// Apply the membership's rejoin transitions for the upcoming round;
    /// see [`Execution::apply_rejoins`](crate::Execution::apply_rejoins)
    /// — identical semantics on the faulted executor.
    pub fn apply_rejoins(
        &mut self,
        membership: &crate::churn::Membership,
        reinit: &dyn Fn(usize, &A::State) -> A::State,
    ) -> Vec<usize> {
        let rejoining = membership.rejoining_at(self.round + 1);
        if membership.policy() == crate::churn::ReinjectPolicy::Reset {
            for &v in &rejoining {
                self.states[v] = reinit(v, &self.states[v]);
            }
        }
        rejoining
    }

    /// Like [`FaultyExecution::run_with_recovery`], under churn: each
    /// round first applies the membership's rejoin policy
    /// ([`FaultyExecution::apply_rejoins`]), then steps with the plan's
    /// message-level faults. The network is expected to mask absent
    /// agents (wrap it in [`crate::churn::ChurnMasked`]).
    ///
    /// Membership transitions count as faults for the recovery
    /// measurement: `last_fault_round` is extended to the last leave or
    /// rejoin inside the run, so `converged_at` only reports rounds
    /// after *both* the fault script and the churn script went quiet. A
    /// membership still churning when the budget ends never converges.
    #[allow(clippy::too_many_arguments)] // mirrors run_with_recovery + membership
    #[deprecated(
        note = "use `drive(net, RunConfig::rounds(rounds).membership(membership, reinit).measure(metric, target, eps).invariant(f))`"
    )]
    pub fn run_with_recovery_churned<M: Metric<A::Output>>(
        &mut self,
        net: &dyn DynamicGraph,
        membership: &crate::churn::Membership,
        reinit: &dyn Fn(usize, &A::State) -> A::State,
        rounds: u64,
        metric: &M,
        target: &A::Output,
        eps: f64,
        invariant: Option<Invariant<'_, A::State>>,
    ) -> CellReport {
        let mut cfg = RunConfig::rounds(rounds)
            .membership(membership, reinit)
            .measure(metric, target, eps);
        if let Some(f) = invariant {
            cfg = cfg.invariant(f);
        }
        self.drive(net, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{Broadcast, BroadcastAlgorithm};
    use crate::metric::DiscreteMetric;
    use kya_graph::{generators, StaticGraph};

    /// Max-flood gossip, used as a fault-oblivious probe.
    #[derive(Clone)]
    struct MaxFlood;
    impl BroadcastAlgorithm for MaxFlood {
        type State = u32;
        type Msg = u32;
        type Output = u32;
        fn message(&self, state: &u32) -> u32 {
            *state
        }
        fn transition(&self, state: &u32, inbox: &[u32]) -> u32 {
            inbox.iter().copied().max().unwrap_or(0).max(*state)
        }
        fn output(&self, state: &u32) -> u32 {
            *state
        }
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::new(7)
            .drop_links(0.25)
            .duplicate(0.5)
            .retry_within(3)
            .until(50)
            .crash(1, 5..9)
            .crash_stop(2, 20);
        let json = serde::to_json_string(&plan);
        let back: FaultPlan = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, plan);
    }

    #[test]
    fn coins_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).drop_links(0.5);
        let b = FaultPlan::new(1).drop_links(0.5);
        let c = FaultPlan::new(2).drop_links(0.5);
        let pattern = |p: &FaultPlan| -> Vec<bool> {
            (1..200u64)
                .flat_map(|t| (0..4).map(move |s| (t, s)))
                .map(|(t, s)| p.drops(t, s, (s + 1) % 4))
                .collect()
        };
        assert_eq!(pattern(&a), pattern(&b), "same seed, same pattern");
        assert_ne!(pattern(&a), pattern(&c), "different seed differs");
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let plan = FaultPlan::new(99).drop_links(0.3);
        let total = 10_000;
        let dropped = (1..=total).filter(|&t| plan.drops(t, 0, 1)).count() as f64;
        let rate = dropped / total as f64;
        assert!((rate - 0.3).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn horizon_silences_link_faults() {
        let plan = FaultPlan::new(8).drop_links(0.9).duplicate(0.9).until(25);
        assert!(
            (1..=25u64).any(|t| plan.drops(t, 0, 1)),
            "0.9 drop rate fires before the horizon"
        );
        for t in 26..200u64 {
            assert!(!plan.drops(t, 0, 1));
            assert!(!plan.duplicates(t, 0, 1));
        }
    }

    #[test]
    fn self_loops_never_drop() {
        let plan = FaultPlan::new(3).drop_links(0.99).duplicate(0.99);
        for t in 1..100 {
            assert!(!plan.drops(t, 2, 2));
            assert!(!plan.duplicates(t, 2, 2));
        }
    }

    #[test]
    fn quiescent_plan_is_identity_adversary() {
        let inner = StaticGraph::new(generators::random_strongly_connected(6, 4, 5));
        let faulty = FaultyNetwork::new(
            StaticGraph::new(generators::random_strongly_connected(6, 4, 5)),
            FaultPlan::new(0),
        );
        for t in 1..20 {
            let a = inner.graph(t).with_self_loops();
            let b = faulty.graph(t);
            assert_eq!(
                a.multiplicity_matrix(),
                b.multiplicity_matrix(),
                "round {t}"
            );
        }
        assert_eq!(faulty.diameter_hint(), inner.diameter_hint());
    }

    #[test]
    fn crashed_agent_keeps_only_self_loop() {
        let net = FaultyNetwork::new(
            StaticGraph::new(generators::complete(4)),
            FaultPlan::new(0).crash(2, 3..6),
        );
        let g = net.graph(4);
        assert!(g.has_self_loop(2));
        assert_eq!(g.outdegree(2), 1, "only the self-loop");
        assert_eq!(g.indegree(2), 1, "only the self-loop");
        // Outside the window the agent is fully restored.
        let g7 = net.graph(7);
        assert_eq!(g7.outdegree(2), 4);
    }

    #[test]
    fn retry_redelivers_within_bound() {
        let bound = 4;
        let plan = FaultPlan::new(11).drop_links(0.4).retry_within(bound);
        let net = FaultyNetwork::new(StaticGraph::new(generators::directed_ring(5)), plan.clone());
        for t in 1..200u64 {
            if plan.drops(t, 0, 1) {
                let redelivery = t + plan.retry_delay(t, 0, 1);
                assert!(redelivery <= t + bound);
                let g = net.graph(redelivery);
                assert!(
                    g.multiplicity(0, 1) >= 1,
                    "drop at {t} not redelivered at {redelivery}"
                );
            }
        }
    }

    #[test]
    fn duplication_doubles_the_edge() {
        let plan = FaultPlan::new(21).duplicate(0.9);
        let net = FaultyNetwork::new(StaticGraph::new(generators::directed_ring(3)), plan.clone());
        let mut saw_double = false;
        for t in 1..50 {
            let g = net.graph(t);
            for (src, dst) in [(0usize, 1usize), (1, 2), (2, 0)] {
                let expect = if plan.duplicates(t, src, dst) { 2 } else { 1 };
                assert_eq!(g.multiplicity(src, dst), expect);
                saw_double |= expect == 2;
            }
        }
        assert!(saw_double, "0.9 duplication never fired in 50 rounds");
    }

    #[test]
    fn faulty_execution_freezes_crashed_agents() {
        // Agent 1 crashes before the flood reaches it and recovers
        // later: while frozen its state must not change.
        let g = generators::directed_ring(4).with_self_loops();
        let plan = FaultPlan::new(0).crash(1, 1..6);
        let mut exec = FaultyExecution::new(Lossy(Broadcast(MaxFlood)), vec![9, 0, 0, 0], plan);
        for _ in 0..5 {
            exec.step(&g);
            assert_eq!(exec.states()[1], 0, "frozen during the window");
        }
        // After recovery the flood proceeds.
        for _ in 0..8 {
            exec.step(&g);
        }
        assert!(exec.outputs().iter().all(|&x| x == 9));
        assert!(exec.events().crashed_rounds >= 5);
        assert!(exec.events().bounced_to_crashed > 0);
    }

    #[test]
    fn lossy_wrapper_discards_bounces() {
        // Sum-accumulator whose reabsorb would matter: under Lossy the
        // lost message is simply gone.
        let g = generators::directed_ring(2).with_self_loops();
        let plan = FaultPlan::new(0).crash_stop(1, 1);
        let mut exec = FaultyExecution::new(Lossy(Broadcast(MaxFlood)), vec![5, 1], plan);
        exec.step(&g);
        assert_eq!(exec.states(), &[5, 1], "bounce discarded, states stable");
    }

    #[test]
    fn recovery_report_on_crash_recover() {
        // Flood a 4-ring; agent 1 is down for rounds 1..4, so the flood
        // completes only after it recovers.
        let net = StaticGraph::new(generators::directed_ring(4));
        let plan = FaultPlan::new(0).crash(1, 1..4);
        let mut exec = FaultyExecution::new(Lossy(Broadcast(MaxFlood)), vec![9, 0, 0, 0], plan);
        let report = exec.drive(
            &net,
            RunConfig::rounds(20).measure(&DiscreteMetric, &9u32, 0.0),
        );
        assert_eq!(report.last_fault_round, 3);
        assert_eq!(report.max_divergence_during_faults, 1.0);
        let recovered = report.converged_at.expect("flood completes");
        assert!(recovered > 3 && recovered <= 10, "recovered at {recovered}");
        assert_eq!(
            report.convergence_rounds,
            Some(recovered - 3),
            "measured from the last fault"
        );
        assert_eq!(*report.distances.last().unwrap(), 0.0);
        assert_eq!(report.final_distance, 0.0);
        assert_eq!(report.rounds_run, 20);
    }

    #[test]
    fn recovery_report_serializes() {
        let net = StaticGraph::new(generators::complete(3));
        let plan = FaultPlan::new(5).drop_links(0.2);
        let mut exec = FaultyExecution::new(Lossy(Broadcast(MaxFlood)), vec![1, 2, 3], plan);
        let report = exec.drive(
            &net,
            RunConfig::rounds(10).measure(&DiscreteMetric, &3u32, 0.0),
        );
        let json = serde::to_json_string(&report);
        let back: CellReport = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, report);
    }
}
