//! Synchronous execution of anonymous-network algorithms.
//!
//! This crate is the simulator on which every algorithm of the paper runs.
//! It realizes the computing model of §2 exactly:
//!
//! - computation proceeds in communication-closed **rounds**: in round `t`
//!   each agent sends, then receives, then transitions;
//! - agents are **deterministic, identical automata**: a single
//!   [`Algorithm`] value drives every agent, and nothing but the input
//!   value (and the messages received) can ever distinguish two agents;
//! - the network is a [`DynamicGraph`](kya_graph::DynamicGraph) with a
//!   self-loop at every vertex;
//! - what a sender may observe about its audience is fixed by the
//!   **communication model** (§2.2). The model distinction is enforced by
//!   the type system: a [`BroadcastAlgorithm`] produces its message from
//!   the local state alone, an [`IsotropicAlgorithm`] may additionally read
//!   its current outdegree, and only a full [`Algorithm`] (output port
//!   awareness) can address ports individually.
//!
//! Executions ([`Execution`]) expose per-round states and outputs, support
//! asynchronous starts via graph masking ([`adversary::AsyncStarts`],
//! following §5.3), and offer convergence detection in any metric
//! ([`metric`], §2.3).
//!
//! # Example: flooding the maximum (simple broadcast)
//!
//! ```
//! use kya_graph::{generators, StaticGraph};
//! use kya_runtime::{Broadcast, BroadcastAlgorithm, Execution, RunConfig};
//!
//! struct MaxFlood;
//! impl BroadcastAlgorithm for MaxFlood {
//!     type State = u32;
//!     type Msg = u32;
//!     type Output = u32;
//!     fn message(&self, state: &u32) -> u32 { *state }
//!     fn transition(&self, state: &u32, inbox: &[u32]) -> u32 {
//!         inbox.iter().copied().max().unwrap_or(*state).max(*state)
//!     }
//!     fn output(&self, state: &u32) -> u32 { *state }
//! }
//!
//! let net = StaticGraph::new(generators::directed_ring(5));
//! let mut exec = Execution::new(Broadcast(MaxFlood), vec![3, 1, 4, 1, 5]);
//! exec.drive(&net, RunConfig::rounds(4)); // diameter rounds suffice
//! assert!(exec.outputs().iter().all(|&x| x == 5));
//! ```
//!
//! Every run — plain, observed, measured, churned, parallel — goes
//! through [`Execution::drive`] with a [`RunConfig`] describing the
//! knobs; the legacy `run*` entry points survive as deprecated
//! wrappers. Large-`n` f64 simulations can instead use the flat
//! executor ([`flat::FlatExecution`]), which is bitwise identical to
//! the boxed path at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod algorithm;
pub mod bandwidth;
pub mod churn;
mod config;
mod execution;
pub mod faults;
pub mod flat;
pub mod metric;
pub mod probe;
pub mod report;
pub mod telemetry;
pub mod testing;

pub use algorithm::{
    Algorithm, Broadcast, BroadcastAlgorithm, CommunicationModel, Isotropic, IsotropicAlgorithm,
};
pub use bandwidth::{BandwidthCap, ByteLedger, MessageCodec};
pub use config::{Backend, FlatRunConfig, RunConfig};
pub use execution::Execution;
pub use flat::{exact_degree, DegreeOverflow, FlatAlgorithm, FlatExecution, MAX_EXACT_DEGREE};
pub use probe::{
    CountingProbe, FlatProbe, FlatProbeSummary, FlatRoundEvent, NullProbe, PhaseTimes,
    ShardCounters,
};
pub use report::CellReport;
pub use telemetry::{
    CountSummary, CountingObserver, Log2Histogram, NullObserver, Observer, ResidualObserver,
    RoundEvent, TraceSink,
};
