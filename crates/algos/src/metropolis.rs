//! Average consensus on symmetric dynamic networks (§5, first method).
//!
//! On bidirectional networks, averaging can use *doubly* stochastic
//! updates, which preserve the average of the agents' values at every
//! round:
//!
//! - [`Metropolis`]: weights `1 / (1 + max(d_i, d_j))` — the classical
//!   Metropolis–Hastings choice, requiring outdegree awareness (the
//!   sender attaches its degree to the message; its own degree is the
//!   inbox size minus the self-loop);
//! - [`LazyMetropolis`]: weights `1 / (2 max(d_i, d_j))` (Olshevsky),
//!   same requirements, better worst-case rate on paths;
//! - [`FixedWeight`]: weights `1/N` for a known bound `N >= n` — this
//!   needs *no* outdegree awareness at all (the paper's \[24\] thesis
//!   variant): it is a pure broadcast algorithm on symmetric networks,
//!   witnessing the "bound known + symmetric" cell of Table 2.
//!
//! All three tolerate asynchronous starts and use no persistent memory.
//! None is self-stabilizing. Convergence on any symmetric dynamic graph
//! with finite dynamic diameter follows from Moreau's theorem, quadratic
//! rates from \[10\].

use kya_runtime::{BroadcastAlgorithm, FlatAlgorithm, IsotropicAlgorithm};

/// Metropolis averaging: `x_i += Σ_j (x_j - x_i) / (1 + max(d_i, d_j))`
/// over distinct neighbors `j` (the self term vanishes, so the inbox can
/// be processed uniformly).
///
/// Degrees count *neighbors* (not the self-loop). Intended for simple
/// bidirectional graphs; parallel edges would double-count neighbors.
#[derive(Clone, Copy, Debug, Default)]
pub struct Metropolis;

/// Message of the Metropolis family: the sender's value and degree.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeTagged {
    /// Sender's current output value.
    pub x: f64,
    /// Sender's neighbor count this round (outdegree minus self-loop).
    pub degree: usize,
}

fn metropolis_step(x: f64, inbox: &[DegreeTagged], own_degree: usize, lazy: bool) -> f64 {
    let mut acc = x;
    for m in inbox {
        let dmax = m.degree.max(own_degree) as f64;
        let w = if lazy {
            1.0 / (2.0 * dmax.max(0.5))
        } else {
            1.0 / (1.0 + dmax)
        };
        acc += w * (m.x - x);
    }
    acc
}

impl IsotropicAlgorithm for Metropolis {
    type State = f64;
    type Msg = DegreeTagged;
    type Output = f64;

    fn message(&self, state: &f64, outdegree: usize) -> DegreeTagged {
        DegreeTagged {
            x: *state,
            degree: outdegree.saturating_sub(1),
        }
    }

    fn transition(&self, state: &f64, inbox: &[DegreeTagged]) -> f64 {
        // Own degree = inbox size minus the self-loop message. The own
        // message contributes (x - x) = 0, so it needs no special-casing.
        metropolis_step(*state, inbox, inbox.len().saturating_sub(1), false)
    }

    fn output(&self, state: &f64) -> f64 {
        *state
    }
}

/// The flat (struct-of-arrays) twin of the boxed [`IsotropicAlgorithm`]
/// impl: one state lane `[x]`, message lanes `[x, degree]` with the
/// degree carried as an exactly-representable f64 (degrees < 2^53, so
/// the f64 `max` agrees bitwise with the boxed usize `max`-then-cast).
impl FlatAlgorithm for Metropolis {
    const STATE_LANES: usize = 1;
    const MSG_LANES: usize = 2;

    fn message(&self, state: &[f64], outdegree: usize, msg: &mut [f64]) {
        msg[0] = state[0];
        msg[1] = outdegree.saturating_sub(1) as f64;
    }

    fn transition(&self, state: &[f64], inbox: &[f64], next: &mut [f64]) {
        let x = state[0];
        let own = (inbox.len() / 2).saturating_sub(1) as f64;
        let mut acc = x;
        for m in inbox.chunks_exact(2) {
            let dmax = m[1].max(own);
            let w = 1.0 / (1.0 + dmax);
            acc += w * (m[0] - x);
        }
        next[0] = acc;
    }

    fn output(&self, state: &[f64]) -> f64 {
        state[0]
    }
}

/// Lazy Metropolis averaging (Olshevsky): weights `1 / (2 max(d_i, d_j))`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LazyMetropolis;

impl IsotropicAlgorithm for LazyMetropolis {
    type State = f64;
    type Msg = DegreeTagged;
    type Output = f64;

    fn message(&self, state: &f64, outdegree: usize) -> DegreeTagged {
        DegreeTagged {
            x: *state,
            degree: outdegree.saturating_sub(1),
        }
    }

    fn transition(&self, state: &f64, inbox: &[DegreeTagged]) -> f64 {
        metropolis_step(*state, inbox, inbox.len().saturating_sub(1), true)
    }

    fn output(&self, state: &f64) -> f64 {
        *state
    }
}

/// Fixed-weight averaging with a known bound `N >= n`:
/// `x_i += Σ_j (x_j - x_i) / N`.
///
/// The update matrix is symmetric and doubly stochastic whenever every
/// degree is below `N`, which `N >= n` guarantees — so the average is
/// preserved and consensus follows on any symmetric dynamic graph with
/// finite dynamic diameter. Crucially, this is a **pure broadcast**
/// algorithm: the sender needs no knowledge of its audience; only the
/// global bound `N` is required.
#[derive(Clone, Copy, Debug)]
pub struct FixedWeight {
    /// The known bound on the network size.
    pub bound: usize,
}

impl FixedWeight {
    /// Averaging with bound `n_bound >= n >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n_bound == 0`.
    pub fn new(n_bound: usize) -> FixedWeight {
        assert!(n_bound >= 1, "bound must be positive");
        FixedWeight { bound: n_bound }
    }
}

impl BroadcastAlgorithm for FixedWeight {
    type State = f64;
    type Msg = f64;
    type Output = f64;

    fn message(&self, state: &f64) -> f64 {
        *state
    }

    fn transition(&self, state: &f64, inbox: &[f64]) -> f64 {
        let w = 1.0 / self.bound as f64;
        let mut acc = *state;
        for &xj in inbox {
            acc += w * (xj - state);
        }
        acc
    }

    fn output(&self, state: &f64) -> f64 {
        *state
    }
}

/// Metropolis on **static symmetric networks under pure broadcast**:
/// §2.2 observes that in a static bidirectional network, an agent learns
/// its outdegree at the end of round one (it equals the number of
/// messages received minus the self-loop). This algorithm makes that
/// observation executable: a one-round learning phase, then Metropolis
/// proper, with no outdegree awareness in the sending function at all.
#[derive(Clone, Copy, Debug, Default)]
pub struct StaticSymmetricMetropolis;

/// State of [`StaticSymmetricMetropolis`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LearnedState {
    /// Round 1 has not completed: the degree is unknown.
    Learning {
        /// The value to average.
        x: f64,
    },
    /// Degree learned; running Metropolis.
    Running {
        /// The current estimate.
        x: f64,
        /// The learned neighbor count (constant in a static network).
        degree: usize,
    },
}

impl LearnedState {
    /// Initial states from values.
    pub fn initial(values: &[f64]) -> Vec<LearnedState> {
        values
            .iter()
            .map(|&x| LearnedState::Learning { x })
            .collect()
    }

    fn x(&self) -> f64 {
        match *self {
            LearnedState::Learning { x } | LearnedState::Running { x, .. } => x,
        }
    }
}

/// Broadcast message: the value, plus the sender's degree once learned
/// (`None` during round one — receivers skip the update that round).
pub type LearnedMsg = (f64, Option<usize>);

impl BroadcastAlgorithm for StaticSymmetricMetropolis {
    type State = LearnedState;
    type Msg = LearnedMsg;
    type Output = f64;

    fn message(&self, state: &LearnedState) -> LearnedMsg {
        match *state {
            LearnedState::Learning { x } => (x, None),
            LearnedState::Running { x, degree } => (x, Some(degree)),
        }
    }

    fn transition(&self, state: &LearnedState, inbox: &[LearnedMsg]) -> LearnedState {
        // Static symmetric network: #neighbors = inbox - self-loop.
        let degree = inbox.len().saturating_sub(1);
        let x = state.x();
        // Until every neighbor has announced a degree, hold still (this
        // happens exactly during round one).
        if inbox.iter().any(|(_, d)| d.is_none()) {
            return LearnedState::Running { x, degree };
        }
        let mut acc = x;
        for &(xj, dj) in inbox {
            let dmax = dj.expect("checked above").max(degree) as f64;
            acc += (xj - x) / (1.0 + dmax);
        }
        LearnedState::Running { x: acc, degree }
    }

    fn output(&self, state: &LearnedState) -> f64 {
        state.x()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_graph::{generators, DynamicGraph, RandomDynamicGraph, StaticGraph};
    use kya_runtime::adversary::AsyncStarts;
    use kya_runtime::{Broadcast, Execution, Isotropic, RunConfig};

    fn assert_converges_to_average<A>(
        algo: A,
        net: &dyn kya_graph::DynamicGraph,
        values: &[f64],
        rounds: u64,
        tol: f64,
    ) where
        A: kya_runtime::Algorithm<State = f64, Output = f64> + Sync,
        A::Msg: Send + Sync,
    {
        let avg = values.iter().sum::<f64>() / values.len() as f64;
        let mut exec = Execution::new(algo, values.to_vec());
        exec.drive(net, RunConfig::rounds(rounds));
        for x in exec.outputs() {
            assert!((x - avg).abs() < tol, "{x} != {avg}");
        }
        // Average preservation (doubly stochastic updates).
        let mean_now: f64 = exec.outputs().iter().sum::<f64>() / values.len() as f64;
        assert!((mean_now - avg).abs() < 1e-9);
    }

    #[test]
    fn metropolis_static_ring() {
        let values = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        let net = StaticGraph::new(generators::bidirectional_ring(6));
        assert_converges_to_average(Isotropic(Metropolis), &net, &values, 500, 1e-8);
    }

    #[test]
    fn lazy_metropolis_static_path() {
        let values = [10.0, 0.0, 0.0, 0.0];
        let net = StaticGraph::new(generators::bidirectional_path(4));
        assert_converges_to_average(Isotropic(LazyMetropolis), &net, &values, 800, 1e-8);
    }

    #[test]
    fn fixed_weight_needs_only_a_bound() {
        let values = [3.0, -1.0, 7.0, 5.0, 2.0];
        let net = StaticGraph::new(generators::star(5));
        assert_converges_to_average(Broadcast(FixedWeight::new(8)), &net, &values, 900, 1e-8);
    }

    #[test]
    fn metropolis_on_dynamic_symmetric() {
        let net = RandomDynamicGraph::symmetric(7, 3, 13);
        let values: Vec<f64> = (0..7).map(|i| (i * i) as f64).collect();
        assert_converges_to_average(Isotropic(Metropolis), &net, &values, 600, 1e-7);
    }

    #[test]
    fn fixed_weight_on_dynamic_symmetric_with_async_starts() {
        let inner = RandomDynamicGraph::symmetric(6, 2, 5);
        let net = AsyncStarts::new(inner, vec![1, 5, 2, 3, 8, 1]);
        let values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_converges_to_average(Broadcast(FixedWeight::new(6)), &net, &values, 1200, 1e-7);
    }

    #[test]
    fn metropolis_average_is_invariant_each_round() {
        let net = StaticGraph::new(generators::hypercube(3));
        let values: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let avg: f64 = values.iter().sum::<f64>() / 8.0;
        let mut exec = Execution::new(Isotropic(Metropolis), values);
        for _ in 0..20 {
            let g = net.graph(exec.round() + 1);
            exec.step(&g);
            let mean: f64 = exec.outputs().iter().sum::<f64>() / 8.0;
            assert!((mean - avg).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_rejected() {
        let _ = FixedWeight::new(0);
    }

    #[test]
    fn static_symmetric_metropolis_is_pure_broadcast() {
        // No outdegree at send time — yet it averages on static
        // bidirectional networks (the §2.2 degree-learning remark).
        let values = [10.0, 4.0, 7.0, 7.0, 2.0];
        let avg = 6.0;
        for g in [
            generators::star(5),
            generators::bidirectional_ring(5),
            generators::random_bidirectional_connected(5, 2, 9),
        ] {
            let net = StaticGraph::new(g);
            let mut exec = Execution::new(
                Broadcast(StaticSymmetricMetropolis),
                LearnedState::initial(&values),
            );
            exec.drive(&net, RunConfig::rounds(800));
            for x in exec.outputs() {
                assert!((x - avg).abs() < 1e-8, "{x}");
            }
        }
    }

    #[test]
    fn static_symmetric_metropolis_matches_isotropic_metropolis() {
        // After the one-round learning phase, the trajectories coincide
        // with the outdegree-aware Metropolis started one round late.
        let values = [1.0, 2.0, 3.0, 4.0];
        let g = generators::bidirectional_ring(4);
        let net = StaticGraph::new(g);
        let mut learned = Execution::new(
            Broadcast(StaticSymmetricMetropolis),
            LearnedState::initial(&values),
        );
        learned.drive(&net, RunConfig::rounds(21)); // 1 learning round + 20 metropolis rounds
        let mut aware = Execution::new(Isotropic(Metropolis), values.to_vec());
        aware.drive(&net, RunConfig::rounds(20));
        for (a, b) in learned.outputs().iter().zip(aware.outputs()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn averaging_on_population_protocol_matchings() {
        // The §2 footnote-2 network class: pairwise interactions. The
        // fixed-weight rule keeps the average invariant and converges.
        let n = 8;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let avg = 3.5;
        let net = kya_graph::PairwiseMatching::new(n, 4, 21);
        let mut exec = Execution::new(Broadcast(FixedWeight::new(n)), values);
        exec.drive(&net, RunConfig::rounds(4000));
        for x in exec.outputs() {
            assert!((x - avg).abs() < 1e-7, "{x}");
        }
    }
}
