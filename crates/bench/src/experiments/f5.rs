//! **F5** — the §6 open regime: a geometric communication schedule
//! (gaps 2, 4, 8, …) that is never permanently split but has no finite
//! dynamic diameter. Cells run the full horizon and sample the
//! worst-case error at exponentially spaced checkpoints from the
//! round-by-round trace `run_until` records.

use super::{dynamic_net, Experiment};
use kya_algos::metropolis::{FixedWeight, Metropolis};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, SpecError};
use kya_runtime::metric::EuclideanMetric;
use kya_runtime::{Broadcast, CellReport, Execution, Isotropic, RunConfig};

/// The F5 registry entry.
pub const EXPERIMENT: Experiment = Experiment {
    name: "f5",
    about: "weak connectivity: geometric schedules, no finite dynamic diameter (open question)",
    extra_flags: &[],
    build,
    cell,
    render,
};

const CHECKPOINTS: [u64; 8] = [7, 15, 31, 63, 127, 255, 511, 1023];

fn build(args: &Args) -> Result<Vec<ExperimentSpec>, SpecError> {
    let sym = ExperimentSpec::new("f5_symmetric")
        .topologies(["sparse:2:1023:dyn:symmetric:{n}:3:47"])
        .sizes([10])
        .algorithms(["fixed-1n", "metropolis"])
        .rounds(1023)
        .with_args(args)?;
    let dir = ExperimentSpec::new("f5_directed")
        .topologies(["sparse:2:1023:dyn:directed:{n}:4:48"])
        .sizes([10])
        .algorithms(["pushsum"])
        .rounds(1023)
        .with_args(args)?;
    Ok(vec![sym, dir])
}

fn cell(ctx: &CellCtx) -> CellOutcome {
    let n = ctx.cell.n;
    let values: Vec<f64> = (0..n).map(|i| ((i * 11) % 17) as f64).collect();
    let target = values.iter().sum::<f64>() / n as f64;
    let net = dynamic_net(&ctx.cell.topology).expect("known dynamic label");
    let net = &*net;
    let m = &EuclideanMetric;
    let report: CellReport = match ctx.cell.algorithm.as_str() {
        "pushsum" => Execution::new(Isotropic(PushSum), PushSumState::averaging(&values)).drive(
            net,
            RunConfig::rounds(ctx.rounds()).measure(m, &target, ctx.eps()),
        ),
        "metropolis" => Execution::new(Isotropic(Metropolis), values.clone()).drive(
            net,
            RunConfig::rounds(ctx.rounds()).measure(m, &target, ctx.eps()),
        ),
        "fixed-1n" => Execution::new(Broadcast(FixedWeight::new(n)), values.clone()).drive(
            net,
            RunConfig::rounds(ctx.rounds()).measure(m, &target, ctx.eps()),
        ),
        other => panic!("unknown f5 algorithm `{other}`"),
    };
    // Worst-case error at each scheduled checkpoint, read off the trace.
    let mut out = CellOutcome::new();
    for &cp in &CHECKPOINTS {
        if let Some(&err) = report.distances.get(cp as usize - 1) {
            out = out.detail(format!("t{cp}"), err);
        }
    }
    out.report(report.without_trace())
}

fn render(sink: &ResultSink) -> String {
    let mut out = String::new();
    let name = sink.records().first().map(|r| r.experiment.as_str());
    out.push_str(match name {
        Some("f5_directed") => "F5. directed topologies at scheduled rounds (open question):\n",
        _ => "F5. symmetric topologies at scheduled rounds (Moreau applies):\n",
    });
    for r in sink.records() {
        out.push_str(&format!("{:>14}:", r.algorithm));
        for &cp in &CHECKPOINTS {
            if let Some(serde::Value::Float(err)) = r.detail(&format!("t{cp}")) {
                out.push_str(&format!("  t={cp}: {err:.1e}"));
            }
        }
        out.push('\n');
    }
    if name == Some("f5_directed") {
        out.push_str(
            "\nReading: every scheduled communication round still contracts \
             the disagreement, so all three algorithms keep converging — but \
             per wall-clock round the rate collapses with the growing gaps. \
             Positive empirical evidence for (not a proof of) the §6 open \
             question.\n",
        );
    }
    out
}
