//! Distributed minimum-base computation (Boldi–Vigna style, §3.2/§4.2).
//!
//! Each agent grows its view by one level per round and extracts a
//! candidate base [`candidate_base`](crate::views::candidate_base()) from
//! it. From round `n + D` onward the candidate is guaranteed to be the
//! minimum base of the (model-appropriately valued) network:
//!
//! - [`MinBaseBroadcast`] builds plain views — the right object for the
//!   symmetric model, where the base alone supports the ratio solver of
//!   eq. (4);
//! - [`MinBaseOutdegree`] annotates every child edge with the sender's
//!   outdegree, so the candidate is the base of the valued graph `G_od`
//!   and carries the `b_i` coefficients of eq. (1);
//! - [`MinBasePorts`] annotates with output-port labels, producing the
//!   base of the colored graph `G_op` whose fibres all have equal
//!   cardinality (eq. 3).
//!
//! A memory cap (the `finite-state` flavour of §3.2, here realized as
//! view-depth truncation) can be layered on any of the three with
//! [`DepthCapped`]: correctness is retained whenever the cap is at least
//! the stabilization depth, and the cap bounds the state space.

use crate::views::{candidate_base, CandidateBase, ClassMode, View};
use kya_runtime::{Algorithm, BroadcastAlgorithm, IsotropicAlgorithm};

/// Agent state for all distributed min-base algorithms: the input value
/// and the current view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ViewState {
    /// The agent's (encoded) input value.
    pub value: u64,
    /// The view accumulated so far (depth = rounds executed).
    pub view: View,
}

impl ViewState {
    /// Initial state for input `value`.
    pub fn new(value: u64) -> ViewState {
        ViewState {
            value,
            view: View::leaf(value),
        }
    }

    /// Initial states from a slice of inputs.
    pub fn initial(values: &[u64]) -> Vec<ViewState> {
        values.iter().map(|&v| ViewState::new(v)).collect()
    }
}

/// Distributed min-base under **simple broadcast / symmetric
/// communications**: messages are bare views.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinBaseBroadcast;

impl BroadcastAlgorithm for MinBaseBroadcast {
    type State = ViewState;
    type Msg = View;
    type Output = Option<CandidateBase>;

    fn message(&self, state: &ViewState) -> View {
        state.view.clone()
    }

    fn transition(&self, state: &ViewState, inbox: &[View]) -> ViewState {
        let children = inbox.iter().map(|v| (0u64, v.clone())).collect();
        ViewState {
            value: state.value,
            view: View::node(state.value, children),
        }
    }

    fn output(&self, state: &ViewState) -> Option<CandidateBase> {
        candidate_base(&state.view, ClassMode::Broadcast)
    }
}

/// Distributed min-base under **outdegree awareness**: each message
/// carries `(sender outdegree, view)`, so views become views of the
/// valued graph `G_od` and the candidate base knows every fibre's
/// outdegree (the `b_i` of eq. 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinBaseOutdegree;

impl IsotropicAlgorithm for MinBaseOutdegree {
    type State = ViewState;
    type Msg = (u64, View);
    type Output = Option<CandidateBase>;

    fn message(&self, state: &ViewState, outdegree: usize) -> (u64, View) {
        (outdegree as u64, state.view.clone())
    }

    fn transition(&self, state: &ViewState, inbox: &[(u64, View)]) -> ViewState {
        let children = inbox.iter().map(|(d, v)| (*d, v.clone())).collect();
        ViewState {
            value: state.value,
            view: View::node(state.value, children),
        }
    }

    fn output(&self, state: &ViewState) -> Option<CandidateBase> {
        candidate_base(&state.view, ClassMode::OutdegreePairs)
    }
}

/// Distributed min-base under **output port awareness**: the message sent
/// on port `ℓ` carries `ℓ` itself, so receivers accumulate port-colored
/// views (views of `G_op`).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinBasePorts;

impl Algorithm for MinBasePorts {
    type State = ViewState;
    type Msg = (u64, View);
    type Output = Option<CandidateBase>;

    fn send(&self, state: &ViewState, outdegree: usize) -> Vec<(u64, View)> {
        (0..outdegree as u64)
            .map(|port| (port, state.view.clone()))
            .collect()
    }

    fn transition(&self, state: &ViewState, inbox: &[(u64, View)]) -> ViewState {
        let children = inbox.iter().map(|(p, v)| (*p, v.clone())).collect();
        ViewState {
            value: state.value,
            view: View::node(state.value, children),
        }
    }

    fn output(&self, state: &ViewState) -> Option<CandidateBase> {
        candidate_base(&state.view, ClassMode::PortColored)
    }
}

/// Memory-capped wrapper: after each transition the view is truncated to
/// the deepest `cap` levels, bounding the agent's state space — the
/// finite-state concession of §3.2/§4.2. Correct whenever
/// `cap >= stabilization depth + 1`; the F3 experiment sweeps the cap to
/// chart the correctness/memory trade-off.
#[derive(Clone, Copy, Debug)]
pub struct DepthCapped<A> {
    inner: A,
    cap: usize,
}

impl<A> DepthCapped<A> {
    /// Cap views of `inner` at depth `cap >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn new(inner: A, cap: usize) -> DepthCapped<A> {
        assert!(cap >= 1, "cap must be at least one level");
        DepthCapped { inner, cap }
    }

    /// The configured depth cap.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// Truncating *from the top* is what a bounded agent can actually do: it
/// keeps the `cap` most recent levels by dropping leaves. Dropping the
/// deepest level of every subtree is exactly `truncate(depth - 1)`
/// applied before storing.
fn cap_view(view: View, cap: usize) -> View {
    if view.depth() > cap {
        view.truncate(cap)
    } else {
        view
    }
}

impl<A> Algorithm for DepthCapped<A>
where
    A: Algorithm<State = ViewState>,
{
    type State = ViewState;
    type Msg = A::Msg;
    type Output = A::Output;

    // Inconsistency-triggered reset (fault recovery): the root of an
    // agent's view must be its own input value — every transition
    // rebuilds the view as `node(value, ...)`, so a mismatch proves the
    // state was corrupted from outside (bit flip, restored checkpoint,
    // adversarial injection). A bounded agent cannot repair a corrupted
    // tree, but it can always rebuild from its input: behave as if the
    // view were the round-0 leaf. The crucial site is `send` — that is
    // where a corrupted view would otherwise enter the network and
    // linger in everyone's deep levels for up to `cap` rounds; resetting
    // there confines detectable corruption to its own agent and one
    // round. Consistent-looking corruption is still flushed by
    // truncation within `cap` rounds (the self-stabilization route).
    fn send(&self, state: &ViewState, outdegree: usize) -> Vec<A::Msg> {
        if state.view.value() != state.value {
            let reset = ViewState::new(state.value);
            self.inner.send(&reset, outdegree)
        } else {
            self.inner.send(state, outdegree)
        }
    }

    fn transition(&self, state: &ViewState, inbox: &[A::Msg]) -> ViewState {
        let reset;
        let state = if state.view.value() != state.value {
            reset = ViewState::new(state.value);
            &reset
        } else {
            state
        };
        let next = self.inner.transition(state, inbox);
        ViewState {
            value: next.value,
            view: cap_view(next.view, self.cap),
        }
    }

    fn output(&self, state: &ViewState) -> A::Output {
        self.inner.output(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kya_fibration::iso::are_isomorphic;
    use kya_fibration::MinimumBase;
    use kya_graph::{generators, StaticGraph};
    use kya_runtime::RunConfig;
    use kya_runtime::{Broadcast, Execution, Isotropic};

    fn broadcast_candidates(
        g: &kya_graph::Digraph,
        values: &[u64],
        rounds: u64,
    ) -> Vec<Option<CandidateBase>> {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(MinBaseBroadcast), ViewState::initial(values));
        exec.drive(&net, RunConfig::rounds(rounds));
        exec.outputs()
    }

    #[test]
    fn broadcast_min_base_matches_centralized() {
        let cases: Vec<(kya_graph::Digraph, Vec<u64>)> = vec![
            (generators::directed_ring(6), vec![1, 2, 1, 2, 1, 2]),
            (generators::star(5), vec![0; 5]),
            (
                generators::random_strongly_connected(8, 6, 3),
                vec![0, 1, 0, 1, 0, 1, 0, 1],
            ),
        ];
        for (g, values) in cases {
            let n = g.n();
            let d = kya_graph::connectivity::diameter(&g.with_self_loops()).unwrap();
            let rounds = (n + d + 2) as u64;
            let outs = broadcast_candidates(&g, &values, rounds);
            let reference = MinimumBase::compute(&g.with_self_loops(), &values);
            for (agent, out) in outs.iter().enumerate() {
                let cb = out.as_ref().expect("stabilized by n + D");
                assert!(
                    are_isomorphic(
                        &cb.graph,
                        &cb.values,
                        reference.base(),
                        reference.base_values()
                    )
                    .is_some(),
                    "agent {agent}: candidate != centralized base"
                );
            }
        }
    }

    #[test]
    fn outdegree_min_base_carries_outdegrees() {
        let g = generators::star(4);
        let closed = g.with_self_loops();
        let net = StaticGraph::new(g);
        let mut exec = Execution::new(
            Isotropic(MinBaseOutdegree),
            ViewState::initial(&[0, 0, 0, 0]),
        );
        exec.drive(&net, RunConfig::rounds(10));
        for out in exec.outputs() {
            let cb = out.expect("stabilized");
            assert_eq!(cb.graph.n(), 2);
            let mut pairs: Vec<(u64, u64)> = cb
                .annotations
                .iter()
                .zip(&cb.values)
                .map(|(&a, &v)| (a, v))
                .collect();
            pairs.sort_unstable();
            // Leaf outdegree 2 (center + self), center outdegree 4.
            assert_eq!(pairs, vec![(2, 0), (4, 0)]);
        }
        let _ = closed;
    }

    #[test]
    fn port_min_base_on_port_symmetric_ring() {
        // Directed ring where each vertex sends port 0 on the ring edge
        // and port 1 on the self-loop: rotational symmetry preserved.
        let n = 5;
        let mut g = kya_graph::Digraph::new(n);
        for i in 0..n {
            g.add_edge_with_port(i, (i + 1) % n, Some(0));
            g.add_edge_with_port(i, i, Some(1));
        }
        let net = StaticGraph::new(g);
        let mut exec = Execution::new(MinBasePorts, ViewState::initial(&vec![7; n]));
        exec.drive(&net, RunConfig::rounds((2 * n) as u64));
        for out in exec.outputs() {
            let cb = out.expect("stabilized");
            assert_eq!(cb.graph.n(), 1, "port-symmetric ring collapses");
            // Two loops with distinct ports.
            let mut ports: Vec<Option<u32>> = cb.graph.edges().iter().map(|e| e.port).collect();
            ports.sort_unstable();
            assert_eq!(ports, vec![Some(0), Some(1)]);
        }
    }

    #[test]
    fn depth_cap_preserves_correctness_when_generous() {
        let g = generators::directed_ring(6);
        let values = [1u64, 2, 1, 2, 1, 2];
        let net = StaticGraph::new(g.clone());
        let capped = DepthCapped::new(Broadcast(MinBaseBroadcast), 16);
        let mut exec = Execution::new(capped, ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(20));
        let reference = MinimumBase::compute(&g.with_self_loops(), &values);
        for out in exec.outputs() {
            let cb = out.expect("stabilized");
            assert!(are_isomorphic(
                &cb.graph,
                &cb.values,
                reference.base(),
                reference.base_values()
            )
            .is_some());
        }
        // States stay bounded: view depth never exceeds the cap.
        assert!(exec.states().iter().all(|s| s.view.depth() <= 16));
    }

    #[test]
    fn depth_cap_too_small_blinds_agents() {
        // With cap 1 the agents only ever see depth-1 views: candidate
        // extraction needs depth >= 2, so outputs stay None forever.
        let g = generators::directed_ring(4);
        let net = StaticGraph::new(g);
        let capped = DepthCapped::new(Broadcast(MinBaseBroadcast), 1);
        let mut exec = Execution::new(capped, ViewState::initial(&[0, 1, 2, 3]));
        exec.drive(&net, RunConfig::rounds(10));
        assert!(exec.outputs().iter().all(Option::is_none));
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn zero_cap_rejected() {
        let _ = DepthCapped::new(Broadcast(MinBaseBroadcast), 0);
    }

    #[test]
    fn depth_capped_min_base_is_self_stabilizing() {
        // §3.2: Boldi & Vigna's algorithm is self-stabilizing. Our
        // depth-capped realization recovers from adversarially corrupted
        // views: garbage at depth d is pushed one level deeper each
        // round and truncated away once it passes the cap, so after
        // `cap` rounds the state is exactly what a clean run produces.
        use kya_runtime::testing::{check_self_stabilization, SelfStabOutcome};

        let g = generators::directed_ring(6);
        let values = [1u64, 2, 1, 2, 1, 2];
        let cap = 16;
        let net = StaticGraph::new(g.clone());

        // Reference: the clean run's stabilized candidate.
        let clean = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
        let mut reference = Execution::new(clean, ViewState::initial(&values));
        reference.drive(&net, RunConfig::rounds(40));
        let truth = reference.outputs()[0].clone().expect("stabilized");

        // Corrupted start: every agent begins with a *bogus* deep view
        // (wrong values, wrong shape), but its genuine input value.
        let corrupted: Vec<ViewState> = values
            .iter()
            .map(|&v| {
                let garbage = crate::views::View::node(
                    999,
                    vec![(
                        7,
                        crate::views::View::node(123, vec![(0, crate::views::View::leaf(55))]),
                    )],
                );
                ViewState {
                    value: v,
                    view: garbage,
                }
            })
            .collect();
        let algo = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
        let outcome = check_self_stabilization(algo, &net, corrupted, |_| Some(truth.clone()), 60);
        match outcome {
            SelfStabOutcome::Stabilized { at_round } => {
                assert!(
                    at_round <= (cap + g.n() + 6) as u64,
                    "recovered at {at_round}"
                );
            }
            SelfStabOutcome::Diverged { .. } => panic!("did not self-stabilize"),
        }
    }

    #[test]
    fn inconsistent_view_triggers_immediate_reset() {
        // A corrupted view whose root disagrees with the agent's input
        // is *detectable*, and DepthCapped flushes it in one transition
        // instead of waiting for truncation to push it past the cap.
        // With a generous cap (64) the truncation route would need ~64
        // rounds; the reset route recovers in n + D + slack rounds.
        use kya_runtime::testing::{check_self_stabilization, SelfStabOutcome};

        let g = generators::directed_ring(6);
        let values = [1u64, 2, 1, 2, 1, 2];
        let cap = 64;
        let net = StaticGraph::new(g.clone());

        let clean = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
        let mut reference = Execution::new(clean, ViewState::initial(&values));
        reference.drive(&net, RunConfig::rounds(40));
        let truth = reference.outputs()[0].clone().expect("stabilized");

        // Deep garbage with a mismatched root (999 != input value).
        let corrupted: Vec<ViewState> = values
            .iter()
            .map(|&v| ViewState {
                value: v,
                view: crate::views::View::node(
                    999,
                    vec![(
                        3,
                        crate::views::View::node(998, vec![(0, crate::views::View::leaf(997))]),
                    )],
                ),
            })
            .collect();
        let algo = DepthCapped::new(Broadcast(MinBaseBroadcast), cap);
        let outcome = check_self_stabilization(algo, &net, corrupted, |_| Some(truth.clone()), 40);
        match outcome {
            SelfStabOutcome::Stabilized { at_round } => {
                assert!(
                    at_round <= (g.n() + 6 + 4) as u64,
                    "reset should beat the {cap}-round truncation flush, got {at_round}"
                );
            }
            SelfStabOutcome::Diverged { .. } => panic!("did not recover"),
        }
    }

    #[test]
    fn uncapped_min_base_is_not_self_stabilizing() {
        // Without the cap, corrupted deep levels are never forgotten:
        // the candidate extraction keeps seeing ghost classes at the
        // oldest levels and the output can stay wrong forever. This is
        // why the paper needs the finite-state variant for
        // self-stabilization.
        let g = generators::directed_ring(6);
        let values = [1u64, 2, 1, 2, 1, 2];
        let net = StaticGraph::new(g.clone());
        let mut reference =
            Execution::new(Broadcast(MinBaseBroadcast), ViewState::initial(&values));
        reference.drive(&net, RunConfig::rounds(40));
        let truth = reference.outputs()[0].clone().expect("stabilized");

        // Corrupt with a view that mimics a *different* network: an
        // extra phantom value 77.
        let corrupted: Vec<ViewState> = values
            .iter()
            .map(|&v| ViewState {
                value: v,
                view: crate::views::View::leaf(77),
            })
            .collect();
        let mut exec = Execution::new(Broadcast(MinBaseBroadcast), corrupted);
        exec.drive(&net, RunConfig::rounds(40));
        let polluted = exec.outputs()[0].clone();
        // The phantom value survives at the deepest levels and keeps the
        // candidate different from the clean one.
        assert_ne!(polluted, Some(truth));
    }
}
