//! Property tests for the two graph-masking adversaries: asynchronous
//! starts (§5.3) and scripted faults (F6). Both are `DynamicGraph`
//! wrappers, and both must preserve the model's structural invariants
//! for *every* seed, topology, and round — exactly the kind of claim
//! property testing is for.

use kya_graph::{generators, DynamicGraph, StaticGraph};
use kya_runtime::adversary::AsyncStarts;
use kya_runtime::faults::{FaultPlan, FaultyNetwork};
use proptest::prelude::*;

fn random_net(n: usize, extra: usize, seed: u64) -> StaticGraph {
    StaticGraph::new(generators::random_strongly_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The async-starts mask keeps the self-loop at every vertex in
    /// every round — sleeping agents still hold their own state.
    #[test]
    fn async_starts_mask_keeps_self_loops(
        n in 2usize..8,
        extra in 0usize..6,
        seed in 0u64..500,
        max_delay in 1u64..6,
        t in 1u64..20,
    ) {
        let net = AsyncStarts::random(random_net(n, extra, seed), max_delay, seed ^ 0x5eed);
        let g = net.graph(t);
        for v in 0..n {
            prop_assert!(g.has_self_loop(v), "round {t}: vertex {v} lost its self-loop");
        }
    }

    /// §5.3 masking semantics: no non-self-loop edge `i -> j` is ever
    /// delivered before both endpoints have started, i.e. before round
    /// `max(s_i, s_j)`.
    #[test]
    fn async_starts_never_deliver_early(
        n in 2usize..8,
        extra in 0usize..6,
        seed in 0u64..500,
        max_delay in 1u64..8,
    ) {
        let inner = generators::random_strongly_connected(n, extra, seed);
        let net = AsyncStarts::random(
            StaticGraph::new(inner.clone()),
            max_delay,
            seed.wrapping_add(1),
        );
        let starts = net.starts().to_vec();
        let last_start = starts.iter().copied().max().unwrap_or(1);
        for t in 1..=last_start + 2 {
            let g = net.graph(t);
            for e in inner.edges() {
                if e.src != e.dst && t < starts[e.src].max(starts[e.dst]) {
                    prop_assert_eq!(
                        g.multiplicity(e.src, e.dst),
                        0,
                        "edge {} -> {} delivered at round {} before max start {}",
                        e.src,
                        e.dst,
                        t,
                        starts[e.src].max(starts[e.dst])
                    );
                }
            }
        }
    }

    /// A fault plan with all-zero rates and no crashes is the identity
    /// adversary: round for round the same multigraph.
    #[test]
    fn zero_rate_fault_plan_is_identity(
        n in 2usize..8,
        extra in 0usize..6,
        seed in 0u64..500,
        plan_seed in any::<u64>(),
        t in 1u64..30,
    ) {
        let faulty = FaultyNetwork::new(random_net(n, extra, seed), FaultPlan::new(plan_seed));
        prop_assert!(faulty.plan().is_quiescent());
        let expected = random_net(n, extra, seed).graph(t).with_self_loops();
        prop_assert_eq!(
            faulty.graph(t).multiplicity_matrix(),
            expected.multiplicity_matrix()
        );
    }

    /// Under any drop rate and any crash script: every vertex keeps its
    /// self-loop, and a crashed agent is isolated down to exactly that
    /// self-loop for the whole window.
    #[test]
    fn faulty_network_keeps_self_loops_and_isolates_crashes(
        n in 2usize..8,
        extra in 0usize..6,
        seed in 0u64..500,
        drop_pct in 0u32..95,
        agent_pick in any::<u64>(),
        t in 1u64..30,
    ) {
        let agent = (agent_pick % n as u64) as usize;
        let plan = FaultPlan::new(seed ^ 0xfa_17)
            .drop_links(f64::from(drop_pct) / 100.0)
            .crash(agent, 5..12);
        let net = FaultyNetwork::new(random_net(n, extra, seed), plan);
        let g = net.graph(t);
        for v in 0..n {
            prop_assert!(g.has_self_loop(v), "round {t}: vertex {v} lost its self-loop");
        }
        if (5..12).contains(&t) {
            prop_assert_eq!(g.outdegree(agent), 1, "crashed agent sends beyond its loop");
            prop_assert_eq!(g.indegree(agent), 1, "crashed agent receives beyond its loop");
        }
    }

    /// Graph-level retry: with a retry bound configured, every dropped
    /// edge reappears within the bound, so long-run connectivity is
    /// preserved (the `T`-interval claim).
    #[test]
    fn retry_bound_is_honored(
        seed in 0u64..500,
        bound in 1u64..6,
        t in 1u64..60,
    ) {
        let plan = FaultPlan::new(seed).drop_links(0.5).retry_within(bound);
        let net = FaultyNetwork::new(
            StaticGraph::new(generators::directed_ring(4)),
            plan.clone(),
        );
        if plan.drops(t, 0, 1) {
            let redelivery = t + plan.retry_delay(t, 0, 1);
            prop_assert!(redelivery <= t + bound);
            prop_assert!(net.graph(redelivery).multiplicity(0, 1) >= 1);
        }
    }

    /// Composition gap closed: the async-starts mask and the fault mask
    /// are both per-edge predicates pure in `(round, src, dst)`, so the
    /// wrapping order must not change the delivered edge multiset in any
    /// round. The churn stack relies on this freedom.
    #[test]
    fn async_starts_and_faulty_network_commute(
        n in 2usize..8,
        extra in 0usize..6,
        seed in 0u64..500,
        drop_pct in 0u32..80,
        dup_pct in 0u32..80,
        max_delay in 1u64..6,
        agent_pick in any::<u64>(),
    ) {
        let agent = (agent_pick % n as u64) as usize;
        let plan = FaultPlan::new(seed ^ 0xc0_11)
            .drop_links(f64::from(drop_pct) / 100.0)
            .duplicate(f64::from(dup_pct) / 100.0)
            .retry_within(3)
            .crash(agent, 4..9);
        // One shared start vector for both wrap orders.
        let starts: Vec<u64> = (0..n)
            .map(|v| 1 + (seed.wrapping_mul(v as u64 + 1) % max_delay))
            .collect();
        let faults_outside = FaultyNetwork::new(
            AsyncStarts::new(random_net(n, extra, seed), starts.clone()),
            plan.clone(),
        );
        let starts_outside =
            AsyncStarts::new(FaultyNetwork::new(random_net(n, extra, seed), plan), starts);
        for t in 1..=20u64 {
            prop_assert_eq!(
                faults_outside.graph(t).multiplicity_matrix(),
                starts_outside.graph(t).multiplicity_matrix(),
                "round {}: wrap order changed the delivered edges",
                t
            );
        }
    }
}

/// Satellite audit of `retry_within` × crash windows: a dropped message
/// whose deterministic redelivery lands inside a later crash window of
/// its destination must be swallowed, not delivered. The plan-level
/// retry *is* scheduled (`link_blocked` would clear the edge), but
/// `FaultyNetwork::graph` checks crashes before retries — reverting
/// that order delivers into the crash and fails this test.
#[test]
fn retried_delivery_into_a_crash_window_is_dropped() {
    let (src, dst) = (0usize, 1usize);
    let window = 20u64..40;
    let plan = FaultPlan::new(0xbeef)
        .drop_links(0.5)
        .retry_within(4)
        .crash(dst, window.clone());
    let net = FaultyNetwork::new(StaticGraph::new(generators::complete(4)), plan.clone());
    let mut audited = 0;
    for t_prev in 1..200u64 {
        if !plan.drops(t_prev, src, dst) {
            continue;
        }
        let redelivery = t_prev + plan.retry_delay(t_prev, src, dst);
        if !window.contains(&redelivery) {
            continue;
        }
        // The retry path is live at the plan level: the redelivery
        // clears the drop coin for that round (if it fired).
        assert!(
            !plan.link_blocked(redelivery, src, dst),
            "retry scheduled at {redelivery} must unblock the link"
        );
        // ...but the destination is crashed, and crash dominates: no
        // delivery reaches a crashed agent, retried or not.
        assert_eq!(
            net.graph(redelivery).multiplicity(src, dst),
            0,
            "drop at {t_prev}: retried delivery at {redelivery} pierced the crash window"
        );
        audited += 1;
    }
    assert!(
        audited >= 3,
        "seed must exercise the interaction, found {audited} cases"
    );
}
