//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand` it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]), raw draws ([`Rng::gen`]), Bernoulli draws
//! ([`Rng::gen_bool`]), and Fisher–Yates shuffling
//! ([`seq::SliceRandom`]).
//!
//! The generator is a splitmix64 chain: statistically solid for
//! simulation workloads, stable across platforms, and — the property the
//! repo's tests rely on — **fully deterministic in the seed**. The
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`; nothing
//! in this repo depends on the exact upstream stream, only on
//! seed-determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS entropy. Offline stub: derives the seed
    /// from the current time; do not use where determinism matters.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        Self::seed_from_u64(nanos)
    }
}

const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// One splitmix64 output step.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> $t {
                g.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> u128 {
        ((g.next_u64() as u128) << 64) | g.next_u64() as u128
    }
}

impl Standard for i128 {
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> i128 {
        u128::from_rng(g) as i128
    }
}

impl Standard for bool {
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> bool {
        g.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<G: RngCore + ?Sized>(g: &mut G) -> f32 {
        f64::from_rng(g) as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> Self::Output;
}

/// Uniform draw from `[0, span)` by widening multiply (unbiased enough
/// for simulation; deterministic, which is what matters here).
#[inline]
fn uniform_below<G: RngCore + ?Sized>(g: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((g.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(g, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return g.next_u64() as $t;
                }
                lo + uniform_below(g, span + 1) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_below(g, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return g.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(g, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<G: RngCore + ?Sized>(self, g: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::from_rng(g) * (self.end - self.start)
    }
}

/// User-facing sampling methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// A uniform draw over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Pre-mix so that nearby seeds diverge immediately.
            let mut state = seed ^ 0x1234_5678_9abc_def0;
            let _ = splitmix64(&mut state);
            StdRng { state }
        }
    }

    /// Alias: this stub's `SmallRng` is the same generator.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing.

    use super::{Rng, RngCore};

    /// Shuffle and choose on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle, in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Convenience: a time-seeded generator (upstream `rand::thread_rng`).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2usize..7);
            assert!((2..7).contains(&x));
            let y = rng.gen_range(1u64..=6);
            assert!((1..=6).contains(&y));
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        // A 20-element shuffle leaving everything fixed would be a
        // catastrophic generator bug.
        assert_ne!(v, (0..20).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_on_slices() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
