//! **F4** — the §5 averaging family compared on symmetric dynamic
//! networks: Push-Sum vs Metropolis vs Lazy Metropolis vs fixed-weight
//! 1/N, plus the cost of asynchronous starts.
//!
//! All four compute the average; they differ in what they must know
//! (outdegree vs a global bound) and in convergence rate. The paper
//! quotes quadratic convergence for Metropolis \[10\] and O(n^4) for the
//! bound-only variant \[11, 24\]; we report measured rounds to 1e-9.
//!
//! Run with `cargo run --release -p kya-bench --bin f4_metropolis_vs_pushsum`.

use kya_algos::metropolis::{FixedWeight, LazyMetropolis, Metropolis};
use kya_algos::push_sum::{PushSum, PushSumState};
use kya_graph::{DynamicGraph, RandomDynamicGraph};
use kya_runtime::adversary::AsyncStarts;
use kya_runtime::{Algorithm, Broadcast, Execution, Isotropic};

fn measure<A>(name: &str, algo: A, inits: Vec<A::State>, net: &dyn DynamicGraph, target: f64)
where
    A: Algorithm<Output = f64>,
{
    let mut exec = Execution::new(algo, inits);
    let mut entered: Option<u64> = None;
    let eps = 1e-9;
    while exec.round() < 200_000 {
        let g = net.graph(exec.round() + 1);
        exec.step(&g);
        let ok = exec.outputs().iter().all(|x| (x - target).abs() <= eps);
        match (ok, entered) {
            (true, None) => entered = Some(exec.round()),
            (false, Some(_)) => entered = None,
            _ => {}
        }
        if let Some(r) = entered {
            if exec.round() >= r + 50 {
                break; // stably converged
            }
        }
    }
    match entered {
        Some(r) => println!("{name:>28}: {r:>7} rounds to 1e-9"),
        None => println!("{name:>28}: no convergence in budget"),
    }
}

fn main() {
    let n = 16usize;
    let values: Vec<f64> = (0..n).map(|i| ((i * i) % 29) as f64).collect();
    let target = values.iter().sum::<f64>() / n as f64;

    println!("F4. Averaging on random symmetric dynamic graphs, n = {n}\n");
    println!("synchronous starts:");
    let net = RandomDynamicGraph::symmetric(n, 4, 2718);
    measure(
        "Push-Sum (outdeg aware)",
        Isotropic(PushSum),
        PushSumState::averaging(&values),
        &net,
        target,
    );
    measure(
        "Metropolis (outdeg aware)",
        Isotropic(Metropolis),
        values.clone(),
        &net,
        target,
    );
    measure(
        "Lazy Metropolis",
        Isotropic(LazyMetropolis),
        values.clone(),
        &net,
        target,
    );
    measure(
        "FixedWeight 1/N (broadcast)",
        Broadcast(FixedWeight::new(n)),
        values.clone(),
        &net,
        target,
    );
    measure(
        "FixedWeight 1/4N (loose)",
        Broadcast(FixedWeight::new(4 * n)),
        values.clone(),
        &net,
        target,
    );

    println!("\nasynchronous starts (agents wake within 8 rounds):");
    let base = RandomDynamicGraph::symmetric(n, 4, 9182);
    let net = AsyncStarts::random(base, 8, 4);
    measure(
        "Push-Sum (outdeg aware)",
        Isotropic(PushSum),
        PushSumState::averaging(&values),
        &net,
        target,
    );
    measure(
        "Metropolis (outdeg aware)",
        Isotropic(Metropolis),
        values.clone(),
        &net,
        target,
    );
    measure(
        "FixedWeight 1/N (broadcast)",
        Broadcast(FixedWeight::new(n)),
        values.clone(),
        &net,
        target,
    );

    println!(
        "\nReading: Metropolis-family updates converge fastest; the \
         bound-only 1/N rule pays for its weaker model with more rounds \
         (and degrades with looser bounds); asynchronous starts delay \
         but do not break convergence — exactly §5's qualitative account."
    );
}
