//! Regenerate **Table 1** (computable functions in static, strongly
//! connected anonymous networks) as a harness sweep: the algorithm
//! axis carries the four communication-model columns, the variant axis
//! the four centralized-help rows. Each cell runs the column's positive
//! certification (the witnessing algorithm computes the class
//! representative) and negative certification (the lifting-lemma
//! counterexample) and carries one boolean detail per sub-check.

use super::Experiment;
use crate::{directed_cases, run_static, stabilization_budget, symmetric_cases, StaticCase};
use kya_algos::frequency::{CensusOutdegree, CensusPorts, CensusSymmetric};
use kya_algos::gossip::{set_functions, SetGossip};
use kya_algos::min_base::ViewState;
use kya_arith::BigInt;
use kya_core::functions::{average, maximum, sum};
use kya_core::table::{computable_class, render_table, CentralizedHelp, NetworkKind};
use kya_core::value;
use kya_graph::{generators, Digraph};
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, SpecError};
use kya_runtime::{Broadcast, CommunicationModel, Isotropic};

/// The Table 1 registry entry.
pub const EXPERIMENT: Experiment = Experiment {
    name: "table1",
    about: "certify every cell of Table 1 (static networks) positively and negatively",
    extra_flags: &[],
    build,
    cell,
    render,
};

pub(crate) const HELPS: [&str; 4] = ["none", "bound-known", "size-known", "leader"];

pub(crate) fn parse_help(variant: &str) -> CentralizedHelp {
    match variant {
        "none" => CentralizedHelp::None,
        "bound-known" => CentralizedHelp::BoundKnown,
        "size-known" => CentralizedHelp::SizeKnown,
        "leader" => CentralizedHelp::Leader,
        other => panic!("unknown help variant `{other}`"),
    }
}

fn build(args: &Args) -> Result<Vec<ExperimentSpec>, SpecError> {
    Ok(vec![ExperimentSpec::new("table1")
        .algorithms(["broadcast", "outdegree", "symmetric", "ports"])
        .variants(HELPS)
        .with_args(args)?])
}

type Check = (String, bool);

/// Positive: gossip computes max everywhere (set-based witness).
fn positive_broadcast(checks: &mut Vec<Check>) {
    for case in directed_cases() {
        let rounds = stabilization_budget(&case.graph);
        let outs = run_static(
            Broadcast(SetGossip),
            &case.graph,
            SetGossip::initial(&case.values),
            rounds,
        );
        let ok = outs
            .iter()
            .all(|s| set_functions::max(s) == Some(maximum(&case.values)));
        checks.push((format!("max via gossip [{}]", case.name), ok));
    }
}

/// The unequal-fibre-lift pair of §4.1 adapted to broadcast.
fn broadcast_counterexample() -> (Digraph, Digraph, Vec<u64>, Vec<u64>) {
    // Base: a <-> b with doubled a->b edge, plus self-loops.
    let mut base = Digraph::new(2);
    base.add_edge(0, 1);
    base.add_edge(0, 1);
    base.add_edge(1, 0);
    let base = base.with_self_loops();
    let small = base.clone(); // fibre sizes (1, 1)
    let (large, fibre_of) =
        generators::connected_lift(&base, &[1, 2], 11, 256).expect("connected lift");
    let vals_small = vec![6u64, 12];
    let vals_large: Vec<u64> = fibre_of.iter().map(|&f| vals_small[f]).collect();
    (small, large, vals_small, vals_large)
}

/// Negative for simple broadcast: the average differs across the pair,
/// yet gossip cannot separate them.
fn negative_broadcast(checks: &mut Vec<Check>) {
    let (small, large, vs, vl) = broadcast_counterexample();
    let outs_small = run_static(Broadcast(SetGossip), &small, SetGossip::initial(&vs), 12);
    let outs_large = run_static(Broadcast(SetGossip), &large, SetGossip::initial(&vl), 12);
    let indist = outs_small[0] == outs_large[0];
    let separated = average(&vs) != average(&vl);
    checks.push((
        "average invisible to broadcast (lift pair)".to_string(),
        indist && separated,
    ));
}

type CensusFn = dyn Fn(&Digraph, &[u64], u64) -> Option<kya_algos::FibreCensus>;

/// Positive: the census pipeline of a column computes average (and,
/// with n or a leader, the sum).
fn positive_census(
    checks: &mut Vec<Check>,
    cases: &[StaticCase],
    help: CentralizedHelp,
    run: &CensusFn,
) {
    for case in cases {
        let rounds = stabilization_budget(&case.graph);
        // In the leader row, distinguish agent 0 through its input value.
        let values: Vec<u64> = match help {
            CentralizedHelp::Leader => case
                .values
                .iter()
                .enumerate()
                .map(|(i, &v)| value::encode(v, i == 0))
                .collect(),
            _ => case.values.clone(),
        };
        let Some(census) = run(&case.graph, &values, rounds) else {
            checks.push((format!("census [{}]: no stabilization", case.name), false));
            continue;
        };
        let ok = match help {
            CentralizedHelp::None | CentralizedHelp::BoundKnown => {
                average(&census.canonical_vector()) == average(&values)
            }
            CentralizedHelp::SizeKnown => census
                .multiplicities_known_n(case.graph.n())
                .map(|m| {
                    m.iter().map(|(v, k)| &BigInt::from(*v) * k).sum::<BigInt>() == sum(&values)
                })
                .unwrap_or(false),
            CentralizedHelp::Leader => census
                .multiplicities_with_leaders(1, value::is_leader)
                .map(|m| {
                    m.iter()
                        .map(|(v, k)| &BigInt::from(value::decode(*v).0) * k)
                        .sum::<BigInt>()
                        == sum(&case.values)
                })
                .unwrap_or(false),
        };
        let witness = match help {
            CentralizedHelp::None | CentralizedHelp::BoundKnown => "average",
            _ => "sum",
        };
        checks.push((format!("{witness} [{}]", case.name), ok));
    }
}

/// Negative for the frequency rows: the sum is invisible because R_4
/// and its double cover R_8 produce identical censuses.
fn negative_sum_invisible(checks: &mut Vec<Check>, run: &CensusFn) {
    let small = generators::bidirectional_ring(4);
    let large = generators::bidirectional_ring(8);
    let vs: Vec<u64> = vec![1, 2, 3, 2];
    let vl: Vec<u64> = (0..8).map(|i| vs[i % 4]).collect();
    let census_s = run(&small, &vs, 24).expect("stabilized");
    let census_l = run(&large, &vl, 24).expect("stabilized");
    let indist = census_s == census_l;
    let separated = sum(&vs) != sum(&vl);
    checks.push((
        "sum invisible (ring double cover)".to_string(),
        indist && separated,
    ));
}

/// Negative for the multiset rows: only symmetric functions are
/// computable (Lemma 3.3).
fn negative_only_multiset(checks: &mut Vec<Check>, run: &CensusFn) {
    let g = generators::bidirectional_ring(5);
    let values: Vec<u64> = vec![4, 8, 15, 16, 23];
    let perm = [2usize, 3, 4, 0, 1];
    let gp = g.relabel(&perm);
    let mut vp = vec![0u64; 5];
    for (i, &p) in perm.iter().enumerate() {
        vp[p] = values[i];
    }
    let census_a = run(&g, &values, 24).expect("stabilized");
    let census_b = run(&gp, &vp, 24).expect("stabilized");
    let indist = census_a == census_b;
    let separated = values[0] != vp[0];
    checks.push((
        "only multiset-based (isomorphism invariance)".to_string(),
        indist && separated,
    ));
}

fn cell(ctx: &CellCtx) -> CellOutcome {
    let help = parse_help(&ctx.cell.variant);
    let census_outdegree = |g: &Digraph, v: &[u64], r: u64| {
        run_static(Isotropic(CensusOutdegree), g, ViewState::initial(v), r)
            .into_iter()
            .next()
            .flatten()
    };
    let census_symmetric = |g: &Digraph, v: &[u64], r: u64| {
        run_static(Broadcast(CensusSymmetric), g, ViewState::initial(v), r)
            .into_iter()
            .next()
            .flatten()
    };
    let census_ports = |g: &Digraph, v: &[u64], r: u64| {
        run_static(CensusPorts, g, ViewState::initial(v), r)
            .into_iter()
            .next()
            .flatten()
    };

    let mut checks: Vec<Check> = Vec::new();
    let model = match ctx.cell.algorithm.as_str() {
        "broadcast" => {
            positive_broadcast(&mut checks);
            negative_broadcast(&mut checks);
            CommunicationModel::SimpleBroadcast
        }
        "outdegree" => {
            positive_census(&mut checks, &directed_cases(), help, &census_outdegree);
            match help {
                CentralizedHelp::None | CentralizedHelp::BoundKnown => {
                    negative_sum_invisible(&mut checks, &census_outdegree)
                }
                _ => negative_only_multiset(&mut checks, &census_outdegree),
            }
            CommunicationModel::OutdegreeAware
        }
        "symmetric" => {
            positive_census(&mut checks, &symmetric_cases(), help, &census_symmetric);
            match help {
                CentralizedHelp::None | CentralizedHelp::BoundKnown => {
                    negative_sum_invisible(&mut checks, &census_symmetric)
                }
                _ => negative_only_multiset(&mut checks, &census_symmetric),
            }
            CommunicationModel::Symmetric
        }
        "ports" => {
            // Output port awareness: an equal-fibre lift with ports.
            let mut base = Digraph::new(2);
            base.add_edge_with_port(0, 1, Some(0));
            base.add_edge_with_port(1, 0, Some(0));
            base.add_edge_with_port(0, 0, Some(1));
            base.add_edge_with_port(1, 1, Some(1));
            let (g, fibre_of) =
                generators::connected_lift(&base, &[3, 3], 3, 256).expect("connected lift");
            let values: Vec<u64> = fibre_of.iter().map(|&f| [4, 8][f]).collect();
            let case = StaticCase {
                name: "port-lift(3,3)",
                graph: g,
                values,
            };
            positive_census(&mut checks, &[case], help, &census_ports);
            match help {
                CentralizedHelp::None | CentralizedHelp::BoundKnown => {
                    negative_sum_invisible(&mut checks, &census_symmetric)
                }
                _ => negative_only_multiset(&mut checks, &census_symmetric),
            }
            CommunicationModel::OutputPortAware
        }
        other => panic!("unknown table1 column `{other}`"),
    };

    let class = computable_class(NetworkKind::Static, model, help).to_string();
    let all = checks.iter().all(|(_, ok)| *ok);
    let mut out = CellOutcome::new().ok(all).detail("class", class);
    for (label, ok) in checks {
        out = out.detail(label, ok);
    }
    out
}

pub(crate) fn render_checks(sink: &ResultSink, kind: NetworkKind, title: &str) -> String {
    let mut out = format!(
        "{}\nMeasured certification of every cell:\n\n",
        render_table(kind)
    );
    for r in sink.records() {
        let class = match r.detail("class") {
            Some(serde::Value::Str(s)) => s.clone(),
            _ => String::new(),
        };
        out.push_str(&format!(
            "--- help: {}, column: {} -> {class}\n",
            r.variant, r.algorithm
        ));
        for (label, v) in &r.details {
            if let serde::Value::Bool(ok) = v {
                out.push_str(&format!("  [{}] {label}\n", if *ok { "ok" } else { "XX" }));
            }
        }
    }
    if sink.all_ok() {
        out.push_str(&format!(
            "\n{title}: all measured cells match the paper's claims.\n"
        ));
    } else {
        out.push_str(&format!(
            "\n{title}: MISMATCHES FOUND — see [XX] lines above.\n"
        ));
    }
    out
}

fn render(sink: &ResultSink) -> String {
    render_checks(sink, NetworkKind::Static, "TABLE 1")
}
