//! Probes: deterministic metrics for the flat executor's sharded hot
//! path.
//!
//! The boxed executor's [`Observer`](crate::Observer) sees every message
//! as a value — far too slow for the million-agent flat engine, whose
//! whole point is that messages are never materialized individually. A
//! [`FlatProbe`] instead hooks the *phase* structure of
//! [`FlatExecution::step_probed`](crate::FlatExecution::step_probed):
//! each shard accumulates plain counters ([`ShardCounters`]) while it
//! runs, and the main thread merges them in canonical ascending shard
//! order after the joins, so a probe observes the same stream at any
//! thread count. On top of the counters, the executor samples a strided
//! subset of every state lane each round ([`FlatProbe::on_lane_sample`])
//! — enough to fingerprint the trajectory without walking all `n`
//! agents.
//!
//! Determinism contract (DESIGN.md §10): everything a probe receives
//! through the counter and sample hooks is a pure function of the
//! algorithm, the initial columns, and the routing plan — **bitwise
//! identical across thread counts** (the conformance `probe` oracle
//! byte-diffs the streams at threads 1/2/4). Wall-clock phase timings
//! are the deliberate exception: they arrive only through the separate
//! [`FlatProbe::on_phase_times`] hook and must never be mixed into
//! fingerprinted output.
//!
//! Like the observer layer, the null case is free:
//! [`NullProbe`] sets [`FlatProbe::ENABLED`] to `false`, every counter
//! accumulation in the hot loops is gated on that associated `const`,
//! and monomorphization folds the branches away — `step_threads` *is*
//! `step_probed::<NullProbe>`, and the `flat_engine` bench guard pins
//! the zero cost.

use crate::telemetry::Log2Histogram;
use serde::{Deserialize, Serialize};

/// Plain counters accumulated by one shard of one phase of one round.
///
/// Per-shard values depend on the shard layout (and therefore on the
/// thread count); only the merged per-round totals delivered to
/// [`FlatProbe::on_round_end`] are thread-count invariant. Probes that
/// want deterministic output must aggregate totals, not shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardCounters {
    /// Agents the shard processed (its contiguous range length).
    pub agents: u64,
    /// Message slots the shard routed (send slots written in phase 1,
    /// inbox slots gathered in phase 2).
    pub messages_routed: u64,
    /// f64 lane writes the shard performed into the send buffer, arena,
    /// and next-state columns.
    pub lane_writes: u64,
    /// Bytes of the message arena the shard touched (phase 2 only).
    pub arena_bytes: u64,
}

impl ShardCounters {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &ShardCounters) {
        self.agents += other.agents;
        self.messages_routed += other.messages_routed;
        self.lane_writes += other.lane_writes;
        self.arena_bytes += other.arena_bytes;
    }
}

/// Wall-clock microseconds per phase of one flat round.
///
/// Timing is measured only when a probe is enabled, reported only
/// through [`FlatProbe::on_phase_times`], and **never** part of the
/// deterministic probe stream ([`CountingProbe::to_ndjson`] excludes
/// it; [`CountingProbe::timing`] hands back the accumulated block
/// separately).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Shard layout and span splitting.
    pub route_us: u64,
    /// Phase 1: isotropic message computation + send-slot replication.
    pub send_us: u64,
    /// Phase 2: inbox gather + transition fold.
    pub transition_us: u64,
    /// Counter merge, lane sampling, and the column swap.
    pub merge_us: u64,
}

impl PhaseTimes {
    /// Accumulate another round's phase times into this block.
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.route_us += other.route_us;
        self.send_us += other.send_us;
        self.transition_us += other.transition_us;
        self.merge_us += other.merge_us;
    }

    /// Total microseconds across all four phases.
    pub fn total_us(&self) -> u64 {
        self.route_us + self.send_us + self.transition_us + self.merge_us
    }
}

/// Phase-level hooks driven by
/// [`FlatExecution::step_probed`](crate::FlatExecution::step_probed).
///
/// Per round, the call order is fixed: `on_round_start` → one
/// `on_send_shard` per phase-1 shard in ascending shard order → one
/// `on_gather_shard` per phase-2 shard in ascending shard order → one
/// `on_lane_sample` per state lane in lane order → `on_round_end` with
/// the merged totals → `on_phase_times`. All hooks run on the calling
/// thread; worker threads only fill [`ShardCounters`] by value.
pub trait FlatProbe {
    /// Whether the executor should do any probe work at all. The hot
    /// loops gate every accumulation on this associated `const`, so a
    /// `false` instantiation (the [`NullProbe`]) compiles to the bare
    /// unprobed round.
    const ENABLED: bool = true;

    /// Round `round` (1-based) over `n` agents is about to execute.
    fn on_round_start(&mut self, round: u64, n: usize) {
        let _ = (round, n);
    }

    /// Phase-1 counters of shard `shard` (ascending order).
    fn on_send_shard(&mut self, shard: usize, counters: &ShardCounters) {
        let _ = (shard, counters);
    }

    /// Phase-2 counters of shard `shard` (ascending order).
    fn on_gather_shard(&mut self, shard: usize, counters: &ShardCounters) {
        let _ = (shard, counters);
    }

    /// A strided sample of state lane `lane` after the round's swap:
    /// agents `0, s, 2s, ...` for a deterministic stride `s` chosen from
    /// `n` alone.
    fn on_lane_sample(&mut self, round: u64, lane: usize, samples: &[f64]) {
        let _ = (round, lane, samples);
    }

    /// The round finished; `send` and `gather` are the per-phase totals
    /// merged over all shards (thread-count invariant).
    fn on_round_end(&mut self, round: u64, send: &ShardCounters, gather: &ShardCounters) {
        let _ = (round, send, gather);
    }

    /// Wall-clock phase breakdown of the round. Keep this out of any
    /// deterministic output.
    fn on_phase_times(&mut self, round: u64, times: &PhaseTimes) {
        let _ = (round, times);
    }
}

/// The zero-cost default: disables all probe work at compile time.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullProbe;

impl FlatProbe for NullProbe {
    const ENABLED: bool = false;
}

impl<P: FlatProbe> FlatProbe for &mut P {
    const ENABLED: bool = P::ENABLED;

    fn on_round_start(&mut self, round: u64, n: usize) {
        (**self).on_round_start(round, n);
    }

    fn on_send_shard(&mut self, shard: usize, counters: &ShardCounters) {
        (**self).on_send_shard(shard, counters);
    }

    fn on_gather_shard(&mut self, shard: usize, counters: &ShardCounters) {
        (**self).on_gather_shard(shard, counters);
    }

    fn on_lane_sample(&mut self, round: u64, lane: usize, samples: &[f64]) {
        (**self).on_lane_sample(round, lane, samples);
    }

    fn on_round_end(&mut self, round: u64, send: &ShardCounters, gather: &ShardCounters) {
        (**self).on_round_end(round, send, gather);
    }

    fn on_phase_times(&mut self, round: u64, times: &PhaseTimes) {
        (**self).on_phase_times(round, times);
    }
}

/// One round of the deterministic probe stream (the flat analogue of
/// [`RoundEvent`](crate::RoundEvent)). Every field is thread-count
/// invariant; `sample_digest` folds the strided lane samples' exact
/// bits, so two streams agree iff the trajectories agree bitwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatRoundEvent {
    /// 1-based round number.
    pub round: u64,
    /// Messages delivered this round (= the plan's slot count).
    pub messages_routed: u64,
    /// f64 lane writes across both phases.
    pub lane_writes: u64,
    /// Message-arena bytes touched this round.
    pub arena_bytes: u64,
    /// FNV-1a over the bit patterns of the round's strided lane samples.
    pub sample_digest: u64,
}

/// Totals of a probed flat run, serialized into harness telemetry
/// blocks (`CellTelemetry.probe`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlatProbeSummary {
    /// Rounds observed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages_routed: u64,
    /// Total f64 lane writes.
    pub lane_writes: u64,
    /// High-water mark of per-round arena bytes touched.
    pub arena_high_water_bytes: u64,
    /// Individual lane samples hashed into the round digests.
    pub lane_samples: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_u64(mut hash: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The workhorse probe: merged per-round counters, a bit-exact sample
/// digest per round, a per-round message-volume [`Log2Histogram`], and
/// the (separate, nondeterministic) accumulated [`PhaseTimes`].
#[derive(Clone, Debug, Default)]
pub struct CountingProbe {
    summary: FlatProbeSummary,
    events: Vec<FlatRoundEvent>,
    volume: Log2Histogram,
    timing: PhaseTimes,
    shard_merges: u64,
    cur_send: ShardCounters,
    cur_gather: ShardCounters,
    cur_digest: u64,
}

impl CountingProbe {
    /// A fresh probe.
    pub fn new() -> CountingProbe {
        CountingProbe {
            cur_digest: FNV_OFFSET,
            ..CountingProbe::default()
        }
    }

    /// Run totals so far.
    pub fn summary(&self) -> FlatProbeSummary {
        self.summary.clone()
    }

    /// The per-round event stream.
    pub fn events(&self) -> &[FlatRoundEvent] {
        &self.events
    }

    /// Histogram of per-round delivered message volume.
    pub fn volume_histogram(&self) -> &Log2Histogram {
        &self.volume
    }

    /// Accumulated wall-clock phase breakdown — the timing block. Never
    /// include this in fingerprinted or NDJSON output.
    pub fn timing(&self) -> PhaseTimes {
        self.timing
    }

    /// Shard counter blocks merged (2 × shards per round). Like
    /// [`timing`](CountingProbe::timing), this depends on the shard
    /// layout — and therefore the thread count — so it is a diagnostic,
    /// deliberately **not** part of [`FlatProbeSummary`] or the stream.
    pub fn shard_merges(&self) -> u64 {
        self.shard_merges
    }

    /// The deterministic probe stream: one JSON object per round.
    /// Byte-identical at any thread count (CI diffs `--threads 1` vs
    /// `4`); contains no timing.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde::to_json_string(e));
            out.push('\n');
        }
        out
    }
}

impl FlatProbe for CountingProbe {
    fn on_round_start(&mut self, _round: u64, _n: usize) {
        self.cur_send = ShardCounters::default();
        self.cur_gather = ShardCounters::default();
        self.cur_digest = FNV_OFFSET;
    }

    fn on_send_shard(&mut self, _shard: usize, counters: &ShardCounters) {
        self.cur_send.merge(counters);
        self.shard_merges += 1;
    }

    fn on_gather_shard(&mut self, _shard: usize, counters: &ShardCounters) {
        self.cur_gather.merge(counters);
        self.shard_merges += 1;
    }

    fn on_lane_sample(&mut self, _round: u64, lane: usize, samples: &[f64]) {
        self.cur_digest = fnv1a_u64(self.cur_digest, lane as u64);
        for &x in samples {
            self.cur_digest = fnv1a_u64(self.cur_digest, x.to_bits());
        }
        self.summary.lane_samples += samples.len() as u64;
    }

    fn on_round_end(&mut self, round: u64, send: &ShardCounters, gather: &ShardCounters) {
        let lane_writes = send.lane_writes + gather.lane_writes;
        self.summary.rounds += 1;
        self.summary.messages_routed += gather.messages_routed;
        self.summary.lane_writes += lane_writes;
        self.summary.arena_high_water_bytes =
            self.summary.arena_high_water_bytes.max(gather.arena_bytes);
        self.volume.record_count(gather.messages_routed);
        self.events.push(FlatRoundEvent {
            round,
            messages_routed: gather.messages_routed,
            lane_writes,
            arena_bytes: gather.arena_bytes,
            sample_digest: self.cur_digest,
        });
    }

    fn on_phase_times(&mut self, _round: u64, times: &PhaseTimes) {
        self.timing.accumulate(times);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_at_compile_time() {
        const { assert!(!NullProbe::ENABLED) };
        const { assert!(CountingProbe::ENABLED) };
        // The forwarding impl inherits the wrapped probe's switch.
        const { assert!(!<&mut NullProbe as FlatProbe>::ENABLED) };
    }

    #[test]
    fn counting_probe_merges_shards_into_round_totals() {
        let mut p = CountingProbe::new();
        p.on_round_start(1, 8);
        p.on_send_shard(
            0,
            &ShardCounters {
                agents: 4,
                messages_routed: 9,
                lane_writes: 18,
                arena_bytes: 0,
            },
        );
        p.on_send_shard(
            1,
            &ShardCounters {
                agents: 4,
                messages_routed: 7,
                lane_writes: 14,
                arena_bytes: 0,
            },
        );
        let g = ShardCounters {
            agents: 8,
            messages_routed: 16,
            lane_writes: 40,
            arena_bytes: 256,
        };
        p.on_gather_shard(0, &g);
        p.on_lane_sample(1, 0, &[1.0, 2.0]);
        let (send, gather) = (p.cur_send, p.cur_gather);
        assert_eq!(send.messages_routed, 16);
        p.on_round_end(1, &send, &gather);
        let s = p.summary();
        assert_eq!(s.rounds, 1);
        assert_eq!(s.messages_routed, 16);
        assert_eq!(s.lane_writes, 32 + 40);
        assert_eq!(s.arena_high_water_bytes, 256);
        assert_eq!(p.shard_merges(), 3);
        assert_eq!(s.lane_samples, 2);
        assert_eq!(p.events().len(), 1);
        assert_eq!(p.volume_histogram().count(4), 1, "16 messages → bucket 4");
        // The stream excludes timing and serializes stably.
        let ndjson = p.to_ndjson();
        assert!(ndjson.starts_with("{\"round\":1,"), "{ndjson}");
        assert!(!ndjson.contains("_us"), "timing leaked into the stream");
        let back: FlatRoundEvent =
            serde::from_json_str(ndjson.trim_end()).expect("stream line parses");
        assert_eq!(back, p.events()[0]);
    }

    #[test]
    fn sample_digest_is_bit_sensitive() {
        let mut a = CountingProbe::new();
        let mut b = CountingProbe::new();
        for (p, x) in [(&mut a, 1.0f64), (&mut b, 1.0 + f64::EPSILON)] {
            p.on_round_start(1, 2);
            p.on_lane_sample(1, 0, &[x]);
            let z = ShardCounters::default();
            p.on_round_end(1, &z, &z);
        }
        assert_ne!(a.events()[0].sample_digest, b.events()[0].sample_digest);
    }

    #[test]
    fn phase_times_accumulate_separately_from_the_stream() {
        let mut p = CountingProbe::new();
        p.on_phase_times(
            1,
            &PhaseTimes {
                route_us: 1,
                send_us: 2,
                transition_us: 3,
                merge_us: 4,
            },
        );
        p.on_phase_times(
            2,
            &PhaseTimes {
                route_us: 10,
                send_us: 20,
                transition_us: 30,
                merge_us: 40,
            },
        );
        assert_eq!(p.timing().total_us(), 110);
        assert!(p.to_ndjson().is_empty(), "timing alone emits no stream");
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let s = FlatProbeSummary {
            rounds: 5,
            messages_routed: 100,
            lane_writes: 400,
            arena_high_water_bytes: 1600,
            lane_samples: 40,
        };
        let json = serde::to_json_string(&s);
        let back: FlatProbeSummary = serde::from_json_str(&json).expect("parses");
        assert_eq!(back, s);
    }
}
