//! **F2/F3** — distributed minimum-base stabilization vs the `n + D`
//! bound (§3.2), and the depth-capped finite-state trade-off (§4.2),
//! as one sweep with two algorithm-axis entries:
//!
//! - `stabilization`: measure the round at which every agent's
//!   candidate base stabilizes; certify it is `≤ n + D`;
//! - `depth-cap`: find the smallest view-depth cap whose capped
//!   pipeline still stabilizes to the centralized minimum base.
//!
//! The centralized reference bases come from the shared
//! [`TopologyCache`](kya_harness::TopologyCache), computed once per
//! (topology, values) pair and reused by every worker.

use super::Experiment;
use crate::minbase_stabilization_round;
use kya_algos::min_base::{DepthCapped, MinBaseBroadcast, MinBaseOutdegree, ViewState};
use kya_fibration::iso::are_isomorphic;
use kya_graph::StaticGraph;
use kya_harness::{Args, CellCtx, CellOutcome, ExperimentSpec, ResultSink, SpecError};
use kya_runtime::{Broadcast, Execution, Isotropic, RunConfig};

/// The F2/F3 registry entry.
pub const EXPERIMENT: Experiment = Experiment {
    name: "f2",
    about: "minimum-base stabilization round vs n + D, and the smallest working depth cap",
    extra_flags: &["rand-sizes"],
    build,
    cell,
    render,
};

const ALGOS: [&str; 2] = ["stabilization", "depth-cap"];

fn build(args: &Args) -> Result<Vec<ExperimentSpec>, SpecError> {
    let rings = ExperimentSpec::new("f2_rings")
        .topologies(["ring:{n}"])
        .sizes([4, 6, 8, 10, 12])
        .algorithms(ALGOS)
        .with_args(args)?;
    let mut specs = vec![rings];
    // One spec per random size: the generator seed is `31 n`, which the
    // `{n}`/`{seed}` placeholders cannot express as a single pattern.
    for n in args.usize_list_flag("rand-sizes", &[6, 9, 12])? {
        specs.push(
            ExperimentSpec::new("f2_random")
                .topologies([format!("random:{n}:{n}:{}", 31 * n as u64)])
                .sizes([n])
                .algorithms(ALGOS),
        );
    }
    Ok(specs)
}

fn values_for(topology: &str, n: usize) -> Vec<u64> {
    if topology.starts_with("random") {
        (0..n).map(|i| (i % 3) as u64).collect()
    } else {
        (0..n).map(|i| (i % 2) as u64).collect()
    }
}

fn cell(ctx: &CellCtx) -> CellOutcome {
    let g = ctx.graph().expect("static label");
    let n = g.n();
    let d = ctx
        .cache
        .diameter(&ctx.cell.topology)
        .ok()
        .flatten()
        .expect("strongly connected");
    let values = values_for(&ctx.cell.topology, n);
    match ctx.cell.algorithm.as_str() {
        "stabilization" => {
            let budget = (2 * (n + d) + 6) as u64;
            let stab =
                minbase_stabilization_round(Broadcast(MinBaseBroadcast), &g, &values, budget)
                    .expect("non-empty history");
            CellOutcome::new()
                .ok(stab <= (n + d) as u64)
                .detail("stabilized_at", stab)
                .detail("bound", (n + d) as u64)
        }
        "depth-cap" => {
            // Reference: the centralized base of G_od (values annotated
            // with outdegrees), shared through the cache.
            let closed = g.with_self_loops();
            let od_values: Vec<u64> = (0..closed.n())
                .map(|v| values[v] * 1000 + closed.outdegree(v) as u64)
                .collect();
            let reference = ctx
                .cache
                .minimum_base(&ctx.cell.topology, &od_values)
                .expect("static label");
            let rounds = (2 * (n + d) + 8) as u64;
            let mut smallest = None;
            for cap in 2..=(n + d + 2) {
                let algo = DepthCapped::new(Isotropic(MinBaseOutdegree), cap);
                let net = StaticGraph::new((*g).clone());
                let mut exec = Execution::new(algo, ViewState::initial(&values));
                exec.drive(&net, RunConfig::rounds(rounds));
                let good = exec.outputs().into_iter().all(|out| {
                    out.map(|cb| {
                        let cb_od_values: Vec<u64> = cb
                            .values
                            .iter()
                            .zip(&cb.annotations)
                            .map(|(v, a)| v * 1000 + a)
                            .collect();
                        are_isomorphic(
                            &cb.graph,
                            &cb_od_values,
                            reference.base(),
                            reference.base_values(),
                        )
                        .is_some()
                    })
                    .unwrap_or(false)
                });
                if good {
                    smallest = Some(cap);
                    break;
                }
            }
            let mut out = CellOutcome::new()
                .ok(smallest.is_some())
                .detail("bound", (n + d) as u64);
            if let Some(cap) = smallest {
                out = out.detail("smallest_cap", cap as u64);
            }
            out
        }
        other => panic!("unknown f2 algorithm `{other}`"),
    }
}

fn detail_u64(r: &kya_harness::CellRecord, key: &str) -> Option<u64> {
    match r.detail(key) {
        Some(serde::Value::UInt(x)) => Some(*x),
        Some(serde::Value::Int(x)) => Some(*x as u64),
        _ => None,
    }
}

fn render(sink: &ResultSink) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "F2/F3. {} — stabilization vs n + D, smallest depth cap\n",
        sink.records()
            .first()
            .map(|r| r.experiment.as_str())
            .unwrap_or("?")
    ));
    out.push_str(&format!(
        "{:>16} {:>4} {:>6} {:>14} {:>6}\n",
        "graph", "n+D", "check", "result", "ok"
    ));
    for r in sink.records() {
        let bound = detail_u64(r, "bound").unwrap_or(0);
        let result = match r.algorithm.as_str() {
            "stabilization" => detail_u64(r, "stabilized_at")
                .map(|s| format!("stab at {s}"))
                .unwrap_or_default(),
            _ => detail_u64(r, "smallest_cap")
                .map(|c| format!("cap {c}"))
                .unwrap_or_else(|| "no cap works".to_string()),
        };
        out.push_str(&format!(
            "{:>16} {bound:>4} {:>6} {result:>14} {:>6}\n",
            r.topology,
            if r.algorithm == "stabilization" {
                "F2"
            } else {
                "F3"
            },
            if r.ok == Some(true) { "ok" } else { "XX" }
        ));
    }
    out
}
