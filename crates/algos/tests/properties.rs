//! Property-based tests of the algorithm layer's core invariants.

use kya_algos::frequency::CensusOutdegree;
use kya_algos::gossip::SetGossip;
use kya_algos::lifting::{check_lifting, close_fibration, ring_fibration};
use kya_algos::min_base::{MinBaseBroadcast, ViewState};
use kya_algos::push_sum::{PushSumExact, PushSumExactState};
use kya_algos::views::View;
use kya_arith::BigRational;
use kya_fibration::iso::are_isomorphic;
use kya_fibration::MinimumBase;
use kya_graph::{generators, DynamicGraph, RandomDynamicGraph, StaticGraph};
use kya_runtime::testing::check_multiset_invariance;
use kya_runtime::{Broadcast, Execution, Isotropic, RunConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 3.1 on every divisor fibration R_n -> R_p, for gossip.
    #[test]
    fn lifting_lemma_gossip_on_rings(
        p in 2usize..5,
        mult in 2usize..4,
        values in proptest::collection::vec(0u64..6, 4),
    ) {
        let n = p * mult;
        let (g, b, phi) = ring_fibration(n, p);
        let (gc, bc, phic) = close_fibration(&phi, &g, &b);
        let base_values: Vec<u64> = values.iter().take(p).copied().collect();
        let inits = SetGossip::initial(&base_values);
        prop_assert!(check_lifting(&Broadcast(SetGossip), &gc, &bc, &phic, inits, 2 * n as u64).is_ok());
    }

    /// Lemma 3.1 for exact Push-Sum (isotropic; ring fibrations preserve
    /// outdegrees).
    #[test]
    fn lifting_lemma_pushsum_on_rings(
        p in 2usize..4,
        mult in 2usize..4,
        seed_vals in proptest::collection::vec(-20i64..20, 4),
    ) {
        let n = p * mult;
        let (g, b, phi) = ring_fibration(n, p);
        let (gc, bc, phic) = close_fibration(&phi, &g, &b);
        let base_values: Vec<i64> = seed_vals.iter().take(p).copied().collect();
        let inits = PushSumExactState::averaging(&base_values);
        prop_assert!(
            check_lifting(&Isotropic(PushSumExact), &gc, &bc, &phic, inits, (n + 4) as u64).is_ok()
        );
    }

    /// The distributed broadcast min-base equals the centralized one on
    /// random strongly connected graphs.
    #[test]
    fn distributed_matches_centralized_min_base(
        n in 4usize..9,
        extra in 0usize..6,
        seed in 0u64..500,
        val_period in 1usize..4,
    ) {
        let g = generators::random_strongly_connected(n, extra, seed);
        let values: Vec<u64> = (0..n).map(|i| (i % val_period) as u64).collect();
        let d = kya_graph::connectivity::diameter(&g.with_self_loops()).unwrap();
        let rounds = (n + d + 3) as u64;
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(MinBaseBroadcast), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds));
        let reference = MinimumBase::compute(&g.with_self_loops(), &values);
        for out in exec.outputs() {
            let cb = out.expect("stabilized by n + D");
            prop_assert!(are_isomorphic(
                &cb.graph,
                &cb.values,
                reference.base(),
                reference.base_values()
            )
            .is_some());
        }
    }

    /// The outdegree census recovers exact value frequencies on random
    /// strongly connected graphs.
    #[test]
    fn census_frequencies_are_exact(
        n in 3usize..8,
        extra in 1usize..6,
        seed in 0u64..300,
        val_period in 1usize..4,
    ) {
        let g = generators::random_strongly_connected(n, extra, seed);
        let values: Vec<u64> = (0..n).map(|i| (i % val_period) as u64 * 7).collect();
        let d = kya_graph::connectivity::diameter(&g.with_self_loops()).unwrap();
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds((n + d + 3) as u64));
        let census = exec.outputs()[0].clone().expect("stabilized");
        for (v, f) in census.frequencies() {
            let count = values.iter().filter(|&&w| w == v).count() as i64;
            prop_assert_eq!(f, BigRational::from_i64(count, n as i64));
        }
    }

    /// Exact Push-Sum conserves both masses on arbitrary dynamic graphs.
    #[test]
    fn pushsum_mass_conservation(
        n in 2usize..7,
        seed in 0u64..300,
        vals in proptest::collection::vec(-50i64..50, 7),
        rounds in 1u64..12,
    ) {
        let net = RandomDynamicGraph::directed(n, 2, seed);
        let values: Vec<i64> = vals.iter().take(n).copied().collect();
        let inits = PushSumExactState::averaging(&values);
        let y0: BigRational = inits.iter().map(|s| &s.y).sum();
        let z0: BigRational = inits.iter().map(|s| &s.z).sum();
        let mut exec = Execution::new(Isotropic(PushSumExact), inits);
        exec.drive(&net, RunConfig::rounds(rounds));
        let y1: BigRational = exec.states().iter().map(|s| &s.y).sum();
        let z1: BigRational = exec.states().iter().map(|s| &s.z).sum();
        prop_assert_eq!(y0, y1);
        prop_assert_eq!(z0, z1);
    }

    /// Every core algorithm's transition is multiset-invariant
    /// (anonymity contract of §2.2).
    #[test]
    fn transitions_are_multiset_invariant(
        vals in proptest::collection::vec(0u64..9, 3..6),
        seed in 0u64..1000,
    ) {
        // Gossip.
        let inbox: Vec<Vec<u64>> = vals.iter().map(|&v| vec![v]).collect();
        prop_assert!(check_multiset_invariance(
            &Broadcast(SetGossip),
            &vec![1u64],
            &inbox,
            8,
            seed
        ));
        // Min base (views).
        let view_inbox: Vec<View> = vals.iter().map(|&v| View::leaf(v)).collect();
        prop_assert!(check_multiset_invariance(
            &Broadcast(MinBaseBroadcast),
            &ViewState::new(3),
            &view_inbox,
            8,
            seed
        ));
        // Exact Push-Sum (exact arithmetic is genuinely order-invariant).
        let ps_inbox: Vec<(BigRational, BigRational)> = vals
            .iter()
            .map(|&v| {
                (
                    BigRational::from_i64(v as i64, 3),
                    BigRational::from_i64(1, 3),
                )
            })
            .collect();
        prop_assert!(check_multiset_invariance(
            &Isotropic(PushSumExact),
            &PushSumExactState::new(BigRational::zero(), BigRational::one()),
            &ps_inbox,
            8,
            seed
        ));
    }

    /// Truncation laws: `truncate` is idempotent-compatible and preserves
    /// values and annotations.
    #[test]
    fn truncate_composes(
        depth_vals in proptest::collection::vec(0u64..5, 4..7),
        a in 0usize..4,
        b in 0usize..4,
    ) {
        // Build a chain view of depth len-1 (each node one child).
        let mut v = View::leaf(depth_vals[0]);
        for &val in &depth_vals[1..] {
            v = View::node(val, vec![(0, v)]);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assume!(hi < v.depth());
        prop_assert_eq!(v.truncate(hi).truncate(lo), v.truncate(lo));
        prop_assert_eq!(v.truncate(v.depth()), v.clone());
        prop_assert_eq!(v.truncate(lo).value(), v.value());
    }
}

/// Deterministic cross-run canonical form: rebuilding the same network's
/// views in two separate executions yields identical candidate bases
/// even though the interner assigns fresh ids (regression test for the
/// canonical-hash ordering).
#[test]
fn candidate_base_is_canonical_across_runs() {
    let g = generators::bidirectional_ring(5);
    let values: Vec<u64> = vec![4, 8, 15, 16, 23];
    let run = || {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(MinBaseBroadcast), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(20));
        exec.outputs()[0].clone().expect("stabilized")
        // Execution dropped here: all views die, the interner forgets.
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Async-start masking hint sanity: the masked network's measured
/// dynamic diameter is finite and within the paper's max(s) + D bound.
#[test]
fn async_start_masked_diameter_bound() {
    use kya_graph::dynamic::measured_dynamic_diameter;
    use kya_runtime::adversary::AsyncStarts;
    let inner = StaticGraph::new(generators::complete(4));
    let starts = vec![1, 3, 2, 4];
    let masked = AsyncStarts::new(inner, starts);
    let hint = masked.diameter_hint().expect("hinted");
    let measured = measured_dynamic_diameter(&masked, 16, 12).expect("finite");
    assert!(measured <= hint, "measured {measured} > hint {hint}");
}
