//! Integration: every positive cell of Table 1 (static networks),
//! exercised end-to-end through the public API of the umbrella crate.
//!
//! For each (model, help) cell the test computes the representative
//! function of the claimed class on a family of static strongly
//! connected networks and checks the result against ground truth.

use know_your_audience::algos::frequency::{CensusOutdegree, CensusPorts, CensusSymmetric};
use know_your_audience::algos::gossip::{set_functions, SetGossip};
use know_your_audience::algos::min_base::ViewState;
use know_your_audience::arith::BigInt;
use know_your_audience::core::functions::{average, maximum, sum};
use know_your_audience::core::value;
use know_your_audience::graph::{generators, Digraph, StaticGraph};
use know_your_audience::runtime::{Broadcast, Execution, Isotropic, RunConfig};

/// Test family: name, graph, values. All strongly connected.
fn directed_family() -> Vec<(&'static str, Digraph, Vec<u64>)> {
    vec![
        (
            "ring6",
            generators::directed_ring(6),
            vec![5, 3, 5, 3, 5, 3],
        ),
        (
            "torus3x3",
            generators::directed_torus(3, 3),
            vec![1, 2, 3, 1, 2, 3, 1, 2, 3],
        ),
        (
            "random8",
            generators::random_strongly_connected(8, 7, 101),
            vec![9, 9, 1, 4, 4, 4, 9, 1],
        ),
    ]
}

fn symmetric_family() -> Vec<(&'static str, Digraph, Vec<u64>)> {
    vec![
        ("star5", generators::star(5), vec![8, 2, 2, 2, 2]),
        (
            "hypercube3",
            generators::hypercube(3),
            vec![1, 1, 2, 2, 3, 3, 4, 4],
        ),
        (
            "randbi7",
            generators::random_bidirectional_connected(7, 3, 55),
            vec![6, 6, 6, 1, 1, 2, 2],
        ),
    ]
}

fn rounds_for(g: &Digraph) -> u64 {
    (2 * g.n() + 12) as u64
}

#[test]
fn cell_simple_broadcast_set_based() {
    // Column 1, all help rows: max (set-based) via gossip.
    for (name, g, values) in directed_family() {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(SetGossip), SetGossip::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        for out in exec.outputs() {
            assert_eq!(
                set_functions::max(&out),
                Some(maximum(&values)),
                "network {name}"
            );
        }
    }
}

#[test]
fn cell_outdegree_frequency_based() {
    // Column 2, no help: average (frequency-based) via census.
    for (name, g, values) in directed_family() {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        for out in exec.outputs() {
            let census = out.unwrap_or_else(|| panic!("census stabilized ({name})"));
            assert_eq!(
                average(&census.canonical_vector()),
                average(&values),
                "network {name}"
            );
        }
    }
}

#[test]
fn cell_outdegree_known_n_multiset_based() {
    // Column 2, n known: sum (multiset-based) via census scaling.
    for (name, g, values) in directed_family() {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        let census = exec.outputs()[0].clone().expect("stabilized");
        let mults = census
            .multiplicities_known_n(g.n())
            .unwrap_or_else(|e| panic!("scaling ({name}): {e}"));
        let recovered: BigInt = mults.iter().map(|(v, m)| &BigInt::from(*v) * m).sum();
        assert_eq!(recovered, sum(&values), "network {name}");
    }
}

#[test]
fn cell_outdegree_leader_multiset_based() {
    // Column 2, one leader: sum via leader scaling (Corollary 4.4).
    for (name, g, payloads) in directed_family() {
        let values: Vec<u64> = payloads
            .iter()
            .enumerate()
            .map(|(i, &p)| value::encode(p, i == 0))
            .collect();
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Isotropic(CensusOutdegree), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        let census = exec.outputs()[0].clone().expect("stabilized");
        let mults = census
            .multiplicities_with_leaders(1, value::is_leader)
            .unwrap_or_else(|e| panic!("leader scaling ({name}): {e}"));
        let recovered: BigInt = mults
            .iter()
            .map(|(v, m)| &BigInt::from(value::decode(*v).0) * m)
            .sum();
        assert_eq!(recovered, sum(&payloads), "network {name}");
        let total: BigInt = mults.iter().map(|(_, m)| m).sum();
        assert_eq!(total, BigInt::from(g.n()), "network size ({name})");
    }
}

#[test]
fn cell_symmetric_frequency_based() {
    // Column 3: average via the symmetric (eq. 4) census.
    for (name, g, values) in symmetric_family() {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(CensusSymmetric), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        for out in exec.outputs() {
            let census = out.unwrap_or_else(|| panic!("census stabilized ({name})"));
            assert_eq!(
                average(&census.canonical_vector()),
                average(&values),
                "network {name}"
            );
        }
    }
}

#[test]
fn cell_symmetric_known_n_multiset_based() {
    for (name, g, values) in symmetric_family() {
        let net = StaticGraph::new(g.clone());
        let mut exec = Execution::new(Broadcast(CensusSymmetric), ViewState::initial(&values));
        exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
        let census = exec.outputs()[0].clone().expect("stabilized");
        let mults = census.multiplicities_known_n(g.n()).expect("scaling");
        let recovered: BigInt = mults.iter().map(|(v, m)| &BigInt::from(*v) * m).sum();
        assert_eq!(recovered, sum(&values), "network {name}");
    }
}

#[test]
fn cell_ports_frequency_based() {
    // Column 4: average via the covering (eq. 3) census, on
    // port-symmetric networks built as lifts of port-colored bases.
    // (Output port awareness forces equal fibres, so the lift must use
    // equal fibre sizes.)
    let mut base = Digraph::new(2);
    base.add_edge_with_port(0, 1, Some(0));
    base.add_edge_with_port(1, 0, Some(0));
    base.add_edge_with_port(0, 0, Some(1));
    base.add_edge_with_port(1, 1, Some(1));
    let (g, fibre_of) = generators::connected_lift(&base, &[3, 3], 3, 64).expect("connected lift");
    let values: Vec<u64> = fibre_of.iter().map(|&f| [4, 8][f]).collect();
    let net = StaticGraph::new(g.clone());
    let mut exec = Execution::new(CensusPorts, ViewState::initial(&values));
    exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
    for out in exec.outputs() {
        let census = out.expect("stabilized");
        assert_eq!(average(&census.canonical_vector()), average(&values));
    }
}

#[test]
fn cell_ports_known_n_multiset_based() {
    let mut base = Digraph::new(2);
    base.add_edge_with_port(0, 1, Some(0));
    base.add_edge_with_port(1, 0, Some(0));
    base.add_edge_with_port(0, 0, Some(1));
    base.add_edge_with_port(1, 1, Some(1));
    let (g, fibre_of) = generators::connected_lift(&base, &[4, 4], 5, 64).expect("connected lift");
    let values: Vec<u64> = fibre_of.iter().map(|&f| [1, 7][f]).collect();
    let net = StaticGraph::new(g.clone());
    let mut exec = Execution::new(CensusPorts, ViewState::initial(&values));
    exec.drive(&net, RunConfig::rounds(rounds_for(&g)));
    let census = exec.outputs()[0].clone().expect("stabilized");
    let mults = census.multiplicities_known_n(g.n()).expect("scaling");
    let recovered: BigInt = mults.iter().map(|(v, m)| &BigInt::from(*v) * m).sum();
    assert_eq!(recovered, sum(&values));
}
