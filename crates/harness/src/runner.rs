//! The deterministic worker pool executing a spec's cells.
//!
//! Cells are enumerated once in the spec's fixed order, pulled by a
//! fixed pool of scoped workers from an atomic queue (work stealing:
//! fast cells do not hold up slow ones), and reassembled in cell order
//! before the sink ever sees them. Because each cell's seed is a pure
//! function of the spec — never of which worker ran it or when — the
//! collected output is **byte-identical for every worker count**.

use crate::sink::{CellRecord, ResultSink};
use crate::spec::{CellSpec, ExperimentSpec, SpecError};
use crate::topo::TopologyCache;
use kya_graph::Digraph;
use kya_runtime::faults::FaultPlan;
use kya_runtime::CellReport;
use serde::{Serialize, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Everything a cell function sees: the spec (shared parameters), the
/// cell (resolved axis values), and the shared topology cache.
pub struct CellCtx<'a> {
    /// The experiment specification being swept.
    pub spec: &'a ExperimentSpec,
    /// The cell to execute.
    pub cell: &'a CellSpec,
    /// The memo table shared by all workers.
    pub cache: &'a TopologyCache,
}

impl CellCtx<'_> {
    /// The cell's graph via the shared cache.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] when the topology label is not in the
    /// static-graph grammar (experiments with dynamic-network labels
    /// interpret `cell.topology` themselves instead).
    pub fn graph(&self) -> Result<Arc<Digraph>, SpecError> {
        self.cache.graph(&self.cell.topology)
    }

    /// The cell's fault plan: its template instantiated with the
    /// deterministic per-cell seed.
    pub fn fault_plan(&self) -> FaultPlan {
        self.cell.plan.build(self.cell.cell_seed)
    }

    /// Shorthand for the spec's round budget.
    pub fn rounds(&self) -> u64 {
        self.spec.round_budget()
    }

    /// Shorthand for the spec's convergence tolerance.
    pub fn eps(&self) -> f64 {
        self.spec.tolerance()
    }
}

/// What a cell function returns: an optional pass/fail verdict, an
/// optional measurement [`CellReport`], and free-form detail fields
/// that land in the record's `details` map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellOutcome {
    pub(crate) ok: Option<bool>,
    pub(crate) report: Option<CellReport>,
    pub(crate) details: Vec<(String, Value)>,
}

impl CellOutcome {
    /// An empty outcome (no verdict, no report, no details).
    pub fn new() -> CellOutcome {
        CellOutcome::default()
    }

    /// Attach a pass/fail verdict (certification-style experiments).
    #[must_use]
    pub fn ok(mut self, ok: bool) -> CellOutcome {
        self.ok = Some(ok);
        self
    }

    /// Attach the cell's measurement report.
    #[must_use]
    pub fn report(mut self, report: CellReport) -> CellOutcome {
        self.report = Some(report);
        self
    }

    /// Attach a named detail value (any serializable type).
    #[must_use]
    pub fn detail(mut self, key: impl Into<String>, value: impl Serialize) -> CellOutcome {
        self.details.push((key.into(), value.to_value()));
        self
    }
}

/// The worker pool: built from a spec, configured with a worker count,
/// run with a cell function.
pub struct Runner<'a> {
    spec: &'a ExperimentSpec,
    workers: usize,
}

impl<'a> Runner<'a> {
    /// A runner for `spec` with a single worker (sequential).
    pub fn new(spec: &'a ExperimentSpec) -> Runner<'a> {
        Runner { spec, workers: 1 }
    }

    /// Set the worker count (clamped to at least 1). The output is the
    /// same for every value; this only chooses the parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Runner<'a> {
        self.workers = workers.max(1);
        self
    }

    /// Execute every cell with a fresh [`TopologyCache`] and collect
    /// the records in cell order.
    pub fn run<F>(&self, f: F) -> ResultSink
    where
        F: Fn(&CellCtx) -> CellOutcome + Sync,
    {
        self.run_with_cache(&TopologyCache::new(), f)
    }

    /// Execute every cell against a caller-provided (possibly
    /// pre-warmed) cache — cache state must never change results, and
    /// the harness tests assert exactly that.
    pub fn run_with_cache<F>(&self, cache: &TopologyCache, f: F) -> ResultSink
    where
        F: Fn(&CellCtx) -> CellOutcome + Sync,
    {
        let cells = self.spec.cells();
        // Parse each distinct static label once up front so workers
        // share one graph from the first cell on. Labels outside the
        // grammar (dynamic networks) are simply skipped.
        for label in self.spec.topology_labels() {
            let _ = cache.graph(&label);
        }

        let next = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, CellRecord)>> =
            Mutex::new(Vec::with_capacity(cells.len()));
        let pool = self.workers.min(cells.len()).max(1);
        let spec = self.spec;
        let (cells_ref, next_ref, collected_ref, f_ref) = (&cells, &next, &collected, &f);
        crossbeam::scope(|s| {
            for _ in 0..pool {
                s.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= cells_ref.len() {
                        break;
                    }
                    let cell = &cells_ref[i];
                    let ctx = CellCtx { spec, cell, cache };
                    let outcome = f_ref(&ctx);
                    let record = CellRecord::new(spec, cell, outcome);
                    collected_ref.lock().expect("result lock").push((i, record));
                });
            }
        })
        .expect("worker pool");

        let mut indexed = collected.into_inner().expect("result lock");
        indexed.sort_by_key(|&(i, _)| i);
        debug_assert!(indexed.iter().enumerate().all(|(k, &(i, _))| k == i));
        let mut sink = ResultSink::new();
        for (_, record) in indexed {
            sink.push(record);
        }
        sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ExperimentSpec;

    fn demo_spec() -> ExperimentSpec {
        ExperimentSpec::new("demo")
            .topologies(["ring:{n}", "torus:{n}"])
            .sizes([4, 6, 9])
            .algorithms(["a", "b"])
    }

    fn cell_fn(ctx: &CellCtx) -> CellOutcome {
        let g = ctx.graph().expect("static label");
        CellOutcome::new()
            .ok(g.n() == ctx.cell.n)
            .detail("edges", g.edge_count() as u64)
            .detail("cell_seed", ctx.cell.cell_seed)
    }

    #[test]
    fn sequential_and_parallel_agree_exactly() {
        let spec = demo_spec();
        let one = Runner::new(&spec).workers(1).run(cell_fn);
        let four = Runner::new(&spec).workers(4).run(cell_fn);
        let many = Runner::new(&spec).workers(32).run(cell_fn);
        assert_eq!(one.records().len(), 12);
        assert_eq!(one.to_ndjson(), four.to_ndjson());
        assert_eq!(one.to_ndjson(), many.to_ndjson());
        assert!(one.all_ok());
    }

    #[test]
    fn records_arrive_in_cell_order() {
        let spec = demo_spec();
        let sink = Runner::new(&spec).workers(3).run(cell_fn);
        for (i, r) in sink.records().iter().enumerate() {
            assert_eq!(r.cell, i);
        }
    }

    #[test]
    fn shared_cache_computes_each_graph_once() {
        let spec = ExperimentSpec::new("demo")
            .topologies(["ring:{n}"])
            .sizes([8])
            .seeds([1, 2, 3, 4, 5, 6, 7, 8]);
        let cache = TopologyCache::new();
        let sink = Runner::new(&spec)
            .workers(4)
            .run_with_cache(&cache, cell_fn);
        assert_eq!(sink.records().len(), 8);
        let (hits, misses) = cache.stats();
        assert_eq!(misses, 1, "one parse of ring:8");
        assert!(hits >= 8, "every cell hit the cache: {hits}");
    }

    #[test]
    fn fault_plan_uses_cell_seed_unless_pinned() {
        use crate::spec::PlanSpec;
        let spec = ExperimentSpec::new("demo")
            .topologies(["ring:{n}"])
            .sizes([4])
            .plans([PlanSpec::quiescent().drop_links(0.2)]);
        let sink = Runner::new(&spec).run(|ctx| {
            let plan = ctx.fault_plan();
            CellOutcome::new().ok(plan.seed() == ctx.cell.cell_seed)
        });
        assert!(sink.all_ok());
    }
}
