//! The unified run configuration consumed by
//! [`Execution::drive`](crate::Execution::drive) and
//! [`FaultyExecution::drive`](crate::faults::FaultyExecution::drive).
//!
//! Before this builder existed the executors grew one entry point per
//! feature combination (`run`, `run_observed`, `run_until`,
//! `run_until_converged`, `run_churned`, `run_with_recovery`, ...).
//! [`RunConfig`] collapses that zoo into orthogonal knobs:
//!
//! - [`rounds`](RunConfig::rounds) — the round budget (the only
//!   mandatory knob, and the constructor);
//! - [`threads`](RunConfig::threads) — shard each round over contiguous
//!   agent ranges (bit-identical to sequential at any count);
//! - [`observer`](RunConfig::observer) — attach an [`Observer`] to the
//!   round/message stream;
//! - [`membership`](RunConfig::membership) — churn: apply the
//!   membership's rejoin policy before every round;
//! - [`measure`](RunConfig::measure) /
//!   [`measure_with`](RunConfig::measure_with) — record a per-round
//!   distance trace and judge ε-convergence post hoc;
//! - [`confirm`](RunConfig::confirm) — stop early after the outputs
//!   stay in the ε-ball this many consecutive rounds;
//! - [`invariant`](RunConfig::invariant) — evaluate a mass functional
//!   over the final states into the report.
//!
//! Every legacy entry point is now a thin deprecated wrapper over one
//! `RunConfig` spelling; see DESIGN.md for the migration table.

use crate::algorithm::Algorithm;
use crate::bandwidth::{BandwidthCap, ByteLedger};
use crate::churn::Membership;
use crate::metric::{EuclideanMetric, Metric};
use crate::telemetry::Observer;

/// The arithmetic backend a run executes on — the axis the conformance
/// matrix and the benches select cells by.
///
/// The three rungs of the certified ladder (see `kya_arith::interval`):
/// plain round-to-nearest `f64`; directed-rounding enclosures that
/// certify the `f64` run and escalate to ℚ only at undecidable
/// comparisons (`certified`); and eager `BigRational` on every
/// operation (`exact`, the cost baseline the certified backend is
/// measured against).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Plain round-to-nearest f64 — fast, uncertified.
    F64,
    /// Eager exact rationals on every operation.
    Exact,
    /// Machine-checked enclosures with lazy ℚ escalation.
    Certified,
}

impl Backend {
    /// Parse a backend name as it appears in spec variant axes
    /// (`"f64"`, `"exact"`, `"certified"`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "f64" => Some(Backend::F64),
            "exact" => Some(Backend::Exact),
            "certified" => Some(Backend::Certified),
            _ => None,
        }
    }

    /// The canonical spec-axis name of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::F64 => "f64",
            Backend::Exact => "exact",
            Backend::Certified => "certified",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Backend, String> {
        Backend::parse(s).ok_or_else(|| format!("unknown backend `{s}` (f64|exact|certified)"))
    }
}

/// A distance functional over the whole output vector, as installed by
/// [`RunConfig::measure`] / [`RunConfig::measure_with`].
pub type DistanceFn<'a, O> = Box<dyn Fn(&[O]) -> f64 + 'a>;

/// A mass functional over the final states ([`RunConfig::invariant`]).
pub type InvariantFn<'a, S> = &'a dyn Fn(&[S]) -> f64;

/// Declarative description of one `drive` call: budget, parallelism,
/// observation, churn, and measurement. See the module docs.
pub struct RunConfig<'a, A: Algorithm> {
    pub(crate) rounds: u64,
    pub(crate) threads: usize,
    pub(crate) observer: Option<&'a mut dyn Observer<A>>,
    #[allow(clippy::type_complexity)] // one borrowed pair, named inline
    pub(crate) membership: Option<(&'a Membership, &'a dyn Fn(usize, &A::State) -> A::State)>,
    pub(crate) dist: Option<DistanceFn<'a, A::Output>>,
    pub(crate) eps: f64,
    pub(crate) confirm: Option<u64>,
    pub(crate) invariant: Option<InvariantFn<'a, A::State>>,
    pub(crate) bandwidth: Option<(BandwidthCap, &'a ByteLedger)>,
}

impl<'a, A: Algorithm> RunConfig<'a, A> {
    /// A plain run of `rounds` rounds: sequential, unobserved,
    /// unmeasured. Every other knob is added with a builder call.
    pub fn rounds(rounds: u64) -> RunConfig<'a, A> {
        RunConfig {
            rounds,
            threads: 1,
            observer: None,
            membership: None,
            dist: None,
            eps: 0.0,
            confirm: None,
            invariant: None,
            bandwidth: None,
        }
    }

    /// Shard each round across `threads` workers over contiguous agent
    /// ranges. Bit-identical to `threads = 1` at any count.
    ///
    /// [`FaultyExecution::drive`](crate::faults::FaultyExecution::drive)
    /// is sequential and panics when `threads != 1`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attach an [`Observer`] to the run: it sees every round boundary
    /// and every delivered message, and `on_converged` fires once the
    /// report is sealed (measured runs only).
    pub fn observer(mut self, obs: &'a mut dyn Observer<A>) -> Self {
        self.observer = Some(obs);
        self
    }

    /// Run under churn: before every round, apply `membership`'s rejoin
    /// policy — under [`ReinjectPolicy::Reset`](crate::churn::ReinjectPolicy)
    /// each rejoining agent's parked state is replaced by
    /// `reinit(agent, &parked)`. The network is still expected to mask
    /// absent agents (wrap it in [`ChurnMasked`](crate::churn::ChurnMasked)).
    pub fn membership(
        mut self,
        membership: &'a Membership,
        reinit: &'a dyn Fn(usize, &A::State) -> A::State,
    ) -> Self {
        self.membership = Some((membership, reinit));
        self
    }

    /// Measure the worst-case distance of the outputs from `target`
    /// under `metric` each round, and judge convergence at tolerance
    /// `eps` post hoc over the whole trace (§2.3). A non-finite
    /// distance ends the run at once with `diverged_at` set.
    pub fn measure<M: Metric<A::Output>>(
        self,
        metric: &'a M,
        target: &'a A::Output,
        eps: f64,
    ) -> Self {
        self.measure_with(
            move |outputs| crate::metric::max_distance(metric, outputs, target),
            eps,
        )
    }

    /// Like [`RunConfig::measure`], with an arbitrary distance
    /// functional over the output vector (e.g. per-agent targets).
    pub fn measure_with(mut self, dist: impl Fn(&[A::Output]) -> f64 + 'a, eps: f64) -> Self {
        self.dist = Some(Box::new(dist));
        self.eps = eps;
        self
    }

    /// Stop early once the measured distance has stayed within the
    /// ε-ball for `confirm` consecutive rounds (the budget-saving sweep
    /// variant). Only meaningful together with a `measure*` knob.
    pub fn confirm(mut self, confirm: u64) -> Self {
        self.confirm = Some(confirm);
        self
    }

    /// Evaluate `f` over the final states and record it as the report's
    /// `mass_deficit` — the conservation ledger of the fault and churn
    /// oracles.
    pub fn invariant(mut self, f: &'a dyn Fn(&[A::State]) -> f64) -> Self {
        self.invariant = Some(f);
        self
    }

    /// Meter the run under a bandwidth cap: each round, `ledger` is
    /// charged `edges × cap.bits_per_edge()` bits of channel traffic.
    ///
    /// Metering only — the cap is *enforced* structurally by running a
    /// quantized algorithm whose codewords fit the cap (see
    /// `kya_runtime::bandwidth`); truncating messages in the executor
    /// would silently corrupt state. [`BandwidthCap::Unlimited`] makes
    /// this rung a pure observer: the run is bitwise identical to one
    /// without it.
    pub fn bandwidth(mut self, cap: BandwidthCap, ledger: &'a ByteLedger) -> Self {
        self.bandwidth = Some((cap, ledger));
        self
    }
}

/// [`RunConfig`]'s flat twin, consumed by
/// [`FlatExecution::drive`](crate::FlatExecution::drive) /
/// [`drive_probed`](crate::FlatExecution::drive_probed).
///
/// The flat executor's outputs are always `f64` and it runs on static
/// graphs without observers or churn, so only the measurement knobs
/// carry over: a round budget, a thread count, an optional distance
/// functional with tolerance `eps` (judged post hoc over the whole
/// trace, exactly like the boxed loop), and confirmed early stopping.
/// Probing is orthogonal — pass a [`FlatProbe`](crate::FlatProbe) to
/// `drive_probed` instead of a config knob, so the borrow of the probe
/// stays outside the config.
pub struct FlatRunConfig<'a> {
    pub(crate) rounds: u64,
    pub(crate) threads: usize,
    pub(crate) dist: Option<DistanceFn<'a, f64>>,
    pub(crate) eps: f64,
    pub(crate) confirm: Option<u64>,
    pub(crate) bandwidth: Option<(BandwidthCap, &'a ByteLedger)>,
}

impl<'a> FlatRunConfig<'a> {
    /// A plain run of `rounds` rounds: sequential and unmeasured.
    pub fn rounds(rounds: u64) -> FlatRunConfig<'a> {
        FlatRunConfig {
            rounds,
            threads: 1,
            dist: None,
            eps: 0.0,
            confirm: None,
            bandwidth: None,
        }
    }

    /// Shard each round across `threads` workers. Bit-identical to
    /// `threads = 1` at any count — probed or not.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Measure the worst-case absolute distance of the outputs from
    /// `target` each round and judge ε-convergence post hoc — the flat
    /// spelling of [`RunConfig::measure`] with the Euclidean metric on
    /// scalars. A non-finite distance ends the run at once with
    /// `diverged_at` set.
    pub fn measure(self, target: f64, eps: f64) -> Self {
        self.measure_with(
            move |outputs| crate::metric::max_distance(&EuclideanMetric, outputs, &target),
            eps,
        )
    }

    /// Like [`FlatRunConfig::measure`], with an arbitrary distance
    /// functional over the output vector.
    pub fn measure_with(mut self, dist: impl Fn(&[f64]) -> f64 + 'a, eps: f64) -> Self {
        self.dist = Some(Box::new(dist));
        self.eps = eps;
        self
    }

    /// Stop early once the measured distance has stayed within the
    /// ε-ball for `confirm` consecutive rounds.
    pub fn confirm(mut self, confirm: u64) -> Self {
        self.confirm = Some(confirm);
        self
    }

    /// Meter the run under a bandwidth cap — the flat spelling of
    /// [`RunConfig::bandwidth`]: each round, `ledger` is charged one
    /// `cap.bits_per_edge()` charge per routing-plan slot (= per edge).
    pub fn bandwidth(mut self, cap: BandwidthCap, ledger: &'a ByteLedger) -> Self {
        self.bandwidth = Some((cap, ledger));
        self
    }
}
