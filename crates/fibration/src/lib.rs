//! Graph fibrations for anonymous networks.
//!
//! A *fibration* `φ: G -> B` (§3 of the paper) is a graph morphism with
//! the unique edge-lifting property: for every edge `e` of `B` and every
//! vertex `i` of `G` over the target of `e`, exactly one edge of `G` over
//! `e` ends at `i`. Fibrations are the precise sense in which two
//! anonymous agents are indistinguishable: agents in the same *fibre* have
//! isomorphic in-neighborhoods, so — by the Lifting Lemma (Lemma 3.1) —
//! they behave identically when started identically.
//!
//! This crate provides:
//!
//! - [`GraphMorphism`]: vertex+edge maps with validity checking,
//! - [`verify_fibration`]: the unique-lifting check, plus the stronger
//!   covering check used under output port awareness (§4.3),
//! - [`coarsest_equitable_partition`]: the in-neighborhood partition
//!   refinement whose classes are the fibres of the minimum base,
//! - [`MinimumBase`]: the fibration-prime quotient of a graph (§3.2),
//!   with the projection fibration and the fibre-count data the paper's
//!   algorithms consume,
//! - [`iso`]: exact isomorphism testing for small valued/port-colored
//!   multigraphs (used to compare minimum bases).
//!
//! # Example
//!
//! ```
//! use kya_graph::generators;
//! use kya_fibration::MinimumBase;
//!
//! // A directed ring with all-equal inputs collapses to a single vertex
//! // with one self-loop: the agents are perfectly interchangeable.
//! let ring = generators::directed_ring(6);
//! let base = MinimumBase::compute(&ring, &vec![0u64; 6]);
//! assert_eq!(base.base().n(), 1);
//! assert_eq!(base.fibre_sizes(), &[6]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iso;
mod min_base;
mod morphism;
mod refine;

pub use min_base::MinimumBase;
pub use morphism::{
    verify_covering, verify_fibration, FibrationError, GraphMorphism, MorphismError,
};
pub use refine::{coarsest_equitable_partition, Partition};
