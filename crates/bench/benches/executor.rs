//! Criterion bench: sequential vs parallel executor stepping at growing
//! network sizes (the parallel path pays off once per-agent work
//! dominates the thread handoff). The `counting_observer` entries price
//! the telemetry layer: `sequential` is the `NullObserver`-monomorphized
//! path, so any gap between the two is exactly the opt-in observer cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kya_algos::gossip::SetGossip;
use kya_graph::{generators, DynamicGraph, StaticGraph};
use kya_runtime::{Broadcast, CountingObserver, Execution};
use std::time::Duration;

fn bench_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_step_20_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [32usize, 128] {
        let g = generators::random_strongly_connected(n, 2 * n, 5).with_self_loops();
        let inits: Vec<Vec<u64>> = (0..n as u64).map(|v| vec![v % 16]).collect();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Broadcast(SetGossip), inits.clone());
                for _ in 0..20 {
                    exec.step(&g);
                }
                exec.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel_4", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Broadcast(SetGossip), inits.clone());
                for _ in 0..20 {
                    exec.step_parallel(&g, 4);
                }
                exec.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("counting_observer", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Broadcast(SetGossip), inits.clone());
                let mut obs = CountingObserver::new();
                for _ in 0..20 {
                    exec.step_observed(&g, &mut obs);
                }
                obs.summary().messages
            })
        });
    }
    group.finish();
}

/// Prices the `DynamicGraph::graph_ref` borrowing accessor against the
/// by-value `graph(t)`: on static schedules the former is a pointer
/// copy, the latter clones the whole edge list every round — the clone
/// the measuring loops used to pay before they migrated to `graph_ref`.
fn bench_graph_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_graph_access_40_rounds");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for n in [64usize, 256] {
        let net = StaticGraph::new(generators::random_strongly_connected(n, 2 * n, 5));
        let inits: Vec<Vec<u64>> = (0..n as u64).map(|v| vec![v % 16]).collect();
        group.bench_with_input(BenchmarkId::new("graph_owned", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Broadcast(SetGossip), inits.clone());
                for t in 1..=40u64 {
                    let g = net.graph(t);
                    exec.step(&g);
                }
                exec.round()
            })
        });
        group.bench_with_input(BenchmarkId::new("graph_ref", n), &n, |b, _| {
            b.iter(|| {
                let mut exec = Execution::new(Broadcast(SetGossip), inits.clone());
                for t in 1..=40u64 {
                    let g = net.graph_ref(t);
                    exec.step(&g);
                }
                exec.round()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_step, bench_graph_access);
criterion_main!(benches);
