//! Parallel experiment sweep harness.
//!
//! Every evaluation artifact of the paper — the Table 1/2 certifications
//! and the F1–F6 sweeps — is a cartesian product of axes (topology ×
//! size × seed × algorithm × variant × fault plan) whose cells are
//! independent runs. This crate is the one engine that executes such
//! products:
//!
//! - [`ExperimentSpec`](spec::ExperimentSpec) declares the axes with a
//!   builder API and enumerates the cells in a fixed order, each with a
//!   deterministic per-cell seed derived from the spec alone;
//! - [`Runner`](runner::Runner) executes the cells on a fixed worker
//!   pool (work-stealing over an atomic queue) and reassembles results
//!   in cell order — so the output is **byte-identical for any worker
//!   count**, including 1;
//! - [`TopologyCache`](topo::TopologyCache) memoizes per-topology
//!   artifacts (graphs, diameters, minimum bases, Metropolis weights,
//!   spectral gaps) so they are computed once and shared read-only
//!   across workers;
//! - [`ResultSink`](sink::ResultSink) collects stable-schema
//!   [`CellRecord`](sink::CellRecord)s and renders them as NDJSON or a
//!   single JSON document.
//!
//! The per-cell measurement type is
//! [`kya_runtime::CellReport`] — the same report produced by
//! `Execution::run_until` and `FaultyExecution::run_with_recovery`, so
//! experiment cell functions are a few lines of glue.
//!
//! # Example
//!
//! ```
//! use kya_harness::spec::ExperimentSpec;
//! use kya_harness::runner::{CellOutcome, Runner};
//!
//! let spec = ExperimentSpec::new("demo")
//!     .topologies(["ring:{n}"])
//!     .sizes([4, 6])
//!     .algorithms(["noop"]);
//! let sink = Runner::new(&spec).workers(2).run(|ctx| {
//!     let g = ctx.graph().expect("parses");
//!     CellOutcome::new().ok(g.n() == ctx.cell.n)
//! });
//! assert_eq!(sink.records().len(), 2);
//! assert!(sink.all_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod runner;
pub mod sink;
pub mod spec;
pub mod topo;

pub use args::Args;
pub use runner::{CellCtx, CellOutcome, Runner, TelemetryMode};
pub use sink::{CellRecord, CellTelemetry, ResultSink};
pub use spec::{
    parse_graph, parse_values, CellSpec, ChurnSpec, ExperimentSpec, PlanSpec, SpecError,
    SWEEP_FLAGS,
};
pub use topo::{TopologyCache, WorkerScope};
