//! Fraction-free integer linear algebra (Bareiss elimination).
//!
//! §4.2 of the paper has each agent run "Gaussian elimination over the
//! Euclidean ring ℤ" on the fibre-count system. [`IMatrix`] implements
//! that literally: Bareiss' fraction-free elimination keeps every
//! intermediate entry an *integer* (each division is exact), bounds
//! coefficient growth by Hadamard's inequality, and yields the
//! determinant and a kernel basis without ever leaving ℤ.
//!
//! [`QMatrix`](crate::QMatrix) remains the general-purpose exact solver;
//! the two are cross-checked against each other in tests and compared in
//! the `linalg` benchmark.

use crate::BigInt;
use std::fmt;

/// A dense integer matrix.
///
/// ```
/// use kya_arith::{BigInt, IMatrix};
/// let m = IMatrix::from_i64_rows(&[&[2, 0], &[0, 3]]);
/// assert_eq!(m.determinant(), BigInt::from(6));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct IMatrix {
    rows: usize,
    cols: usize,
    data: Vec<BigInt>,
}

impl IMatrix {
    /// An `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> IMatrix {
        IMatrix {
            rows,
            cols,
            data: vec![BigInt::zero(); rows * cols],
        }
    }

    /// Build from rows of machine integers.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths.
    pub fn from_i64_rows(rows: &[&[i64]]) -> IMatrix {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        let mut m = IMatrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = BigInt::from(v);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, v: &[BigInt]) -> Vec<BigInt> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| &self[(i, j)] * &v[j]).sum())
            .collect()
    }

    /// Fraction-free row echelon form via Bareiss' algorithm; returns
    /// `(echelon, pivot columns, determinant-ish pivot)`.
    ///
    /// Every intermediate division is exact (a property of the Bareiss
    /// recurrence), so all entries stay integers. For a square
    /// non-singular matrix the last pivot equals the determinant up to
    /// the sign of the row swaps performed.
    fn bareiss(&self) -> (IMatrix, Vec<usize>, BigInt, bool) {
        let mut m = self.clone();
        let mut pivots = Vec::new();
        let mut prev = BigInt::one();
        let mut row = 0usize;
        let mut swapped_odd = false;
        for col in 0..m.cols {
            if row == m.rows {
                break;
            }
            let Some(p) = (row..m.rows).find(|&r| !m[(r, col)].is_zero()) else {
                continue;
            };
            if p != row {
                for j in 0..m.cols {
                    m.data.swap(row * m.cols + j, p * m.cols + j);
                }
                swapped_odd = !swapped_odd;
            }
            let pivot = m[(row, col)].clone();
            for r in (row + 1)..m.rows {
                for j in (col + 1)..m.cols {
                    // Bareiss: m[r][j] = (pivot*m[r][j] - m[r][col]*m[row][j]) / prev
                    let num = &(&pivot * &m[(r, j)]) - &(&m[(r, col)] * &m[(row, j)]);
                    let (q, rem) = num.div_rem(&prev);
                    debug_assert!(rem.is_zero(), "Bareiss division must be exact");
                    m[(r, j)] = q;
                }
                m[(r, col)] = BigInt::zero();
            }
            prev = pivot;
            pivots.push(col);
            row += 1;
        }
        (m, pivots, prev, swapped_odd)
    }

    /// Rank over ℚ (= rank over ℤ as a ℚ-matrix).
    pub fn rank(&self) -> usize {
        self.bareiss().1.len()
    }

    /// Determinant of a square matrix (fraction-free; exact).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn determinant(&self) -> BigInt {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        if self.rows == 0 {
            return BigInt::one();
        }
        let (_, pivots, last_pivot, swapped_odd) = self.bareiss();
        if pivots.len() < self.rows {
            return BigInt::zero();
        }
        if swapped_odd {
            -last_pivot
        } else {
            last_pivot
        }
    }

    /// An integer basis of the kernel: one vector per free column, each
    /// with coprime entries. Entirely within ℤ — back-substitution on
    /// the Bareiss echelon form clears denominators as it goes.
    pub fn integer_kernel_basis(&self) -> Vec<Vec<BigInt>> {
        let (e, pivots, _, _) = self.bareiss();
        let rank = pivots.len();
        let mut pivot_of_col: Vec<Option<usize>> = vec![None; self.cols];
        for (r, &c) in pivots.iter().enumerate() {
            pivot_of_col[c] = Some(r);
        }
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_of_col[free].is_some() {
                continue;
            }
            // Solve E x = 0 with x[free] chosen to clear denominators:
            // back-substitute from the bottom pivot row up, scaling the
            // whole vector by each pivot to stay integral.
            let mut x = vec![BigInt::zero(); self.cols];
            x[free] = BigInt::one();
            for r in (0..rank).rev() {
                let pc = pivots[r];
                // residual = sum_{j > pc} E[r][j] * x[j]
                let residual: BigInt = ((pc + 1)..self.cols).map(|j| &e[(r, j)] * &x[j]).sum();
                if residual.is_zero() {
                    continue;
                }
                let pivot = e[(r, pc)].clone();
                let g = pivot.gcd(&residual);
                let scale = &pivot / &g;
                // Scale everything so the division is exact, then set
                // x[pc] = -residual_scaled / pivot.
                if !scale.is_one() {
                    for xi in &mut x {
                        *xi = &*xi * &scale;
                    }
                }
                let (q, rem) = (&residual * &scale).div_rem(&pivot);
                debug_assert!(rem.is_zero());
                x[pc] = -q;
            }
            // Reduce to coprime entries.
            let g = x.iter().fold(BigInt::zero(), |acc, v| acc.gcd(v));
            if !g.is_zero() && !g.is_one() {
                for xi in &mut x {
                    *xi = &*xi / &g;
                }
            }
            basis.push(x);
        }
        basis
    }
}

impl std::ops::Index<(usize, usize)> for IMatrix {
    type Output = BigInt;
    fn index(&self, (i, j): (usize, usize)) -> &BigInt {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for IMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut BigInt {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gcd, BigRational, QMatrix};
    use proptest::prelude::*;

    #[test]
    fn determinants() {
        assert_eq!(IMatrix::zeros(0, 0).determinant(), BigInt::one());
        let id = IMatrix::from_i64_rows(&[&[1, 0], &[0, 1]]);
        assert_eq!(id.determinant(), BigInt::from(1));
        let m = IMatrix::from_i64_rows(&[&[1, 2], &[3, 4]]);
        assert_eq!(m.determinant(), BigInt::from(-2));
        let singular = IMatrix::from_i64_rows(&[&[1, 2], &[2, 4]]);
        assert_eq!(singular.determinant(), BigInt::zero());
        // Row swap parity.
        let swapped = IMatrix::from_i64_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(swapped.determinant(), BigInt::from(-1));
    }

    #[test]
    fn rank_and_kernel_shapes() {
        let m = IMatrix::from_i64_rows(&[&[1, 2, 3], &[2, 4, 6]]);
        assert_eq!(m.rank(), 1);
        let basis = m.integer_kernel_basis();
        assert_eq!(basis.len(), 2);
        for v in &basis {
            assert!(m.mul_vec(v).iter().all(BigInt::is_zero));
        }
    }

    #[test]
    fn kernel_entries_are_coprime() {
        let m = IMatrix::from_i64_rows(&[&[-8, 1, 2], &[2, -4, 2], &[6, 3, -4]]);
        let basis = m.integer_kernel_basis();
        assert_eq!(basis.len(), 1);
        let v = &basis[0];
        assert!(m.mul_vec(v).iter().all(BigInt::is_zero));
        let g = v.iter().fold(BigInt::zero(), |acc, x| gcd(&acc, x));
        assert!(g.is_one());
        // Same ray as the rational solver's (up to sign).
        let mut sorted: Vec<BigInt> = v.iter().map(BigInt::abs).collect();
        sorted.sort();
        assert_eq!(
            sorted,
            vec![BigInt::from(1), BigInt::from(2), BigInt::from(3)]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Bareiss and rational elimination agree on rank and kernel
        /// dimension, and Bareiss kernels annihilate the matrix.
        #[test]
        fn matches_rational_elimination(
            rows in 1usize..5,
            cols in 1usize..5,
            seed in proptest::collection::vec(-9i64..9, 25),
        ) {
            let mut im = IMatrix::zeros(rows, cols);
            let mut qm = QMatrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    im[(i, j)] = BigInt::from(seed[i * 5 + j]);
                    qm[(i, j)] = BigRational::from_integer(seed[i * 5 + j]);
                }
            }
            prop_assert_eq!(im.rank(), qm.rank());
            let basis = im.integer_kernel_basis();
            prop_assert_eq!(basis.len(), cols - im.rank());
            for v in &basis {
                prop_assert!(im.mul_vec(v).iter().all(BigInt::is_zero));
            }
        }

        /// Determinant matches cofactor expansion for 3x3.
        #[test]
        fn det3_matches_rule_of_sarrus(vals in proptest::collection::vec(-20i64..20, 9)) {
            let m = IMatrix::from_i64_rows(&[
                &vals[0..3],
                &vals[3..6],
                &vals[6..9],
            ]);
            let (a, b, c, d, e, f, g, h, i) = (
                vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7], vals[8],
            );
            let det = a * (e * i - f * h) - b * (d * i - f * g) + c * (d * h - e * g);
            prop_assert_eq!(m.determinant(), BigInt::from(det));
        }
    }
}
